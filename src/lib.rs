//! Workspace facade for the reproduction of *Deterministic Leader Election
//! in Anonymous Radio Networks* (Miller, Pelc, Yadav — SPAA 2020).
//!
//! This crate re-exports the workspace members so examples and downstream
//! users can depend on one crate:
//!
//! * [`graph`] — graphs, configurations (wake-up tags), generators, families.
//! * [`sim`] — the synchronous radio-network simulator and DRIP machinery.
//! * [`classifier`] — the centralized feasibility `Classifier` (Algs. 1–4).
//! * [`core`] — canonical DRIP, dedicated election, feasibility API,
//!   impossibility adversaries.
//! * [`util`] — shared statistics/hashing/table helpers.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system inventory.

#![forbid(unsafe_code)]

pub use anon_radio as core;
pub use radio_classifier as classifier;
pub use radio_graph as graph;
pub use radio_sim as sim;
pub use radio_util as util;

/// Commonly used items, for `use anon_radio_repro::prelude::*`.
pub mod prelude {
    pub use anon_radio::{elect_leader, is_feasible, solve, DedicatedElection, ElectionReport};
    pub use radio_graph::{families, generators, Configuration, Graph, NodeId};
    pub use radio_sim::{Action, Executor, Msg, Obs, RunOpts};
}
