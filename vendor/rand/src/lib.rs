//! Offline stand-in for the subset of the `rand` 0.9 API this workspace
//! uses: [`Rng::random`], [`Rng::random_range`], [`Rng::random_bool`],
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! The build environment has no registry access, so this crate exists to
//! keep the workspace self-contained. The generator is xoshiro256++ seeded
//! via SplitMix64 — not the real `StdRng` (ChaCha12), but the workspace only
//! relies on determinism and statistical quality, never on the exact
//! stream.

#![forbid(unsafe_code)]

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface. Implementors only provide [`Rng::next_u64`]; every
/// other method is derived from it.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A uniformly random value in `range` (half-open or inclusive integer
    /// ranges, half-open float ranges).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let x: f64 = self.random();
        x < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types with a canonical uniform distribution.
pub trait Random {
    /// Draws one uniformly random value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draws one uniformly random value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + uniform_u128(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + uniform_u128(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let x: f64 = rng.random();
        self.start + x * (self.end - self.start)
    }
}

/// Uniform draw from `0..span` (`span ≥ 1`) without modulo bias, by
/// rejection sampling on the top bits.
fn uniform_u128<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span >= 1);
    if span == 1 {
        return 0;
    }
    // All spans in practice fit u64; handle them there.
    let span64 = span as u64;
    let zone = u64::MAX - (u64::MAX % span64 + 1) % span64;
    loop {
        let x = rng.next_u64();
        if x <= zone {
            return (x % span64) as u128;
        }
    }
}

/// The named generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng`: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as xoshiro's authors recommend.
            let mut z = seed;
            let mut next = move || {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^ (x >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::Rng;

    /// In-place uniform shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(3..17u64);
            assert!((3..17).contains(&x));
            let y = rng.random_range(0..=2usize);
            assert!(y <= 2);
            let f = rng.random_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}
