//! A generator for the tiny regex subset the workspace's string strategies
//! use:
//!
//! * literal characters,
//! * `(alt1|alt2|…)` groups of literal alternatives (no nesting),
//! * `[…]` character classes with literals and `a-z` ranges,
//! * `\PC` — any printable (non-control) ASCII character,
//! * postfix `?` and `{m,n}` repetition on the previous atom.
//!
//! Unsupported syntax falls back to emitting the characters literally,
//! which keeps the generator total (every pattern yields *some* string).

use rand::rngs::StdRng;
use rand::Rng;

enum Atom {
    Literal(char),
    /// One alternative chosen uniformly.
    Alternatives(Vec<String>),
    /// One character chosen uniformly from the class.
    Class(Vec<char>),
    /// Any printable ASCII character (`\PC`).
    Printable,
}

struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

pub fn generate(pattern: &str, rng: &mut StdRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let count = rng.random_range(piece.min..=piece.max);
        for _ in 0..count {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Alternatives(alts) => {
                    out.push_str(&alts[rng.random_range(0..alts.len())]);
                }
                Atom::Class(chars) => out.push(chars[rng.random_range(0..chars.len())]),
                Atom::Printable => {
                    out.push(char::from(rng.random_range(0x20u8..0x7F)));
                }
            }
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces: Vec<Piece> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '(' => {
                let close = find(&chars, i, ')');
                let inner: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                Atom::Alternatives(inner.split('|').map(str::to_string).collect())
            }
            '[' => {
                let close = find(&chars, i, ']');
                let mut set = Vec::new();
                let inner = &chars[i + 1..close];
                let mut j = 0;
                while j < inner.len() {
                    if j + 2 < inner.len() && inner[j + 1] == '-' {
                        for c in inner[j]..=inner[j + 2] {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(inner[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                Atom::Class(set)
            }
            '\\' if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') => {
                i += 3;
                Atom::Printable
            }
            '\\' if i + 1 < chars.len() => {
                let c = chars[i + 1];
                i += 2;
                Atom::Literal(c)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = parse_repeat(&chars, &mut i);
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Parses a trailing `?` or `{m,n}` at position `i`, advancing it.
fn parse_repeat(chars: &[char], i: &mut usize) -> (u32, u32) {
    match chars.get(*i) {
        Some('?') => {
            *i += 1;
            (0, 1)
        }
        Some('{') => {
            let close = find(chars, *i, '}');
            let body: String = chars[*i + 1..close].iter().collect();
            *i = close + 1;
            let (lo, hi) = body
                .split_once(',')
                .unwrap_or((body.as_str(), body.as_str()));
            let lo = lo.trim().parse().unwrap_or(1);
            let hi = hi.trim().parse().unwrap_or(lo);
            (lo, hi.max(lo))
        }
        _ => (1, 1),
    }
}

fn find(chars: &[char], from: usize, target: char) -> usize {
    chars[from..]
        .iter()
        .position(|&c| c == target)
        .map(|p| from + p)
        .unwrap_or(chars.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn gen_with(pattern: &str, seed: u64) -> String {
        generate(pattern, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn directive_pattern_produces_valid_shapes() {
        for seed in 0..200 {
            let s = gen_with("(config|tags|edge|#x) ?[0-9 ]{0,8}", seed);
            let prefix_ok = ["config", "tags", "edge", "#x"]
                .iter()
                .any(|p| s.starts_with(p));
            assert!(prefix_ok, "{s:?}");
        }
    }

    #[test]
    fn printable_pattern_stays_printable() {
        for seed in 0..50 {
            let s = gen_with("\\PC{0,200}", seed);
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn optional_and_literal() {
        let s = gen_with("ab?c", 3);
        assert!(s == "abc" || s == "ac");
    }
}
