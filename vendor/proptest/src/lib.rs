//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses: the [`proptest!`] macro, [`prop_assert!`]/[`prop_assert_eq!`],
//! [`Strategy`] with [`Strategy::prop_map`], range and tuple strategies,
//! [`collection::vec`], `any::<u64>()`, and string strategies given as a
//! small regex subset (`(a|b)` groups, `[c-d ]` classes, `\PC`, `?`,
//! `{m,n}`).
//!
//! No shrinking is performed: a failing case panics with the case index and
//! the derived seed, which — the run being fully deterministic — is enough
//! to reproduce it.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;
mod regex_gen;

/// Runner configuration. Only `cases` is honoured.
///
/// Like upstream proptest, the `PROPTEST_CASES` environment variable
/// bounds the case count: when set to a number, every property runs
/// `min(configured, PROPTEST_CASES)` cases. Because case seeds are keyed
/// by `(property name, case index)`, a capped run executes a prefix of
/// the full run — fewer cases, never different ones — so CI can pin a
/// fast deterministic budget without perturbing local full runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given explanation.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Drives the cases of one property. Used by the [`proptest!`] expansion.
pub struct TestRunner {
    config: ProptestConfig,
    seed_base: u64,
}

impl TestRunner {
    /// A runner for the property named `name` (the name keys the
    /// deterministic seed stream).
    pub fn new(config: ProptestConfig, name: &str) -> TestRunner {
        let mut seed_base = 0x005E_ED0F_u64 ^ 0xA5A5_5A5A_DEAD_BEEF;
        for b in name.bytes() {
            seed_base = splitmix(seed_base ^ u64::from(b));
        }
        TestRunner { config, seed_base }
    }

    /// Number of cases to run: the configured count, capped by the
    /// `PROPTEST_CASES` environment variable when it parses as a number.
    pub fn cases(&self) -> u32 {
        capped_cases(self.config.cases, std::env::var("PROPTEST_CASES").ok())
    }

    /// The RNG for one case.
    pub fn rng_for(&self, case: u32) -> StdRng {
        StdRng::seed_from_u64(splitmix(self.seed_base ^ u64::from(case)))
    }
}

/// The `PROPTEST_CASES` cap rule: a parseable value bounds the configured
/// count (never raises it), anything else is ignored. Pure so it is
/// testable without mutating the process-global environment.
fn capped_cases(configured: u32, env: Option<String>) -> u32 {
    match env.and_then(|v| v.parse::<u32>().ok()) {
        Some(cap) => configured.min(cap),
        None => configured,
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Full-range strategy for `T` (integers).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The [`any`] strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> u64 {
        rng.random()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> u32 {
        rng.random()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.random()
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

/// String strategies: a `&str` is interpreted as a pattern in the small
/// regex subset documented in [`regex_gen`].
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut StdRng) -> String {
        regex_gen::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// The macro-facing prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current case unless the two expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
}

/// The property-test macro: each `#[test] fn name(arg in strategy, ...)`
/// item becomes a deterministic multi-case test.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr) $(
        #[test]
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let runner = $crate::TestRunner::new($cfg, stringify!($name));
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for(case);
                $( let $arg = $crate::Strategy::new_value(&($strat), &mut rng); )*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("case {case} of {}: {e}", stringify!($name));
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn proptest_cases_env_caps_but_never_raises() {
        // the rule is tested through the pure helper — mutating the real
        // env var here would race the sibling property tests running in
        // this same process
        let cap = |env: Option<&str>| crate::capped_cases(64, env.map(str::to_string));
        assert_eq!(cap(Some("7")), 7, "env caps the configured count");
        assert_eq!(cap(Some("1000")), 64, "env never raises it");
        assert_eq!(
            cap(Some("not-a-number")),
            64,
            "unparseable values are ignored"
        );
        assert_eq!(cap(None), 64);
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..9, y in 0usize..4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn tuples_and_map(pair in (0u32..5, 0u32..5).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair <= 8);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn any_u64_is_deterministic_per_case(x in any::<u64>()) {
            // determinism is asserted by the runner seeding; just touch x
            prop_assert_eq!(x, x);
        }

        #[test]
        fn vec_strategy_lengths(xs in crate::collection::vec(0u8..3, 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert!(xs.iter().all(|&x| x < 3));
        }

        #[test]
        fn regex_strategy_shapes(s in "(ab|cd) ?[0-9]{1,3}") {
            prop_assert!(s.starts_with("ab") || s.starts_with("cd"), "{}", s);
        }
    }
}
