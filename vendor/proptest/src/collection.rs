//! Collection strategies (`proptest::collection::vec`).

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Strategy producing `Vec`s whose elements come from `element` and whose
/// length is drawn from `len`.
pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// The [`vec`] strategy.
pub struct VecStrategy<S> {
    element: S,
    len: std::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = rng.random_range(self.len.clone());
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}
