//! Offline stand-in for the subset of the `criterion` API this workspace
//! uses: [`criterion_group!`]/[`criterion_main!`], [`Criterion`] with
//! benchmark groups, [`BenchmarkId`], [`Throughput`], and [`black_box`].
//!
//! Measurement is deliberately simple — a warm-up pass followed by timed
//! batches until the configured measurement time elapses — and results are
//! printed as one line per benchmark (mean time per iteration, plus
//! throughput when configured). Good enough to compare runs by eye; not a
//! statistics engine.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Begins a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        let mut group = self.benchmark_group("");
        group.bench_function(name, f);
        self
    }
}

/// Work-per-iteration annotation used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier `function_name/parameter` for parameterized benchmarks.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the target number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut BenchmarkGroup {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the time budget for the timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut BenchmarkGroup {
        self.measurement_time = d;
        self
    }

    /// Annotates subsequent benchmarks with work-per-iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut BenchmarkGroup {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` with a fixed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut BenchmarkGroup
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut bencher, input);
        self.report(&id.id, &bencher);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut BenchmarkGroup {
        let mut bencher = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut bencher);
        self.report(name, &bencher);
        self
    }

    /// Ends the group (reporting happens per benchmark; nothing to flush).
    pub fn finish(self) {}

    fn report(&self, id: &str, bencher: &Bencher) {
        let mean = bencher.mean_ns();
        let label = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        let mut line = format!("{label:<40} time: {}", fmt_ns(mean));
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(e) => (e, "elem"),
                Throughput::Bytes(b) => (b, "B"),
            };
            if mean > 0.0 && count > 0 {
                let per_sec = count as f64 / (mean * 1e-9);
                line.push_str(&format!("   thrpt: {per_sec:.3e} {unit}/s"));
            }
        }
        println!("{line}");
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    total_ns: f64,
    iterations: u64,
}

impl Bencher {
    fn new(sample_size: usize, measurement_time: Duration) -> Bencher {
        Bencher {
            sample_size,
            measurement_time,
            total_ns: 0.0,
            iterations: 0,
        }
    }

    /// Runs `f` repeatedly: a short warm-up, then timed samples until the
    /// sample count or the time budget is exhausted.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..2 {
            black_box(f());
        }
        let budget = self.measurement_time;
        let start = Instant::now();
        let mut samples = 0usize;
        while samples < self.sample_size && start.elapsed() < budget {
            let t0 = Instant::now();
            black_box(f());
            self.total_ns += t0.elapsed().as_nanos() as f64;
            self.iterations += 1;
            samples += 1;
        }
    }

    fn mean_ns(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.total_ns / self.iterations as f64
        }
    }
}

/// Binds a name to a list of benchmark functions taking `&mut Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs >= 3, "warm-up + samples must run");
    }

    #[test]
    fn id_renders_name_and_parameter() {
        assert_eq!(BenchmarkId::new("f", 64).id, "f/64");
    }
}
