//! Property-based invariance suite: the model's symmetries, checked with
//! proptest over random configurations.
//!
//! * Feasibility (and the classifier's whole iteration structure) is
//!   invariant under common tag shifts — nodes cannot see the global
//!   clock.
//! * Feasibility is invariant under node relabelling — nodes are
//!   anonymous.
//! * The reference and fast classifier engines agree *exactly*.
//! * Feasible ⟹ the compiled algorithm elects exactly one leader;
//!   infeasible ⟹ the canonical execution leaves no unique history.

use proptest::prelude::*;

use radio_classifier::{classify_with, Engine};
use radio_graph::{generators, Configuration, NodeId};
use radio_util::rng::rng_from;

/// Deterministic random configuration from compact parameters.
fn build_config(n: usize, extra: usize, span: u64, seed: u64) -> Configuration {
    let mut rng = rng_from(seed);
    let max_extra = n * (n - 1) / 2 - n.saturating_sub(1);
    let g = generators::random_connected(n, extra.min(max_extra), &mut rng);
    radio_graph::tags::random_in_span(g, span, &mut rng)
}

fn config_strategy() -> impl Strategy<Value = Configuration> {
    (1usize..12, 0usize..8, 0u64..6, any::<u64>())
        .prop_map(|(n, extra, span, seed)| build_config(n, extra, span, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engines_agree(config in config_strategy()) {
        let r = classify_with(&config, Engine::Reference);
        let f = classify_with(&config, Engine::Fast);
        prop_assert_eq!(r.feasible, f.feasible);
        prop_assert_eq!(r.iterations, f.iterations);
        for (a, b) in r.records.iter().zip(&f.records) {
            prop_assert_eq!(&a.partition, &b.partition);
            prop_assert_eq!(&a.labels, &b.labels);
        }
    }

    #[test]
    fn tag_shift_invariance(config in config_strategy(), shift in 0u64..40) {
        let shifted = config.shift_tags(shift);
        let a = radio_classifier::classify(&config);
        let b = radio_classifier::classify(&shifted);
        prop_assert_eq!(a.feasible, b.feasible);
        prop_assert_eq!(a.iterations, b.iterations);
        // the whole class structure is shift-invariant
        for (ra, rb) in a.records.iter().zip(&b.records) {
            prop_assert_eq!(&ra.partition, &rb.partition);
        }
    }

    #[test]
    fn relabel_invariance(config in config_strategy(), perm_seed in any::<u64>()) {
        use rand::seq::SliceRandom;
        let n = config.size();
        let mut perm: Vec<NodeId> = (0..n as NodeId).collect();
        perm.shuffle(&mut rng_from(perm_seed));
        let relabelled = config.relabel(&perm);
        let a = radio_classifier::classify(&config);
        let b = radio_classifier::classify(&relabelled);
        prop_assert_eq!(a.feasible, b.feasible, "{} vs {}", config, relabelled);
        prop_assert_eq!(a.iterations, b.iterations);
        // class blocks correspond through the permutation
        let pa = a.final_partition();
        let pb = b.final_partition();
        for v in 0..n as NodeId {
            for w in 0..n as NodeId {
                let same_a = pa.class_of(v) == pa.class_of(w);
                let same_b = pb.class_of(perm[v as usize]) == pb.class_of(perm[w as usize]);
                prop_assert_eq!(same_a, same_b);
            }
        }
    }

    #[test]
    fn feasible_elects_exactly_one(config in config_strategy()) {
        match anon_radio::solve(&config) {
            Ok(dedicated) => {
                let report = dedicated.run();
                prop_assert!(report.is_ok(), "{}: {:?}", config, report.err());
            }
            Err(_) => {
                // infeasible: canonical execution must leave no unique history
                let (outcome, schedule) = anon_radio::CanonicalSchedule::build(&config);
                prop_assert!(!outcome.feasible);
                let factory =
                    anon_radio::CanonicalFactory::new(std::sync::Arc::new(schedule));
                let ex = radio_sim::Executor::run(
                    &config,
                    &factory,
                    radio_sim::RunOpts::default(),
                )
                .unwrap();
                prop_assert!(ex.unique_history_nodes().is_empty(), "{}", config);
            }
        }
    }

    #[test]
    fn classifier_iterations_bounded_by_half_n(config in config_strategy()) {
        let out = radio_classifier::classify(&config);
        prop_assert!(out.iterations <= config.size().div_ceil(2));
        // Corollary 3.3: strictly increasing class counts until exit
        let counts = out.class_counts();
        for w in counts.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        for w in counts[..counts.len().saturating_sub(1)].windows(2) {
            prop_assert!(w[0] < w[1], "strict growth before the exit iteration");
        }
    }
}
