//! Integration tests of the campaign layer: grid enumeration, positional
//! seeding, shard-geometry invariance, resume semantics, and JSONL shape
//! — the same contract the CI smoke run asserts on the CLI — on both the
//! legacy six-family grid and the extended `FamilySpec × TagStrategy`
//! scenario grid.

use anon_radio::cache::CacheConfig;
use anon_radio::campaign::{
    BatchConfig, CampaignRunner, CampaignSpec, FamilySpec, Phase, TagStrategy,
};
use radio_sim::{ModelKind, RunOpts};

fn smoke_spec() -> CampaignSpec {
    CampaignSpec {
        phase: Phase::Elect,
        families: vec![FamilySpec::Path, FamilySpec::Star],
        tags: vec![TagStrategy::Uniform],
        sizes: vec![6],
        spans: vec![2, 4],
        models: ModelKind::ALL.to_vec(),
        reps: 2,
        seed: 7,
        opts: RunOpts::default(),
        cache: CacheConfig::default(),
        batch: BatchConfig::default(),
    }
}

fn classify_smoke_spec() -> CampaignSpec {
    CampaignSpec {
        phase: Phase::Classify,
        models: vec![ModelKind::NoCollisionDetection],
        reps: 3,
        ..smoke_spec()
    }
}

/// The extended scenario grid: generator-zoo families (including
/// size-pinned specs) crossed with every tag strategy — the acceptance
/// grid of the scenario-grammar issue.
fn extended_spec() -> CampaignSpec {
    CampaignSpec {
        phase: Phase::Elect,
        families: vec![
            "grid:3x2".parse().unwrap(),
            "torus:3x3".parse().unwrap(),
            "hypercube:3".parse().unwrap(),
            "barbell:3+1".parse().unwrap(),
            FamilySpec::Wheel,
            FamilySpec::Ladder,
        ],
        tags: TagStrategy::ALL.to_vec(),
        sizes: vec![6],
        spans: vec![5],
        models: vec![ModelKind::NoCollisionDetection],
        reps: 2,
        seed: 23,
        opts: RunOpts::default(),
        cache: CacheConfig::default(),
        batch: BatchConfig::default(),
    }
}

/// Strips the measured wall-clock summary, leaving only derived fields.
fn stable(rows: Vec<String>) -> Vec<String> {
    rows.into_iter()
        .map(|row| row.split(",\"wall_ns\"").next().unwrap().to_string())
        .collect()
}

#[test]
fn tiny_grid_produces_one_row_per_cell_with_stable_aggregates() {
    // The CI smoke grid: 2 families × 2 spans × 3 models, --shards 4.
    let mut runner = CampaignRunner::new(smoke_spec(), 4);
    runner.run_to_completion(2);
    let rows = runner.jsonl_rows();
    assert_eq!(rows.len(), 12, "one JSONL row per grid cell");
    for row in &rows {
        assert!(row.contains("\"runs\":2"), "stable aggregate field: {row}");
    }
    // the paper's model elects on every feasible draw of this grid
    for (cell, agg) in runner.aggregates() {
        if cell.model == ModelKind::NoCollisionDetection {
            assert_eq!(agg.elected, agg.feasible, "{cell}");
        }
    }
}

#[test]
fn shard_and_thread_geometry_are_invisible_in_the_rows() {
    let run = |shards: usize, threads: usize| {
        let mut runner = CampaignRunner::new(smoke_spec(), shards);
        runner.run_to_completion(threads);
        stable(runner.jsonl_rows())
    };
    let reference = run(1, 1);
    for (shards, threads) in [(4, 2), (3, 4), (24, 2), (50, 1)] {
        assert_eq!(
            reference,
            run(shards, threads),
            "shards={shards} threads={threads}"
        );
    }
}

#[test]
fn resumed_campaign_completes_the_interrupted_one() {
    // Simulate an interruption: process A reports shards 0..2, dies;
    // process B (fresh runner, same spec) resumes at the persisted cursor
    // and reports shards 2..4. A's rows folded with B's must equal an
    // uninterrupted campaign cell for cell — seeds are positional, so the
    // split point cannot leak into any run.
    let mut full = CampaignRunner::new(smoke_spec(), 4);
    full.run_to_completion(2);

    let mut a = CampaignRunner::new(smoke_spec(), 4);
    a.run_next_shard(2).expect("shard 0");
    a.run_next_shard(2).expect("shard 1");
    let cursor = a.cursor();
    assert_eq!(cursor, 2);
    assert!(!a.is_done());

    let mut b = CampaignRunner::new(smoke_spec(), 4);
    b.skip_to(cursor);
    b.run_to_completion(2);
    assert!(b.is_done());

    for (((cell, f), (_, ra)), (_, rb)) in full.aggregates().zip(a.aggregates()).zip(b.aggregates())
    {
        // merging the two halves recovers the uninterrupted campaign:
        // counters and moments exactly, quantiles at reservoir precision
        // (exact here — every sample fits the reservoir)
        let mut merged = ra.clone();
        merged.merge(rb);
        assert_eq!(f.runs, merged.runs, "{cell}: runs");
        assert_eq!(f.feasible, merged.feasible, "{cell}: feasible");
        assert_eq!(f.elected, merged.elected, "{cell}: elected");
        assert_eq!(f.rounds.count(), merged.rounds.count(), "{cell}: count");
        assert_eq!(f.rounds.min(), merged.rounds.min(), "{cell}: min");
        assert_eq!(f.rounds.max(), merged.rounds.max(), "{cell}: max");
        if let (Some(fm), Some(mm)) = (f.rounds.mean(), merged.rounds.mean()) {
            assert!((fm - mm).abs() < 1e-9, "{cell}: mean {fm} vs {mm}");
        }
        assert_eq!(f.rounds.p50(), merged.rounds.p50(), "{cell}: p50");
    }
}

#[test]
fn classify_campaign_rows_follow_the_classify_contract() {
    // The CI classify smoke grid: 2 families × 1 size × 2 spans, 1 model.
    let mut runner = CampaignRunner::new(classify_smoke_spec(), 4);
    runner.run_to_completion(2);
    let rows = runner.jsonl_rows();
    assert_eq!(rows.len(), 4, "one JSONL row per classify cell");
    for row in &rows {
        assert!(row.starts_with("{\"phase\":\"classify\""), "{row}");
        assert!(row.contains("\"runs\":3"), "{row}");
        assert!(row.contains("\"iterations\":{\"count\":3"), "{row}");
        assert!(
            !row.contains("\"model\""),
            "classify rows have no model axis: {row}"
        );
    }
    // the classify phase decides exactly what the eager classifier decides
    let spec = classify_smoke_spec();
    for (cell, agg) in runner.aggregates() {
        let feasible = (0..spec.reps)
            .filter(|&rep| radio_classifier::classify(&spec.configuration(cell, rep)).feasible)
            .count() as u64;
        assert_eq!(agg.feasible, feasible, "{cell}");
    }
}

#[test]
fn classify_campaign_is_geometry_invariant_and_resumable() {
    let run = |shards: usize, threads: usize| {
        let mut runner = CampaignRunner::new(classify_smoke_spec(), shards);
        runner.run_to_completion(threads);
        stable(runner.jsonl_rows())
    };
    let reference = run(1, 1);
    for (shards, threads) in [(4, 2), (3, 4), (24, 1)] {
        assert_eq!(
            reference,
            run(shards, threads),
            "shards={shards} threads={threads}"
        );
    }

    // interrupted-and-resumed halves merge into the uninterrupted whole
    let mut full = CampaignRunner::new(classify_smoke_spec(), 4);
    full.run_to_completion(2);
    let mut a = CampaignRunner::new(classify_smoke_spec(), 4);
    a.run_next_shard(2).expect("shard 0");
    let mut b = CampaignRunner::new(classify_smoke_spec(), 4);
    b.skip_to(a.cursor());
    b.run_to_completion(2);
    for (((cell, f), (_, ra)), (_, rb)) in full.aggregates().zip(a.aggregates()).zip(b.aggregates())
    {
        let mut merged = ra.clone();
        merged.merge(rb);
        assert_eq!(f.runs, merged.runs, "{cell}");
        assert_eq!(f.feasible, merged.feasible, "{cell}");
        assert_eq!(f.iterations.count(), merged.iterations.count(), "{cell}");
        assert_eq!(f.iterations.min(), merged.iterations.min(), "{cell}");
        assert_eq!(f.relabels.max(), merged.relabels.max(), "{cell}");
    }
}

#[test]
fn extended_grid_enumerates_families_by_tag_strategies() {
    let spec = extended_spec();
    assert!(spec.validate().is_ok());
    let cells = spec.cells();
    assert_eq!(cells.len(), 6 * 4, "6 families × 4 tag strategies");
    // size-pinned specs override the size axis; scalable ones follow it
    assert!(cells
        .iter()
        .filter(|c| c.family == "torus:3x3".parse().unwrap())
        .all(|c| c.n == 9));
    assert!(cells
        .iter()
        .filter(|c| c.family == FamilySpec::Wheel)
        .all(|c| c.n == 6));
    // every cell's drawn configuration matches its label
    for cell in cells.iter().step_by(5) {
        let config = spec.configuration(cell, 1);
        assert_eq!(config.size(), cell.n, "{cell}");
        assert!(config.span() <= cell.span, "{cell}");
        assert!(config.is_normalized(), "{cell}");
    }
}

#[test]
fn extended_grid_rows_are_phase_and_scenario_tagged() {
    let mut runner = CampaignRunner::new(extended_spec(), 4);
    runner.run_to_completion(2);
    let rows = runner.jsonl_rows();
    assert_eq!(rows.len(), 24);
    for strategy in ["uniform", "clustered", "extremes", "arith:2"] {
        assert_eq!(
            rows.iter()
                .filter(|r| r.contains(&format!("\"tags\":\"{strategy}\"")))
                .count(),
            6,
            "one row per family under {strategy}"
        );
    }
    for family in [
        "grid:3x2",
        "torus:3x3",
        "hypercube:3",
        "barbell:3+1",
        "wheel",
        "ladder",
    ] {
        assert_eq!(
            rows.iter()
                .filter(|r| r.contains(&format!("\"family\":\"{family}\"")))
                .count(),
            4,
            "one row per strategy for {family}"
        );
    }
    // the paper's model elects on every feasible draw, whatever the
    // topology or tag placement
    for (cell, agg) in runner.aggregates() {
        assert_eq!(agg.elected, agg.feasible, "{cell}");
        assert_eq!(agg.runs, 2, "{cell}");
    }
}

#[test]
fn extended_grid_is_shard_and_thread_invariant() {
    let run = |shards: usize, threads: usize| {
        let mut runner = CampaignRunner::new(extended_spec(), shards);
        runner.run_to_completion(threads);
        stable(runner.jsonl_rows())
    };
    let reference = run(1, 1);
    for (shards, threads) in [(4, 2), (5, 3), (48, 2)] {
        assert_eq!(
            reference,
            run(shards, threads),
            "shards={shards} threads={threads}"
        );
    }
}

#[test]
fn extended_grid_resume_completes_the_interrupted_campaign() {
    let mut full = CampaignRunner::new(extended_spec(), 6);
    full.run_to_completion(2);

    let mut a = CampaignRunner::new(extended_spec(), 6);
    a.run_next_shard(2).expect("shard 0");
    a.run_next_shard(2).expect("shard 1");
    a.run_next_shard(2).expect("shard 2");
    let cursor = a.cursor();
    assert_eq!(cursor, 3);

    let mut b = CampaignRunner::new(extended_spec(), 6);
    b.skip_to(cursor);
    b.run_to_completion(3);

    for (((cell, f), (_, ra)), (_, rb)) in full.aggregates().zip(a.aggregates()).zip(b.aggregates())
    {
        let mut merged = ra.clone();
        merged.merge(rb);
        assert_eq!(f.runs, merged.runs, "{cell}: runs");
        assert_eq!(f.feasible, merged.feasible, "{cell}: feasible");
        assert_eq!(f.elected, merged.elected, "{cell}: elected");
        assert_eq!(f.rounds.count(), merged.rounds.count(), "{cell}: count");
        assert_eq!(f.rounds.min(), merged.rounds.min(), "{cell}: min");
        assert_eq!(f.rounds.max(), merged.rounds.max(), "{cell}: max");
    }
}

#[test]
fn leap_mode_changes_the_split_but_not_the_executions() {
    let mut leap_spec = smoke_spec();
    leap_spec.models = vec![ModelKind::NoCollisionDetection];
    leap_spec.spans = vec![64];
    let mut step_spec = leap_spec.clone();
    step_spec.opts = RunOpts::default().no_leap();

    let mut leap = CampaignRunner::new(leap_spec, 2);
    leap.run_to_completion(2);
    let mut step = CampaignRunner::new(step_spec, 2);
    step.run_to_completion(2);

    for ((cell, l), (_, s)) in leap.aggregates().zip(step.aggregates()) {
        assert_eq!(l.rounds.min(), s.rounds.min(), "{cell}");
        assert_eq!(l.rounds.max(), s.rounds.max(), "{cell}");
        assert_eq!(
            l.transmissions.mean(),
            s.transmissions.mean(),
            "{cell}: same executions"
        );
        // the no-leap campaign stepped every round; the leaping one must
        // have skipped some on a span-64 grid
        assert_eq!(s.leapt.max(), Some(0.0), "{cell}: step never leaps");
        if l.feasible > 0 {
            assert!(l.leapt.max().unwrap_or(0.0) > 0.0, "{cell}: leap leaps");
        }
    }
}
