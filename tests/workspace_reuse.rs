//! Differential testing of workspace reuse: one `SimWorkspace` driven
//! through a shuffled mix of configurations, protocols, channel models,
//! and leap modes must produce bit-identical `Execution`s (histories,
//! wake/done rounds, stats, rounds split, traces) to fresh one-shot runs.
//!
//! This is the contract that lets the batch layers keep one workspace per
//! worker thread: if any per-run state leaked across `reset_for`, a
//! reused run would diverge from its fresh twin somewhere in this mix —
//! sizes grow and shrink between consecutive runs on purpose, so stale
//! segment lengths, counter stamps, or quiescence horizons would surface.

use radio_graph::{generators, tags, Configuration};
use radio_sim::drip::{BeaconFactory, EchoFactory, SilentFactory, WaitThenTransmitFactory};
use radio_sim::{DripFactory, Execution, ModelKind, Msg, PatientFactory, RunOpts, SimWorkspace};
use radio_util::rng::{rng_from, stream};

fn assert_bit_identical(reused: &Execution, fresh: &Execution, what: &str) {
    assert_eq!(reused.histories, fresh.histories, "{what}: histories");
    assert_eq!(reused.wake_round, fresh.wake_round, "{what}: wake rounds");
    assert_eq!(reused.done_round, fresh.done_round, "{what}: done rounds");
    assert_eq!(reused.rounds, fresh.rounds, "{what}: rounds");
    assert_eq!(
        reused.rounds_stepped, fresh.rounds_stepped,
        "{what}: stepped"
    );
    assert_eq!(reused.rounds_leapt, fresh.rounds_leapt, "{what}: leapt");
    assert_eq!(reused.stats, fresh.stats, "{what}: stats");
    match (&reused.trace, &fresh.trace) {
        (None, None) => {}
        (Some(a), Some(b)) => assert_eq!(a.events, b.events, "{what}: trace"),
        _ => panic!("{what}: trace presence diverged"),
    }
}

/// A deterministic shuffled case list: configurations of varying size and
/// span crossed with protocols, models, and run options, ordered so the
/// workspace repeatedly grows and shrinks.
fn cases(seed: u64) -> Vec<(String, Configuration, Box<dyn DripFactory>, RunOpts)> {
    let mut cases: Vec<(String, Configuration, Box<dyn DripFactory>, RunOpts)> = Vec::new();
    let mut k = 0u64;
    for n in [2usize, 9, 3, 12, 5] {
        for span in [0u64, 3, 50] {
            k += 1;
            let mut rng = stream(seed, "ws-reuse", k);
            let graph = if n % 2 == 0 {
                let max_extra = n * (n - 1) / 2 - (n - 1);
                generators::random_connected(n, (n / 2).min(max_extra), &mut rng)
            } else {
                generators::star(n)
            };
            let config = tags::random_in_span(graph, span, &mut rng);
            let factory: Box<dyn DripFactory> = match k % 5 {
                0 => Box::new(SilentFactory { lifetime: 6 }),
                1 => Box::new(WaitThenTransmitFactory {
                    wait: k % 3,
                    msg: Msg(k),
                    lifetime: 10 + k % 7,
                }),
                2 => Box::new(EchoFactory { lifetime: 12 }),
                3 => Box::new(BeaconFactory {
                    start: 2,
                    lifetime: 7,
                    msg: Msg(k),
                }),
                _ => Box::new(PatientFactory::new(
                    WaitThenTransmitFactory {
                        wait: 1,
                        msg: Msg::ONE,
                        lifetime: 8,
                    },
                    config.span(),
                )),
            };
            let opts = match k % 3 {
                0 => RunOpts::default(),
                1 => RunOpts::default().no_leap(),
                _ => RunOpts::default().traced(),
            };
            cases.push((
                format!("case {k}: n={n} span={span}"),
                config,
                factory,
                opts,
            ));
        }
    }
    // Deterministic shuffle so consecutive runs mix sizes/models/options.
    use rand::Rng;
    let mut rng = rng_from(seed ^ 0xD1CE);
    for i in (1..cases.len()).rev() {
        let j = rng.random_range(0..=i);
        cases.swap(i, j);
    }
    cases
}

#[test]
fn one_workspace_matches_fresh_runs_across_a_shuffled_mix() {
    let mut ws = SimWorkspace::new();
    for (label, config, factory, opts) in cases(0xBEEF) {
        for model in ModelKind::ALL {
            let reused = ws
                .run_kind(model, &config, factory.as_ref(), opts)
                .expect("terminates");
            let fresh = model
                .run(&config, factory.as_ref(), opts)
                .expect("terminates");
            assert_bit_identical(&reused, &fresh, &format!("{label} model={model}"));
        }
    }
}

#[test]
fn one_workspace_matches_fresh_canonical_elections() {
    // The compiled canonical DRIP (the paper's algorithm, quiet_until
    // timetable and all) through a reused workspace, leap and no-leap.
    let mut ws = SimWorkspace::new();
    for m in [1u64, 4, 9] {
        let config = radio_graph::families::h_m(m);
        let dedicated = anon_radio::solve(&config).expect("H_m feasible");
        let factory = dedicated.factory();
        for opts in [RunOpts::default(), RunOpts::default().no_leap()] {
            let reused = ws.run(&config, &factory, opts).expect("terminates");
            let fresh = radio_sim::Executor::run(&config, &factory, opts).expect("terminates");
            assert_bit_identical(&reused, &fresh, &format!("H_{m} leap={}", opts.leap));
        }
        // and the full election pipeline through the workspace API
        let report =
            anon_radio::elect_leader_in(&mut ws, &config, ModelKind::default(), RunOpts::default())
                .expect("elects");
        assert_eq!(
            report.leader,
            anon_radio::elect_leader(&config).unwrap().leader
        );
    }
}

#[test]
fn workspace_batches_match_reference_engine() {
    // Round-trip through the batch entry point too: the reference engine
    // is the oracle, the workspace batch must agree with it exactly.
    let mut rng = rng_from(7);
    let configs: Vec<Configuration> = (3..10)
        .map(|n| {
            let max_extra = n * (n - 1) / 2 - (n - 1);
            let g = generators::random_connected(n, 2.min(max_extra), &mut rng);
            tags::random_in_span(g, 4, &mut rng)
        })
        .collect();
    let factory = WaitThenTransmitFactory {
        wait: 0,
        msg: Msg(3),
        lifetime: 9,
    };
    for model in ModelKind::ALL {
        let batch = radio_sim::parallel::run_batch(&configs, &factory, model, RunOpts::default());
        for (config, result) in configs.iter().zip(batch) {
            let naive = model
                .run_reference(config, &factory, RunOpts::default())
                .expect("terminates");
            let ex = result.expect("terminates");
            assert_eq!(ex.histories, naive.histories);
            assert_eq!(ex.wake_round, naive.wake_round);
            assert_eq!(ex.done_round, naive.done_round);
            assert_eq!(ex.stats, naive.stats);
            assert_eq!(ex.rounds, naive.rounds);
        }
    }
}
