//! Binary ↔ JSONL round-trip on the golden corpus.
//!
//! The compact binary row format has two independent implementations:
//! the encoder/decoder pair in `anon_radio::row` and the dependency-free
//! decoder in `radio_lint::binary` (used by `radio-lint schema` to
//! validate binary row files). These tests pin three contracts on the
//! golden corpus under `tests/golden/`:
//!
//! 1. `jsonl_to_binary` → `binary_to_jsonl` reproduces the corpus text
//!    byte for byte (the corpus is canonical JSONL, so no normalization
//!    step hides drift);
//! 2. corrupt headers and truncated payloads are rejected, not decoded
//!    into garbage rows;
//! 3. the linter's standalone decoder agrees with the core decoder on
//!    every corpus row — the two implementations cross-check each other
//!    rather than one trusting the other.

use anon_radio::row::{binary_to_jsonl, is_binary, jsonl_to_binary, read_binary};

const GOLDEN: [(&str, &str); 2] = [
    (
        "tests/golden/campaign_elect.jsonl",
        include_str!("golden/campaign_elect.jsonl"),
    ),
    (
        "tests/golden/campaign_classify.jsonl",
        include_str!("golden/campaign_classify.jsonl"),
    ),
];

#[test]
fn golden_corpus_round_trips_through_binary_exactly() {
    for (name, text) in GOLDEN {
        let bytes = jsonl_to_binary(text)
            .unwrap_or_else(|e| panic!("{name}: corpus failed to encode: {e}"));
        assert!(is_binary(&bytes), "{name}: encoded file missing magic");
        let back = binary_to_jsonl(&bytes)
            .unwrap_or_else(|e| panic!("{name}: encoded corpus failed to decode: {e}"));
        assert_eq!(back, text, "{name}: binary round-trip is not the identity");
        let rows = read_binary(&bytes).unwrap();
        assert_eq!(
            rows.len(),
            text.lines().filter(|l| !l.trim().is_empty()).count(),
            "{name}: row count drifted through the binary format"
        );
    }
}

#[test]
fn corrupt_binary_files_are_rejected() {
    let (_, text) = GOLDEN[0];
    let bytes = jsonl_to_binary(text).unwrap();

    // Bad magic: first byte flipped.
    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xff;
    assert!(!is_binary(&bad_magic));
    assert!(
        read_binary(&bad_magic).is_err(),
        "bad magic must be rejected"
    );

    // Unknown schema version.
    let mut bad_version = bytes.clone();
    bad_version[4] = 0xfe;
    bad_version[5] = 0xca;
    assert!(
        read_binary(&bad_version).is_err(),
        "unknown version must be rejected"
    );

    // Header truncated mid-version.
    assert!(
        read_binary(&bytes[..5]).is_err(),
        "truncated header must be rejected"
    );

    // Payload truncated: drop the final byte of the last row.
    assert!(
        read_binary(&bytes[..bytes.len() - 1]).is_err(),
        "truncated payload must be rejected"
    );

    // Truncated length prefix: header plus two stray bytes.
    let mut stray = bytes[..6].to_vec();
    stray.extend_from_slice(&[1, 0]);
    assert!(
        read_binary(&stray).is_err(),
        "truncated length prefix must be rejected"
    );

    // The intact file still decodes — the corruption above was the
    // problem, not the corpus.
    assert!(read_binary(&bytes).is_ok());
}

#[test]
fn lint_decoder_agrees_with_the_core_decoder_on_the_corpus() {
    for (name, text) in GOLDEN {
        let bytes = jsonl_to_binary(text).unwrap();
        assert!(radio_lint::binary::is_binary(&bytes));
        let via_lint = radio_lint::binary::decode_to_jsonl(name, &bytes)
            .unwrap_or_else(|f| panic!("{name}: lint decoder rejected a valid file: {f:?}"));
        let via_core = binary_to_jsonl(&bytes).unwrap();
        assert_eq!(
            via_lint, via_core,
            "{name}: lint and core decoders disagree on the same bytes"
        );
        assert_eq!(via_lint, text, "{name}: lint decoder is not the identity");
    }
}

#[test]
fn lint_decoder_rejects_what_the_core_decoder_rejects() {
    let (name, text) = GOLDEN[0];
    let bytes = jsonl_to_binary(text).unwrap();
    for (label, mutate) in [
        ("bad magic", {
            let mut b = bytes.clone();
            b[0] ^= 0xff;
            b
        }),
        ("bad version", {
            let mut b = bytes.clone();
            b[4] = 0xfe;
            b
        }),
        ("truncated payload", bytes[..bytes.len() - 1].to_vec()),
        ("short header", bytes[..5].to_vec()),
    ] {
        assert!(
            read_binary(&mutate).is_err(),
            "core decoder accepted a {label} file"
        );
        assert!(
            radio_lint::binary::decode_to_jsonl(name, &mutate).is_err(),
            "lint decoder accepted a {label} file"
        );
    }
}
