//! Integration tests for the paper's Section 4: the lower bounds and
//! impossibility results, exercised through the public API.

use anon_radio::distributed::refute_distributed_decision;
use anon_radio::lower_bounds::{canonical_divergences, divergence_round, g_m_central_pairs};
use anon_radio::universal::{gallery, refute_universal, Refutation};
use anon_radio::{is_feasible, solve};
use radio_graph::families;
use radio_sim::drip::WaitThenTransmitFactory;
use radio_sim::Msg;

// --- Proposition 4.1: Ω(n) for the G_m family ---------------------------

#[test]
fn prop_4_1_g_m_feasible_with_omega_n_horizon() {
    for m in [2usize, 3, 5, 8] {
        let config = families::g_m(m);
        assert!(is_feasible(&config), "G_{m} is feasible");
        // The proof: the three central b-nodes share histories in every
        // round t < m−1, so no algorithm can decide before then. Observe
        // the canonical DRIP obeying the bound.
        let (ex, divs) = canonical_divergences(&config, &g_m_central_pairs(m));
        for d in &divs {
            assert!(d.expect("eventually diverges") >= m as u64 - 1, "G_{m}");
        }
        // and the election indeed takes Ω(n) = Ω(4m+1) global rounds
        let completion = ex.done_round.iter().max().copied().unwrap();
        assert!(
            completion >= m as u64,
            "G_{m}: completed in {completion} rounds"
        );
    }
}

// --- Lemma 4.2 / Proposition 4.3: Ω(σ) for the H_m family ---------------

#[test]
fn prop_4_3_h_m_needs_at_least_m_rounds() {
    for m in [1u64, 2, 8, 32, 128] {
        let config = families::h_m(m);
        assert!(is_feasible(&config), "H_{m} is feasible (Lemma 4.2)");
        let dedicated = solve(&config).unwrap();
        let report = dedicated.run().unwrap();
        // Lemma 4.2: any election algorithm takes ≥ m rounds.
        assert!(
            report.completion_round >= m,
            "H_{m}: completed in {} < m rounds — violates Lemma 4.2",
            report.completion_round
        );
        // the canonical DRIP achieves O(σ) here: 4 singleton classes after
        // one phase of (2σ+1)+σ rounds.
        assert_eq!(report.phases, 1);
        assert!(report.rounds_local <= 3 * config.span() + 2);
    }
}

#[test]
fn h_m_tag_zero_nodes_cannot_split_before_hearing_outside() {
    // The first useful asymmetry for b,c comes from a/d's transmissions.
    for m in [2u64, 6, 20] {
        let config = families::h_m(m);
        let (_, divs) = canonical_divergences(&config, &[(1, 2)]);
        assert!(divs[0].expect("H_m feasible") >= m, "H_{m}");
    }
}

// --- Proposition 4.4: no universal algorithm ----------------------------

#[test]
fn prop_4_4_every_candidate_fails_on_some_h_m() {
    for candidate in gallery() {
        let name = candidate.name.clone();
        match refute_universal(&candidate, 4_096) {
            Refutation::FailsOn {
                m,
                leaders,
                symmetric_pairs,
                ..
            } => {
                assert_ne!(leaders.len(), 1, "{name} elected exactly one on H_{m}");
                assert!(symmetric_pairs[0] && symmetric_pairs[1], "{name}");
                assert!(
                    is_feasible(&families::h_m(m)),
                    "{name}: H_{m} must be feasible"
                );
            }
            Refutation::NeverTransmits { .. } => {
                panic!("{name}: gallery candidates transmit eventually")
            }
        }
    }
}

#[test]
fn prop_4_4_knowing_n_does_not_help() {
    // All counterexamples have n = 4: a universal algorithm even for the
    // class of 4-node feasible configurations cannot exist.
    for candidate in gallery() {
        if let Refutation::FailsOn { m, .. } = refute_universal(&candidate, 4_096) {
            assert_eq!(families::h_m(m).size(), 4);
        }
    }
}

// --- Proposition 4.5: no distributed decision ---------------------------

#[test]
fn prop_4_5_h_and_s_are_indistinguishable() {
    for wait in [0u64, 1, 4, 9] {
        let drip = WaitThenTransmitFactory {
            wait,
            msg: Msg::ONE,
            lifetime: wait + 20,
        };
        let r = refute_distributed_decision(&drip, 4_096).unwrap();
        assert!(r.is_conclusive(), "wait={wait}: {r:?}");
        assert!(r.h_feasible);
        assert!(!r.s_feasible);
        assert!(r.histories_identical.iter().all(|&b| b));
    }
}

#[test]
fn prop_4_5_even_the_canonical_drip_cannot_decide() {
    // The dedicated DRIP compiled for H_3, run as a probe: identical
    // histories on H_{t+1} vs S_{t+1}.
    let dedicated = solve(&families::h_m(3)).unwrap();
    let factory = dedicated.factory();
    let r = refute_distributed_decision(&factory, 4_096).unwrap();
    assert!(r.is_conclusive(), "{r:?}");
}

// --- stress: very large spans -------------------------------------------

#[test]
#[ignore = "heavy: ~1.3M simulated rounds; run with --ignored (release recommended)"]
fn h_m_mega_span_stress() {
    // H_{300000}: σ ≈ 3·10⁵, a ~1.2M-round canonical execution on 4 nodes.
    // Exercises the engine's long-quiet-round path and u64 round
    // arithmetic far beyond the usual sweeps.
    let m = 300_000u64;
    let config = families::h_m(m);
    let dedicated = solve(&config).expect("H_m feasible");
    let report = dedicated.run().expect("elects");
    assert_eq!(report.leader, 0);
    assert!(report.completion_round >= m);
    assert_eq!(report.phases, 1);
}

#[test]
fn h_m_large_span_smoke() {
    // The affordable version of the stress test, always on.
    let m = 20_000u64;
    let config = families::h_m(m);
    let report = solve(&config).unwrap().run().unwrap();
    assert_eq!(report.leader, 0);
    assert!(report.completion_round >= m);
}

// --- divergence helper sanity -------------------------------------------

#[test]
fn divergence_round_is_symmetric_and_reflexive() {
    let config = families::g_m(2);
    let (ex, _) = canonical_divergences(&config, &[]);
    for v in 0..config.size() as u32 {
        assert_eq!(
            divergence_round(&ex, v, v),
            None,
            "a node never diverges from itself"
        );
        for w in 0..config.size() as u32 {
            assert_eq!(divergence_round(&ex, v, w), divergence_round(&ex, w, v));
        }
    }
}
