//! Structural-lemma validation across configuration corpora: Lemmas 3.6,
//! 3.8(2) and 3.9 checked on real executions of the canonical DRIP.

use anon_radio::verify::verify_canonical_execution;
use radio_graph::{families, generators, tags, Configuration};
use radio_util::rng::rng_from;

#[test]
fn lemmas_hold_on_paper_families() {
    for m in 1..=6u64 {
        verify_canonical_execution(&families::h_m(m)).unwrap();
        verify_canonical_execution(&families::s_m(m)).unwrap();
    }
    for m in 2..=5usize {
        verify_canonical_execution(&families::g_m(m)).unwrap();
    }
}

#[test]
fn lemmas_hold_on_deterministic_shapes() {
    let shapes: Vec<(&str, radio_graph::Graph)> = vec![
        ("path", generators::path(7)),
        ("cycle", generators::cycle(7)),
        ("star", generators::star(7)),
        ("complete", generators::complete(5)),
        ("grid", generators::grid(3, 3)),
        ("hypercube", generators::hypercube(3)),
        ("bipartite", generators::complete_bipartite(3, 4)),
        ("caterpillar", generators::caterpillar(3, 2)),
        ("spider", generators::spider(3, 2)),
        ("barbell", generators::barbell(3, 1)),
        ("lollipop", generators::lollipop(4, 3)),
        ("balanced tree", generators::balanced_tree(9, 3)),
        ("wheel", generators::wheel(7)),
        ("ladder", generators::ladder(4)),
        ("torus", generators::torus(3, 3)),
        ("double star", generators::double_star(3, 2)),
    ];
    let mut rng = rng_from(31);
    for (name, graph) in shapes {
        // several tag regimes per shape
        let n = graph.node_count();
        let configs = vec![
            Configuration::with_uniform_tags(graph.clone(), 1).unwrap(),
            tags::random_in_span(graph.clone(), 2, &mut rng),
            tags::distinct_shuffled(graph.clone(), &mut rng),
            tags::bfs_wave(graph.clone(), 2),
        ];
        for (i, config) in configs.into_iter().enumerate() {
            verify_canonical_execution(&config)
                .unwrap_or_else(|e| panic!("{name} (n={n}, regime {i}): {e}"));
        }
    }
}

#[test]
fn lemmas_hold_on_random_corpus() {
    let mut rng = rng_from(1234);
    for trial in 0..40 {
        let n = 2 + trial % 12;
        let g = generators::gnp_connected(n, 0.25, &mut rng);
        let config = tags::random_in_span(g, 4, &mut rng);
        verify_canonical_execution(&config)
            .unwrap_or_else(|e| panic!("trial {trial} ({config}): {e}"));
    }
}

#[test]
fn proposition_2_1_local_global_conversion() {
    // For a patient DRIP, local round i at v occurs in the same global
    // round as local round i − (t_w − t_v) at w. Equivalent check: every
    // node wakes exactly at its tag, so global = tag + local.
    let config = families::g_m(3);
    let (_, schedule) = anon_radio::CanonicalSchedule::build(&config);
    let factory = anon_radio::CanonicalFactory::new(std::sync::Arc::new(schedule));
    let ex = radio_sim::Executor::run(&config, &factory, radio_sim::RunOpts::default()).unwrap();
    for v in 0..config.size() as u32 {
        assert_eq!(ex.wake_round[v as usize], config.tag(v));
        for w in 0..config.size() as u32 {
            // local i at v is global tag(v)+i = local i + tag(v) − tag(w) at w.
            let i = 5u64;
            let global = config.tag(v) + i;
            let local_at_w = global as i128 - config.tag(w) as i128;
            assert_eq!(
                local_at_w,
                i as i128 - (config.tag(w) as i128 - config.tag(v) as i128)
            );
        }
    }
}
