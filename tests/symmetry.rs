//! Symmetry and equivariance: the model-level facts the paper's
//! impossibility arguments stand on.
//!
//! * **Equivariance**: if `π` is a configuration automorphism (preserves
//!   adjacency and tags), then under *any* DRIP, `H_v = H_{π(v)}` for all
//!   nodes, forever. Deterministic + anonymous + symmetric input ⇒
//!   symmetric execution.
//! * **Leader rigidity**: a node moved by some automorphism can never be
//!   the unique leader; hence if *every* node is moved, the configuration
//!   is infeasible — and `Classifier` must agree.

use radio_graph::{families, generators, Configuration, NodeId};
use radio_sim::drip::WaitThenTransmitFactory;
use radio_sim::{DripFactory, Executor, Msg, RunOpts};

fn histories_equal_under(
    config: &Configuration,
    perm: &[NodeId],
    factory: &dyn DripFactory,
) -> bool {
    let ex = Executor::run(config, factory, RunOpts::default()).expect("terminates");
    (0..config.size()).all(|v| ex.histories[v] == ex.histories[perm[v] as usize])
}

#[test]
fn g_m_mirror_pairs_stay_identical_under_any_drip() {
    // Prop 4.1's symmetry core: G_m is mirror-symmetric; a_i ↔ c_i and
    // b_i ↔ b_{2m+2−i} keep equal histories under every algorithm.
    for m in [2usize, 3, 4] {
        let config = families::g_m(m);
        let n = config.size();
        let mirror: Vec<NodeId> = (0..n as NodeId).rev().collect();
        assert!(config.is_automorphism(&mirror), "G_{m} is mirror-symmetric");

        // an arbitrary DRIP
        let drip = WaitThenTransmitFactory {
            wait: 2,
            msg: Msg::ONE,
            lifetime: 30,
        };
        assert!(
            histories_equal_under(&config, &mirror, &drip),
            "G_{m} under wait-then-transmit"
        );

        // and the canonical DRIP of the configuration itself
        let dedicated = anon_radio::solve(&config).expect("G_m feasible");
        let factory = dedicated.factory();
        assert!(
            histories_equal_under(&config, &mirror, &factory),
            "G_{m} under canonical"
        );

        // the centre is the mirror's fixed point — and the only electable
        // node.
        let center = families::g_m_center(m);
        assert_eq!(mirror[center as usize], center);
        assert_eq!(
            dedicated.run().unwrap().leader,
            center,
            "G_{m} must elect its centre"
        );
    }
}

#[test]
fn s_m_mirror_forces_even_leader_counts() {
    let config = families::s_m(3);
    let mirror = vec![3, 2, 1, 0];
    assert!(config.is_automorphism(&mirror));
    let drip = WaitThenTransmitFactory {
        wait: 1,
        msg: Msg::ONE,
        lifetime: 20,
    };
    assert!(histories_equal_under(&config, &mirror, &drip));
    // H_m breaks the mirror: not an automorphism there
    assert!(!families::h_m(3).is_automorphism(&mirror));
}

#[test]
fn rotation_equivariance_on_periodic_cycles() {
    // 6-cycle with 2-periodic tags [0,1,0,1,0,1]: rotation by 2 is an
    // automorphism; histories repeat with period 2 under any DRIP.
    let tags = vec![0u64, 1, 0, 1, 0, 1];
    let config = Configuration::new(generators::cycle(6), tags).unwrap();
    let rot2: Vec<NodeId> = (0..6).map(|v| ((v + 2) % 6) as NodeId).collect();
    assert!(config.is_automorphism(&rot2));
    let drip = WaitThenTransmitFactory {
        wait: 0,
        msg: Msg::ONE,
        lifetime: 15,
    };
    assert!(histories_equal_under(&config, &rot2, &drip));
    // consequence: infeasible (every node is moved by rot2)
    assert!(!anon_radio::is_feasible(&config));
}

#[test]
fn predicted_leaders_are_fixed_by_all_automorphisms() {
    // Exhaustive cross-check on every connected 4-node configuration with
    // span ≤ 2: if feasible, the elected leader is moved by no
    // automorphism.
    for graph in radio_graph::enumerate::connected_graphs(4) {
        for tags in radio_graph::enumerate::tag_patterns(4, 2) {
            let config = Configuration::new(graph.clone(), tags).unwrap();
            if let Ok(dedicated) = anon_radio::solve(&config) {
                let leader = dedicated.predicted_leader();
                assert!(
                    !config.is_moved_by_some_automorphism(leader),
                    "{config}: leader v{leader} is moved by an automorphism"
                );
            }
        }
    }
}

#[test]
fn fully_moved_configurations_are_infeasible() {
    // If every node is moved by some automorphism, no unique leader can
    // exist; Classifier must answer No. Checked exhaustively on 4-node
    // configurations with span ≤ 1.
    let mut fully_moved = 0;
    for graph in radio_graph::enumerate::connected_graphs(4) {
        for tags in radio_graph::enumerate::tag_patterns(4, 1) {
            let config = Configuration::new(graph.clone(), tags).unwrap();
            let all_moved = (0..4).all(|v| config.is_moved_by_some_automorphism(v as NodeId));
            if all_moved {
                fully_moved += 1;
                assert!(
                    !anon_radio::is_feasible(&config),
                    "{config}: every node is in a non-trivial orbit, yet feasible?"
                );
            }
        }
    }
    assert!(
        fully_moved > 10,
        "the census should contain fully-symmetric configurations"
    );
}

#[test]
fn rigidity_does_not_imply_feasibility() {
    // The converse is false: P_3 with uniform tags has a fixed centre
    // (not fully moved) yet is infeasible — structure alone cannot be
    // exploited without timing asymmetry.
    let p3 = Configuration::with_uniform_tags(generators::path(3), 0).unwrap();
    assert!(!p3.is_moved_by_some_automorphism(1));
    assert!(!anon_radio::is_feasible(&p3));
}
