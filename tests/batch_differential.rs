//! Differential suite for the fused batch engine: batched ≡ sequential
//! bit for bit, across the family zoo × all three channel models ×
//! leap/step (and traced) × batch sizes {1, 3, 16, ragged last batch} —
//! every output compared: leader verdicts, rounds, the stepped/leapt
//! split, histories, wake/done rounds, stats, and traces. Plus the
//! campaign-level pin: elect rows with batching on (the default) match
//! `--no-batch` rows exactly after the measured tail.

use anon_radio::campaign::{
    BatchConfig, CampaignRunner, CampaignSpec, FamilySpec, Phase, TagStrategy,
};
use anon_radio::CompiledElection;
use radio_classifier::ClassifierWorkspace;
use radio_graph::{Configuration, NodeId};
use radio_sim::drip::WaitThenTransmitFactory;
use radio_sim::{
    BatchRun, BatchWorkspace, DripFactory, Execution, ModelKind, Msg, RunOpts, SimWorkspace,
};

/// The zoo: one member per family shape, deterministic tags (no RNG —
/// the point is engine coverage, not draw coverage, which the campaign
/// test below supplies).
fn zoo() -> Vec<Configuration> {
    let specs: [(&str, usize); 7] = [
        ("path", 6),
        ("star", 7),
        ("cycle", 5),
        ("torus:3x3", 9),
        ("hypercube:3", 8),
        ("barbell:3+1", 7),
        ("binary-tree", 10),
    ];
    specs
        .iter()
        .enumerate()
        .map(|(i, &(spec, n))| {
            let family: FamilySpec = spec.parse().unwrap();
            let graph = family.build(n, 0xD1FF + i as u64).unwrap();
            let tags: Vec<u64> = (0..n as u64).map(|v| (v * 3 + i as u64) % 7).collect();
            Configuration::new(graph, tags).unwrap()
        })
        .collect()
}

fn assert_identical(a: &Execution, b: &Execution, ctx: &str) {
    assert_eq!(a.histories, b.histories, "{ctx}: histories");
    assert_eq!(a.wake_round, b.wake_round, "{ctx}: wake rounds");
    assert_eq!(a.done_round, b.done_round, "{ctx}: done rounds");
    assert_eq!(a.rounds, b.rounds, "{ctx}: rounds");
    assert_eq!(a.rounds_stepped, b.rounds_stepped, "{ctx}: stepped split");
    assert_eq!(a.rounds_leapt, b.rounds_leapt, "{ctx}: leapt split");
    assert_eq!(a.stats, b.stats, "{ctx}: stats");
    assert_eq!(a.trace, b.trace, "{ctx}: traces");
}

/// The full matrix with a simple transmitting DRIP: every batched
/// execution must be bit-identical to the sequential workspace's,
/// whatever the batch composition.
#[test]
fn batched_executions_match_sequential_across_the_matrix() {
    let zoo = zoo();
    let factory = WaitThenTransmitFactory {
        wait: 1,
        msg: Msg(5),
        lifetime: 12,
    };
    let mut seq = SimWorkspace::new();
    let mut batch = BatchWorkspace::new();
    for model in ModelKind::ALL {
        for opts in [
            RunOpts::default(),
            RunOpts::default().no_leap(),
            RunOpts::default().traced(),
            RunOpts::default().no_leap().traced(),
        ] {
            let want: Vec<Execution> = zoo
                .iter()
                .map(|config| seq.run_kind(model, config, &factory, opts).unwrap())
                .collect();
            // 1 = degenerate batches, 3 and 16 split the 7-member zoo
            // raggedly (16 > zoo, one undersized batch; 3 leaves a
            // 1-member last batch), 7 = one full batch.
            for batch_size in [1usize, 3, 7, 16] {
                let mut got: Vec<Execution> = Vec::new();
                for chunk in zoo.chunks(batch_size) {
                    let runs: Vec<BatchRun<'_>> = chunk
                        .iter()
                        .map(|config| BatchRun {
                            config,
                            factory: &factory as &dyn DripFactory,
                        })
                        .collect();
                    got.extend(
                        batch
                            .run_kind(model, &runs, opts)
                            .into_iter()
                            .map(|r| r.unwrap()),
                    );
                }
                for (i, (a, b)) in want.iter().zip(&got).enumerate() {
                    assert_identical(
                        a,
                        b,
                        &format!("{model:?} leap={} member {i} bs={batch_size}", opts.leap),
                    );
                }
            }
        }
    }
}

/// The same matrix through the *real* election pipeline: compiled
/// canonical DRIPs, leader verdicts included. Feasible zoo members run
/// under every model and batch size; the elected leader set must match
/// the sequential path's exactly.
#[test]
fn batched_elections_agree_on_leaders_and_shape() {
    let zoo = zoo();
    let mut cls = ClassifierWorkspace::new();
    let compiled: Vec<CompiledElection> = zoo
        .iter()
        .map(|c| CompiledElection::compile_in(&mut cls, c))
        .collect();
    let members: Vec<(usize, &Configuration, &CompiledElection)> = zoo
        .iter()
        .zip(&compiled)
        .enumerate()
        .filter(|(_, (_, c))| c.feasible())
        .map(|(i, (config, c))| (i, config, c))
        .collect();
    assert!(
        members.len() >= 2,
        "zoo must keep multiple feasible members"
    );
    let mut seq = SimWorkspace::new();
    let mut batch = BatchWorkspace::new();
    for model in ModelKind::ALL {
        for opts in [RunOpts::default(), RunOpts::default().no_leap()] {
            let factories: Vec<_> = members.iter().map(|(_, _, c)| c.factory()).collect();
            let want: Vec<Execution> = members
                .iter()
                .zip(&factories)
                .map(|((_, config, _), f)| seq.run_kind(model, config, f, opts).unwrap())
                .collect();
            for batch_size in [1usize, 3, 16] {
                let mut got: Vec<Execution> = Vec::new();
                for (chunk, fchunk) in members.chunks(batch_size).zip(factories.chunks(batch_size))
                {
                    let runs: Vec<BatchRun<'_>> = chunk
                        .iter()
                        .zip(fchunk)
                        .map(|((_, config, _), f)| BatchRun {
                            config,
                            factory: f as &dyn DripFactory,
                        })
                        .collect();
                    got.extend(
                        batch
                            .run_kind(model, &runs, opts)
                            .into_iter()
                            .map(|r| r.unwrap()),
                    );
                }
                for (k, ((i, config, c), (a, b))) in
                    members.iter().zip(want.iter().zip(&got)).enumerate()
                {
                    let ctx = format!("member {i} {model:?} bs={batch_size} (#{k})");
                    assert_identical(a, b, &ctx);
                    let decision = c.decision();
                    let leaders_seq: Vec<NodeId> = (0..config.size() as NodeId)
                        .filter(|&v| decision.is_leader(a.history(v)))
                        .collect();
                    let leaders_batch: Vec<NodeId> = (0..config.size() as NodeId)
                        .filter(|&v| decision.is_leader(b.history(v)))
                        .collect();
                    assert_eq!(leaders_seq, leaders_batch, "{ctx}: leader sets");
                }
            }
        }
    }
}

/// Campaign-level pin: elect-phase JSONL rows with batching on (default
/// size and ragged sizes) are identical to `--no-batch` rows after the
/// measured tail, across shard/thread geometries.
#[test]
fn campaign_rows_unchanged_batch_on_vs_off() {
    let spec = |batch: BatchConfig| CampaignSpec {
        phase: Phase::Elect,
        families: vec![
            FamilySpec::Path,
            FamilySpec::Star,
            "torus:3x3".parse().unwrap(),
            "barbell:3+1".parse().unwrap(),
        ],
        tags: vec![TagStrategy::Uniform, TagStrategy::Arith { stride: 2 }],
        sizes: vec![6],
        spans: vec![3],
        models: ModelKind::ALL.to_vec(),
        reps: 5,
        seed: 0xBA7C4,
        opts: RunOpts::default(),
        cache: anon_radio::cache::CacheConfig::default(),
        batch,
    };
    let strip = |rows: Vec<String>| -> Vec<String> {
        rows.into_iter()
            .map(|row| row.split(",\"wall_ns\"").next().unwrap().to_string())
            .collect()
    };
    let run = |batch: BatchConfig, shards: usize, threads: usize| -> Vec<String> {
        let mut runner = CampaignRunner::new(spec(batch), shards);
        runner.run_to_completion(threads);
        strip(runner.jsonl_rows())
    };
    let unbatched = run(BatchConfig::disabled(), 4, 2);
    assert_eq!(run(BatchConfig::default(), 4, 2), unbatched, "default size");
    // ragged: 3 does not divide reps = 5, so every cell ends with a
    // 2-member last batch; 1 is the degenerate one-run-per-batch case
    assert_eq!(run(BatchConfig::with_size(3), 4, 2), unbatched, "size 3");
    assert_eq!(run(BatchConfig::with_size(1), 4, 2), unbatched, "size 1");
    // geometry invariance holds on the batched path too
    assert_eq!(run(BatchConfig::default(), 1, 1), unbatched, "1 shard");
    assert_eq!(run(BatchConfig::with_size(3), 7, 3), unbatched, "7 shards");
}
