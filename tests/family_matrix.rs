//! Differential coverage of the `FamilySpec × TagStrategy` scenario
//! matrix: every family the scenario grammar can name, under every
//! channel model and both engine modes, must behave exactly like the
//! naive reference engine — same executions, same elected leader — and
//! classification through a recycled [`ClassifierWorkspace`] must stay
//! bit-identical to fresh runs across a shuffled mix of the new
//! topologies.
//!
//! This is the scenario-grammar analogue of `tests/differential_engines.rs`
//! (which sweeps random connected graphs): the zoo instances pin the
//! *structured* shapes — tori, hypercubes, barbells, wheels — whose
//! symmetries are precisely what the classifier and the schedules have to
//! break.

use anon_radio::DedicatedElection;
use radio_classifier::{classify_with, ClassifierWorkspace, Engine};
use radio_graph::{Configuration, FamilySpec, TagStrategy};
use radio_sim::drip::WaitThenTransmitFactory;
use radio_sim::{DripFactory, Execution, ModelKind, Msg, RunOpts};
use radio_util::rng::{derive, rng_from};

/// The deterministic configuration of one `(family, strategy)` scenario
/// cell: the zoo instance at its default size, tags drawn by the strategy
/// with span 6.
fn scenario(spec: FamilySpec, strategy: TagStrategy) -> Configuration {
    let seed = derive(derive(0xFA417, &spec.to_string()), &strategy.to_string());
    let graph = spec
        .build(spec.default_size(), seed)
        .unwrap_or_else(|e| panic!("{e}"));
    strategy.configure(graph, 6, &mut rng_from(derive(seed, "tags")))
}

fn assert_same_execution(fast: &Execution, naive: &Execution, what: &str) {
    assert_eq!(fast.wake_round, naive.wake_round, "{what}: wake rounds");
    assert_eq!(fast.done_round, naive.done_round, "{what}: done rounds");
    assert_eq!(fast.histories, naive.histories, "{what}: histories");
    assert_eq!(fast.rounds, naive.rounds, "{what}: rounds");
    assert_eq!(fast.stats, naive.stats, "{what}: stats");
}

/// Runs `factory` on `config` under every model with the time-leaping
/// engine, the stepping engine, and the naive reference — all three must
/// agree byte for byte.
fn assert_engines_agree(config: &Configuration, factory: &dyn DripFactory, what: &str) {
    for model in ModelKind::ALL {
        let leap = model.run(config, factory, RunOpts::default()).unwrap();
        let step = model
            .run(config, factory, RunOpts::default().no_leap())
            .unwrap();
        let naive = model
            .run_reference(config, factory, RunOpts::default())
            .unwrap();
        assert_same_execution(&leap, &naive, &format!("{what} [{model} leap]"));
        assert_same_execution(&step, &naive, &format!("{what} [{model} step]"));
        assert_eq!(
            leap.rounds_stepped + leap.rounds_leapt,
            leap.rounds,
            "{what} [{model}]: leap round accounting"
        );
    }
}

/// The full matrix: every zoo family × every tag strategy, a generic DRIP
/// under all three models × leap/step vs the reference engine.
#[test]
fn every_family_and_strategy_is_engine_differentially_clean() {
    let drip = WaitThenTransmitFactory {
        wait: 1,
        msg: Msg(7),
        lifetime: 10,
    };
    for spec in FamilySpec::zoo() {
        for strategy in TagStrategy::ALL {
            let config = scenario(spec, strategy);
            assert_engines_agree(&config, &drip, &format!("{spec}/{strategy}"));
        }
    }
}

/// Election equivalence: on every feasible scenario cell, the compiled
/// dedicated algorithm elects the same single predicted leader under the
/// fast engine (leaping and stepping) and the naive reference engine.
#[test]
fn feasible_scenarios_elect_the_same_leader_on_every_engine() {
    let mut feasible_cells = 0usize;
    for spec in FamilySpec::zoo() {
        for strategy in TagStrategy::ALL {
            let config = scenario(spec, strategy);
            let Ok(dedicated) = DedicatedElection::solve(&config) else {
                continue;
            };
            feasible_cells += 1;
            let factory = dedicated.factory();
            let what = format!("{spec}/{strategy}");
            // the canonical DRIP itself must be differentially clean …
            assert_engines_agree(&config, &factory, &what);
            // … and each engine's execution must elect exactly the
            // predicted leader under the paper's model
            let model = ModelKind::NoCollisionDetection;
            for (engine, opts) in [
                ("leap", RunOpts::default()),
                ("step", RunOpts::default().no_leap()),
            ] {
                let ex = model.run(&config, &factory, opts).unwrap();
                let leaders: Vec<_> = (0..config.size() as radio_graph::NodeId)
                    .filter(|&v| dedicated.decision().is_leader(ex.history(v)))
                    .collect();
                assert_eq!(
                    leaders,
                    vec![dedicated.predicted_leader()],
                    "{what} [{engine}]"
                );
            }
            let ex = model
                .run_reference(&config, &factory, RunOpts::default())
                .unwrap();
            let leaders: Vec<_> = (0..config.size() as radio_graph::NodeId)
                .filter(|&v| dedicated.decision().is_leader(ex.history(v)))
                .collect();
            assert_eq!(leaders, vec![dedicated.predicted_leader()], "{what} [ref]");
        }
    }
    // the zoo × strategy matrix must actually exercise elections: if the
    // scenario seeds ever drifted all-infeasible this test would silently
    // hollow out
    assert!(
        feasible_cells >= 30,
        "only {feasible_cells} feasible scenario cells"
    );
}

/// Classifier-workspace reuse across a shuffled mix of the new families:
/// one recycled [`ClassifierWorkspace`] must classify every scenario cell
/// bit-identically to a fresh run — both engines, partition numbering and
/// all — exactly the contract the campaign layer's per-worker workspaces
/// rely on when a shard mixes tori with barbells with hypercubes.
#[test]
fn classifier_workspace_reuse_is_bit_identical_across_the_zoo() {
    let mut cells: Vec<(String, Configuration)> = Vec::new();
    for spec in FamilySpec::zoo() {
        for strategy in TagStrategy::ALL {
            cells.push((format!("{spec}/{strategy}"), scenario(spec, strategy)));
        }
    }
    // deterministic shuffle so consecutive runs mix sizes and shapes and
    // the workspace repeatedly grows and shrinks
    use rand::Rng;
    let mut rng = rng_from(0x500_FFE);
    for i in (1..cells.len()).rev() {
        let j = rng.random_range(0..=i);
        cells.swap(i, j);
    }
    let mut ws = ClassifierWorkspace::new();
    for (what, config) in &cells {
        for engine in [Engine::Fast, Engine::Reference] {
            let reused = ws.classify_in(config, engine);
            let fresh = classify_with(config, engine);
            assert_eq!(reused.feasible, fresh.feasible, "{what} {engine:?}");
            assert_eq!(reused.iterations, fresh.iterations, "{what} {engine:?}");
            assert_eq!(reused.cost, fresh.cost, "{what} {engine:?}");
            assert_eq!(
                reused.leader_class(),
                fresh.leader_class(),
                "{what} {engine:?}"
            );
            assert_eq!(
                reused.records.len(),
                fresh.records.len(),
                "{what} {engine:?}"
            );
            for (i, (a, b)) in reused.records.iter().zip(&fresh.records).enumerate() {
                assert_eq!(a.partition, b.partition, "{what} {engine:?} iter {}", i + 1);
                assert_eq!(a.labels, b.labels, "{what} {engine:?} iter {}", i + 1);
            }
        }
    }
}

/// Classify-phase campaigns over a shuffled-equivalent grid: the
/// workspace-recycling campaign path must agree with eager classification
/// on every scenario cell (the summary-level version of the bit-identity
/// test above, through the real campaign entry point).
#[test]
fn classify_campaign_matches_eager_classification_on_the_scenario_grid() {
    use anon_radio::campaign::{CampaignRunner, CampaignSpec, Phase};

    let spec = CampaignSpec {
        phase: Phase::Classify,
        families: vec![
            "torus:3x3".parse().unwrap(),
            "hypercube:3".parse().unwrap(),
            "caterpillar:3x1".parse().unwrap(),
            "bipartite:2x3".parse().unwrap(),
        ],
        tags: TagStrategy::ALL.to_vec(),
        sizes: vec![6],
        spans: vec![4],
        models: vec![ModelKind::NoCollisionDetection],
        reps: 2,
        seed: 99,
        opts: RunOpts::default(),
        cache: anon_radio::cache::CacheConfig::default(),
        batch: anon_radio::campaign::BatchConfig::default(),
    };
    let mut runner = CampaignRunner::new(spec.clone(), 3);
    runner.run_to_completion(2);
    for (cell, agg) in runner.aggregates() {
        let feasible = (0..spec.reps)
            .filter(|&rep| radio_classifier::classify(&spec.configuration(cell, rep)).feasible)
            .count() as u64;
        assert_eq!(agg.feasible, feasible, "{cell}");
        assert_eq!(agg.runs, spec.reps as u64, "{cell}");
    }
}
