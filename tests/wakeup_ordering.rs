//! Wake-up ordering: forced wake-ups (engine step 4) must precede
//! spontaneous wake-ups (step 5) within a round — in the optimized engine,
//! in the reference engine, and under every `RadioModel`.
//!
//! The observable consequence, and what these tests pin down: a node whose
//! tag round coincides with channel activity that would force-wake it
//! records the *forced-style* `H[0]` (`(M)` — or `(~)` under
//! carrier-sensing models), never the spontaneous `(∅)`. If step 5 ran
//! first, the node would wake spontaneously and the channel activity of
//! its own wake round would be lost (a woken node only starts listening in
//! its next local round).

use radio_graph::{generators, Configuration};
use radio_sim::drip::WaitThenTransmitFactory;
use radio_sim::{Execution, ModelKind, Msg, Obs, RunOpts};

/// Runs the tag-round coincidence scenario under `kind` with both engines
/// and returns the (asserted-identical) executions.
fn tag_round_coincidence(kind: ModelKind, tags: Vec<u64>, n: usize) -> (Execution, Execution) {
    let config = Configuration::new(generators::path(n), tags).unwrap();
    let drip = WaitThenTransmitFactory {
        wait: 0,
        msg: Msg(4),
        lifetime: 6,
    };
    let fast = kind.run(&config, &drip, RunOpts::default()).unwrap();
    let naive = kind
        .run_reference(&config, &drip, RunOpts::default())
        .unwrap();
    assert_eq!(fast.histories, naive.histories, "[{kind}] engines disagree");
    assert_eq!(fast.wake_round, naive.wake_round, "[{kind}]");
    assert_eq!(fast.stats, naive.stats, "[{kind}]");
    (fast, naive)
}

#[test]
fn message_in_tag_round_is_forced_in_both_engines_under_every_model() {
    // Path 0–1, tags [0, 1]: node 0 transmits at global round 1 — exactly
    // node 1's tag round. Forced wake-up must win in every model (the
    // models only differ in what entry a wake records, not in ordering).
    for kind in ModelKind::ALL {
        let (fast, _) = tag_round_coincidence(kind, vec![0, 1], 2);
        assert_eq!(fast.wake_round[1], 1, "[{kind}]");
        let expected = match kind {
            // one clean transmitter → a message under both message-bearing
            // models; a content-free beep under Beeping
            ModelKind::NoCollisionDetection | ModelKind::CollisionDetection => Obs::Heard(Msg(4)),
            ModelKind::Beeping => Obs::Noise,
        };
        assert_eq!(
            fast.wake_obs(1),
            expected,
            "[{kind}] tag-round wake must be forced-style"
        );
        assert!(!fast.woke_spontaneously(1), "[{kind}]");
        assert_eq!(fast.stats.forced_wakeups, 1, "[{kind}]");
    }
}

#[test]
fn collision_in_tag_round_ordering_is_model_specific() {
    // Path 0–1–2, tags [0, 1, 0]: nodes 0 and 2 transmit at global round 1
    // — node 1's tag round — and their transmissions collide at node 1.
    for kind in ModelKind::ALL {
        let (fast, _) = tag_round_coincidence(kind, vec![0, 1, 0], 3);
        assert_eq!(fast.wake_round[1], 1, "[{kind}] wakes at its tag round");
        match kind {
            // The paper's model: noise is not a message, the forced path
            // declines, and the *spontaneous* wake of the same round fires.
            ModelKind::NoCollisionDetection => {
                assert_eq!(fast.wake_obs(1), Obs::Silence, "[{kind}]");
                assert!(fast.woke_spontaneously(1), "[{kind}]");
                assert_eq!(fast.stats.forced_wakeups, 0, "[{kind}]");
            }
            // Carrier-sensing models: the forced path accepts the noise
            // first, so the spontaneous sweep finds the node already awake.
            ModelKind::CollisionDetection | ModelKind::Beeping => {
                assert_eq!(fast.wake_obs(1), Obs::Noise, "[{kind}]");
                assert!(!fast.woke_spontaneously(1), "[{kind}]");
                assert_eq!(fast.stats.forced_wakeups, 1, "[{kind}]");
            }
        }
    }
}

#[test]
fn forced_wakeup_strictly_before_tag_under_every_model() {
    // Path 0–1, tags [0, 9]: the transmission at global 1 long precedes
    // node 1's tag. Every model force-wakes it at round 1; its tag round
    // later passes without effect (no duplicate H[0], wake_round stays 1).
    for kind in ModelKind::ALL {
        let (fast, naive) = tag_round_coincidence(kind, vec![0, 9], 2);
        assert_eq!(fast.wake_round[1], 1, "[{kind}]");
        assert!(!fast.wake_obs(1).is_silence(), "[{kind}] forced entry");
        // H[0] recorded exactly once: local history length = done - wake
        for v in 0..2u32 {
            assert_eq!(
                fast.history(v).len() as u64,
                fast.done_local(v),
                "[{kind}] node {v}"
            );
        }
        assert_eq!(naive.wake_round[1], 1, "[{kind}] reference agrees");
    }
}
