//! Differential testing: the optimized executor vs the naive reference
//! executor, across random configurations, protocols, and *every* channel
//! model — including the canonical DRIP itself. Any divergence is a bug in
//! the optimized engine.

use proptest::prelude::*;

use radio_graph::{generators, Configuration};
use radio_sim::drip::{BeaconFactory, EchoFactory, WaitThenTransmitFactory};
use radio_sim::engine_ref::run_reference;
use radio_sim::{DripFactory, Executor, ModelKind, Msg, PatientFactory, RunOpts};

fn build_config(n: usize, extra: usize, span: u64, seed: u64) -> Configuration {
    let mut rng = radio_util::rng::rng_from(seed);
    let max_extra = n * (n - 1) / 2 - n.saturating_sub(1);
    let g = generators::random_connected(n, extra.min(max_extra), &mut rng);
    radio_graph::tags::random_in_span(g, span, &mut rng)
}

fn config_strategy() -> impl Strategy<Value = Configuration> {
    (1usize..12, 0usize..8, 0u64..7, any::<u64>())
        .prop_map(|(n, extra, span, seed)| build_config(n, extra, span, seed))
}

fn assert_identical(
    config: &Configuration,
    factory: &dyn DripFactory,
) -> Result<(), TestCaseError> {
    // The default model first (also exercised via the legacy entry points
    // so `Executor::run`/`run_reference` stay bit-for-bit with the seed
    // semantics) …
    let fast = Executor::run(config, factory, RunOpts::default()).unwrap();
    let naive = run_reference(config, factory, RunOpts::default()).unwrap();
    prop_assert_eq!(&fast.wake_round, &naive.wake_round, "{}", config);
    prop_assert_eq!(&fast.done_round, &naive.done_round, "{}", config);
    prop_assert_eq!(&fast.histories, &naive.histories, "{}", config);
    prop_assert_eq!(fast.rounds, naive.rounds, "{}", config);
    prop_assert_eq!(fast.stats, naive.stats, "{}", config);
    let default_fast = fast;

    // … then every model through the dispatching entry points.
    for kind in ModelKind::ALL {
        let fast = kind.run(config, factory, RunOpts::default()).unwrap();
        let naive = kind
            .run_reference(config, factory, RunOpts::default())
            .unwrap();
        prop_assert_eq!(&fast.wake_round, &naive.wake_round, "{} [{}]", config, kind);
        prop_assert_eq!(&fast.done_round, &naive.done_round, "{} [{}]", config, kind);
        prop_assert_eq!(&fast.histories, &naive.histories, "{} [{}]", config, kind);
        prop_assert_eq!(fast.rounds, naive.rounds, "{} [{}]", config, kind);
        prop_assert_eq!(fast.stats, naive.stats, "{} [{}]", config, kind);
        if kind == ModelKind::NoCollisionDetection {
            // the dispatcher's default must be the legacy behaviour
            prop_assert_eq!(&fast.histories, &default_fast.histories, "{}", config);
            prop_assert_eq!(fast.stats, default_fast.stats, "{}", config);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wait_then_transmit_differential(config in config_strategy(), wait in 0u64..5) {
        let f = WaitThenTransmitFactory { wait, msg: Msg(9), lifetime: wait + 12 };
        assert_identical(&config, &f)?;
    }

    #[test]
    fn beacon_differential(config in config_strategy(), start in 1u64..4, extra in 1u64..5) {
        let f = BeaconFactory { start, lifetime: start + extra, msg: Msg(2) };
        assert_identical(&config, &f)?;
    }

    #[test]
    fn echo_differential(config in config_strategy()) {
        let f = EchoFactory { lifetime: 18 };
        assert_identical(&config, &f)?;
    }

    #[test]
    fn patient_differential(config in config_strategy(), wait in 0u64..4) {
        let f = PatientFactory::new(
            WaitThenTransmitFactory { wait, msg: Msg(5), lifetime: wait + 10 },
            config.span(),
        );
        assert_identical(&config, &f)?;
    }

    #[test]
    fn canonical_drip_differential(config in config_strategy()) {
        let (_, schedule) = anon_radio::CanonicalSchedule::build(&config);
        let factory = anon_radio::CanonicalFactory::new(std::sync::Arc::new(schedule));
        assert_identical(&config, &factory)?;
    }
}
