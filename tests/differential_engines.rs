//! Differential testing: the optimized executor vs the naive reference
//! executor, across random configurations, protocols, and *every* channel
//! model — including the canonical DRIP itself. Any divergence is a bug in
//! the optimized engine.

use proptest::prelude::*;

use radio_graph::{generators, Configuration};
use radio_sim::drip::{BeaconFactory, EchoFactory, WaitThenTransmitFactory};
use radio_sim::engine_ref::run_reference;
use radio_sim::{DripFactory, Executor, ModelKind, Msg, PatientFactory, RunOpts};

fn build_config(n: usize, extra: usize, span: u64, seed: u64) -> Configuration {
    let mut rng = radio_util::rng::rng_from(seed);
    let max_extra = n * (n - 1) / 2 - n.saturating_sub(1);
    let g = generators::random_connected(n, extra.min(max_extra), &mut rng);
    radio_graph::tags::random_in_span(g, span, &mut rng)
}

fn config_strategy() -> impl Strategy<Value = Configuration> {
    (1usize..12, 0usize..8, 0u64..7, any::<u64>())
        .prop_map(|(n, extra, span, seed)| build_config(n, extra, span, seed))
}

fn assert_identical(
    config: &Configuration,
    factory: &dyn DripFactory,
) -> Result<(), TestCaseError> {
    // The default model first (also exercised via the legacy entry points
    // so `Executor::run`/`run_reference` stay bit-for-bit with the seed
    // semantics) …
    let fast = Executor::run(config, factory, RunOpts::default()).unwrap();
    let naive = run_reference(config, factory, RunOpts::default()).unwrap();
    prop_assert_eq!(&fast.wake_round, &naive.wake_round, "{}", config);
    prop_assert_eq!(&fast.done_round, &naive.done_round, "{}", config);
    prop_assert_eq!(&fast.histories, &naive.histories, "{}", config);
    prop_assert_eq!(fast.rounds, naive.rounds, "{}", config);
    prop_assert_eq!(fast.stats, naive.stats, "{}", config);
    let default_fast = fast;

    // … then every model through the dispatching entry points: the
    // time-leaping engine, the same engine with leaping disabled, and the
    // naive reference — all three must agree byte for byte.
    for kind in ModelKind::ALL {
        let leap = kind.run(config, factory, RunOpts::default()).unwrap();
        let step = kind
            .run(config, factory, RunOpts::default().no_leap())
            .unwrap();
        let naive = kind
            .run_reference(config, factory, RunOpts::default())
            .unwrap();
        for (engine, fast) in [("leap", &leap), ("step", &step)] {
            prop_assert_eq!(
                &fast.wake_round,
                &naive.wake_round,
                "{} [{} {}]",
                config,
                kind,
                engine
            );
            prop_assert_eq!(
                &fast.done_round,
                &naive.done_round,
                "{} [{} {}]",
                config,
                kind,
                engine
            );
            prop_assert_eq!(
                &fast.histories,
                &naive.histories,
                "{} [{} {}]",
                config,
                kind,
                engine
            );
            prop_assert_eq!(
                fast.rounds,
                naive.rounds,
                "{} [{} {}]",
                config,
                kind,
                engine
            );
            prop_assert_eq!(fast.stats, naive.stats, "{} [{} {}]", config, kind, engine);
        }
        // round accounting: stepped + leapt always partitions the run
        prop_assert_eq!(
            leap.rounds_stepped + leap.rounds_leapt,
            leap.rounds,
            "{} [{}]",
            config,
            kind
        );
        prop_assert_eq!(step.rounds_stepped, step.rounds, "{} [{}]", config, kind);
        prop_assert_eq!(step.rounds_leapt, 0, "{} [{}]", config, kind);
        if kind == ModelKind::NoCollisionDetection {
            // the dispatcher's default must be the legacy behaviour
            prop_assert_eq!(&leap.histories, &default_fast.histories, "{}", config);
            prop_assert_eq!(leap.stats, default_fast.stats, "{}", config);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wait_then_transmit_differential(config in config_strategy(), wait in 0u64..5) {
        let f = WaitThenTransmitFactory { wait, msg: Msg(9), lifetime: wait + 12 };
        assert_identical(&config, &f)?;
    }

    #[test]
    fn beacon_differential(config in config_strategy(), start in 1u64..4, extra in 1u64..5) {
        let f = BeaconFactory { start, lifetime: start + extra, msg: Msg(2) };
        assert_identical(&config, &f)?;
    }

    #[test]
    fn echo_differential(config in config_strategy()) {
        let f = EchoFactory { lifetime: 18 };
        assert_identical(&config, &f)?;
    }

    #[test]
    fn patient_differential(config in config_strategy(), wait in 0u64..4) {
        let f = PatientFactory::new(
            WaitThenTransmitFactory { wait, msg: Msg(5), lifetime: wait + 10 },
            config.span(),
        );
        assert_identical(&config, &f)?;
    }

    #[test]
    fn canonical_drip_differential(config in config_strategy()) {
        let (_, schedule) = anon_radio::CanonicalSchedule::build(&config);
        let factory = anon_radio::CanonicalFactory::new(std::sync::Arc::new(schedule));
        assert_identical(&config, &factory)?;
    }
}

// High-span configurations make every naive run cost Θ(span) rounds, so
// these cases are fewer — the point is that the *leaping* engine crosses
// huge silent stretches and still agrees with both step-by-step engines,
// under every model, with patient-wrapped DRIPs layered on top.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn high_span_patient_differential(
        n in 2usize..7,
        extra in 0usize..4,
        big in 0u64..2,
        span_off in 0u64..50_000,
        seed in any::<u64>(),
        wait in 0u64..4,
    ) {
        // bimodal spans: moderate (10..2010) and huge (50k..100k)
        let span = if big == 0 { 10 + span_off % 2_000 } else { 50_000 + span_off };
        let config = build_config(n, extra, span, seed);
        let f = PatientFactory::new(
            WaitThenTransmitFactory { wait, msg: Msg(5), lifetime: wait + 10 },
            config.span(),
        );
        assert_identical(&config, &f)?;
    }

    #[test]
    fn high_span_plain_differential(
        n in 2usize..7,
        span in 50_000u64..100_000,
        seed in any::<u64>(),
        wait in 0u64..4,
    ) {
        let config = build_config(n, 2, span, seed);
        let f = WaitThenTransmitFactory { wait, msg: Msg(2), lifetime: wait + 12 };
        assert_identical(&config, &f)?;
    }
}

/// Regression: a span-10⁶ all-silent configuration must complete in a
/// number of *executed* loop iterations that is tiny compared to the
/// simulated span — the whole point of the time-leap scheduler. (Before
/// it, this workload spun a million empty iterations per silent stretch.)
#[test]
fn million_span_silent_config_is_event_bound() {
    let span = 1_000_000u64;
    let config = Configuration::new(generators::path(4), vec![0, span / 2, span, 7]).unwrap();
    let f = radio_sim::drip::SilentFactory { lifetime: 5 };
    let ex = Executor::run(&config, &f, RunOpts::default()).unwrap();
    assert_eq!(ex.rounds, span + 6, "last waker terminates 5 rounds in");
    assert_eq!(ex.rounds_stepped + ex.rounds_leapt, ex.rounds);
    assert!(
        ex.rounds_stepped <= 32,
        "{} rounds stepped for a {}-round run: the engine failed to leap",
        ex.rounds_stepped,
        ex.rounds
    );
    // And the result is exactly the one the step-by-step engine computes.
    let step = Executor::run(&config, &f, RunOpts::default().no_leap()).unwrap();
    assert_eq!(ex.histories, step.histories);
    assert_eq!(ex.wake_round, step.wake_round);
    assert_eq!(ex.done_round, step.done_round);
    assert_eq!(ex.stats, step.stats);
    assert_eq!(step.rounds_stepped, step.rounds);
}
