//! Integration tests of the canonical-key schedule cache: cache-hit ≡
//! cache-miss bit-for-bit at every level the pipeline exposes — compiled
//! schedules, election reports, campaign JSONL rows — across workspace
//! reuse, shuffled scenario mixes, LRU eviction, and cross-workspace key
//! stability. The golden campaign corpus runs with the cache *on* (the
//! default), so `tests/golden_campaign.rs` doubles as the pin that cached
//! rows match the pre-cache byte stream.

use std::sync::Arc;

use anon_radio::cache::{CacheConfig, CacheLookup, ScheduleCache};
use anon_radio::campaign::{
    BatchConfig, CampaignRunner, CampaignSpec, FamilySpec, Phase, TagStrategy,
};
use anon_radio::{CompiledElection, DedicatedElection};
use radio_classifier::ClassifierWorkspace;
use radio_graph::{families, Configuration};
use radio_sim::{ModelKind, RunOpts};

/// A zoo-mix elect grid with repeated shapes: `arith` tags redraw the
/// same tag vector every rep, so cache hits are guaranteed, while
/// `uniform` reps and three models exercise exact-key reuse across the
/// model axis.
fn zoo_spec(cache: CacheConfig) -> CampaignSpec {
    CampaignSpec {
        phase: Phase::Elect,
        families: vec![
            FamilySpec::Path,
            FamilySpec::Star,
            "torus:3x3".parse().unwrap(),
            "hypercube:3".parse().unwrap(),
            "barbell:3+1".parse().unwrap(),
        ],
        tags: vec![TagStrategy::Uniform, TagStrategy::Arith { stride: 2 }],
        sizes: vec![6],
        spans: vec![3],
        models: ModelKind::ALL.to_vec(),
        reps: 3,
        seed: 0xCACE,
        opts: RunOpts::default(),
        cache,
        batch: BatchConfig::default(),
    }
}

/// Strips the measured tail (wall time + interleaving-dependent cache
/// counters), leaving only the deterministic fields.
fn stable(rows: Vec<String>) -> Vec<String> {
    rows.into_iter()
        .map(|row| row.split(",\"wall_ns\"").next().unwrap().to_string())
        .collect()
}

#[test]
fn cached_campaign_rows_match_uncached_bit_for_bit() {
    let run = |cache: CacheConfig, shards: usize, threads: usize| -> (Vec<String>, Option<u64>) {
        let mut runner = CampaignRunner::new(zoo_spec(cache), shards);
        runner.run_to_completion(threads);
        let hits = runner.cache_stats().map(|s| s.hits);
        (stable(runner.jsonl_rows()), hits)
    };
    let (cached, hits) = run(CacheConfig::default(), 4, 2);
    let (uncached, none) = run(CacheConfig::disabled(), 4, 2);
    assert_eq!(
        cached, uncached,
        "cache must be invisible in derived fields"
    );
    assert!(
        hits.expect("cached run has stats") > 0,
        "grid must actually hit"
    );
    assert!(none.is_none());
    // different shard/thread geometry on the cached path changes nothing
    let (regeo, _) = run(CacheConfig::default(), 1, 1);
    assert_eq!(cached, regeo);
    // a thrashing one-entry cache still changes nothing
    let (tiny, _) = run(CacheConfig::with_capacity(1), 3, 2);
    assert_eq!(cached, tiny);
}

#[test]
fn cache_hits_equal_fresh_compiles_across_workspace_reuse_and_shuffles() {
    // Shuffled zoo mix: derive every configuration of the grid, visit it
    // in two different orders through one long-lived workspace, and check
    // the cached result against an always-fresh compile each time.
    let spec = zoo_spec(CacheConfig::default());
    let mut configs: Vec<Configuration> = Vec::new();
    for cell in spec.cells() {
        for rep in 0..spec.reps {
            configs.push(spec.configuration(&cell, rep));
        }
    }
    let cache = ScheduleCache::default();
    let mut ws = ClassifierWorkspace::new();
    let mut fresh_ws = ClassifierWorkspace::new();
    let mut sim = radio_sim::SimWorkspace::new();
    let forward = configs.iter();
    let backward = configs.iter().rev();
    for config in forward.chain(backward) {
        let (cached, _) = cache.compile_in(&mut ws, config);
        let fresh = CompiledElection::compile_in(&mut fresh_ws, config);
        assert_eq!(cached.summary(), fresh.summary(), "{config}");
        assert_eq!(cached.schedule().lists, fresh.schedule().lists, "{config}");
        assert_eq!(
            cached.schedule().phase_end,
            fresh.schedule().phase_end,
            "{config}"
        );
        if cached.feasible() {
            let a = cached
                .run_in(&mut sim, config, ModelKind::NoCollisionDetection, spec.opts)
                .unwrap();
            let b = fresh
                .run_in(&mut sim, config, ModelKind::NoCollisionDetection, spec.opts)
                .unwrap();
            assert_eq!(a, b, "{config}");
        }
    }
    let stats = cache.stats();
    assert_eq!(stats.lookups(), 2 * configs.len() as u64);
    assert!(stats.hits >= configs.len() as u64, "second pass must hit");
}

#[test]
fn solve_cached_matches_solve_in_for_elections_and_infeasibility() {
    let cache = ScheduleCache::default();
    let mut ws = ClassifierWorkspace::new();
    for m in [1u64, 2, 5] {
        let config = families::h_m(m);
        // twice, so both the miss and the hit path are compared
        for _ in 0..2 {
            let cached = DedicatedElection::solve_cached(&mut ws, &config, &cache).unwrap();
            let plain = DedicatedElection::solve_in(&mut ws, &config).unwrap();
            assert_eq!(cached.summary(), plain.summary());
            assert_eq!(cached.predicted_leader(), plain.predicted_leader());
            assert_eq!(cached.run().unwrap(), plain.run().unwrap(), "H_{m}");
        }
    }
    // infeasible configurations cache their verdict too
    for _ in 0..2 {
        let err = DedicatedElection::solve_cached(&mut ws, &families::s_m(2), &cache).unwrap_err();
        assert_eq!(err.iterations, 2);
    }
    assert!(cache.stats().hits >= 4);
}

#[test]
fn keys_are_stable_across_workspaces() {
    // A workspace whose interner diverged (different configurations seen
    // first) must still produce exact hits on entries cached by another
    // workspace — the content-hash key contract, exercised end to end.
    let cache = ScheduleCache::default();
    let mut ws_a = ClassifierWorkspace::new();
    for warmup in [families::g_m(2), families::s_m(4), families::h_m(7)] {
        let _ = cache.compile_in(&mut ws_a, &warmup);
    }
    let probe = families::g_m(3);
    let (from_a, l_a) = cache.compile_in(&mut ws_a, &probe);
    assert_eq!(l_a, CacheLookup::Miss);
    let mut ws_b = ClassifierWorkspace::new();
    let (from_b, l_b) = cache.compile_in(&mut ws_b, &probe);
    assert_eq!(l_b, CacheLookup::ExactHit, "fresh workspace, same key");
    assert!(Arc::ptr_eq(
        &from_a.shared_schedule(),
        &from_b.shared_schedule()
    ));
}

#[test]
fn lru_eviction_and_reinsertion_preserve_results() {
    let spec = zoo_spec(CacheConfig::with_capacity(1));
    // capacity 1 → per-shard budget 1: the grid's distinct shapes evict
    // each other constantly; every result must still be exact.
    let mut runner = CampaignRunner::new(spec, 2);
    runner.run_to_completion(2);
    let stats = runner.cache_stats().unwrap();
    assert!(stats.evictions > 0, "one-entry cache must evict: {stats:?}");
    let baseline = {
        let mut r = CampaignRunner::new(zoo_spec(CacheConfig::disabled()), 2);
        r.run_to_completion(2);
        stable(r.jsonl_rows())
    };
    assert_eq!(stable(runner.jsonl_rows()), baseline);
    // re-insertion after eviction: a direct probe on a tiny cache
    let cache = ScheduleCache::new(1);
    let mut ws = ClassifierWorkspace::new();
    let configs: Vec<Configuration> = (1..=10u64).map(families::h_m).collect();
    for c in &configs {
        let _ = cache.compile_in(&mut ws, c);
    }
    for c in &configs {
        let (compiled, _) = cache.compile_in(&mut ws, c);
        let fresh = CompiledElection::compile_in(&mut ws, c);
        assert_eq!(compiled.summary(), fresh.summary());
        assert_eq!(compiled.schedule().lists, fresh.schedule().lists);
    }
    assert!(cache.stats().evictions > 0);
}

#[test]
fn canonical_hits_share_schedules_across_trace_identical_configurations() {
    // Uniform-tag C_4 and K_4 replay the same refinement trace: the
    // second configuration must reuse the first's schedule without
    // compiling, then earn its own exact alias.
    let cycle = Configuration::with_uniform_tags(radio_graph::generators::cycle(4), 0).unwrap();
    let complete =
        Configuration::with_uniform_tags(radio_graph::generators::complete(4), 0).unwrap();
    let cache = ScheduleCache::default();
    let mut ws = ClassifierWorkspace::new();
    let (from_cycle, l1) = cache.compile_in(&mut ws, &cycle);
    let (from_complete, l2) = cache.compile_in(&mut ws, &complete);
    let (_, l3) = cache.compile_in(&mut ws, &complete);
    assert_eq!(
        (l1, l2, l3),
        (
            CacheLookup::Miss,
            CacheLookup::CanonicalHit,
            CacheLookup::ExactHit
        )
    );
    assert!(Arc::ptr_eq(
        &from_cycle.shared_schedule(),
        &from_complete.shared_schedule()
    ));
    // sharing is sound: the schedule is a function of the trace alone,
    // and both verdicts are infeasible with identical summaries
    assert_eq!(from_cycle.summary(), from_complete.summary());
    assert!(!from_complete.feasible());
}
