//! End-to-end integration: classify → compile → simulate → validate, across
//! a labelled corpus of configurations spanning every generator family.

use anon_radio::{elect_leader, is_feasible, solve};
use radio_graph::{families, generators, tags, Configuration};
use radio_util::rng::rng_from;

/// A corpus of configurations with known feasibility.
fn corpus() -> Vec<(Configuration, bool, &'static str)> {
    let mut rng = rng_from(0xE2E);
    vec![
        (families::h_m(1), true, "H_1"),
        (families::h_m(7), true, "H_7"),
        (families::s_m(1), false, "S_1"),
        (families::s_m(9), false, "S_9"),
        (families::g_m(2), true, "G_2"),
        (families::g_m(4), true, "G_4"),
        (
            Configuration::with_uniform_tags(generators::cycle(6), 2).unwrap(),
            false,
            "uniform cycle",
        ),
        (
            Configuration::with_uniform_tags(generators::complete(4), 0).unwrap(),
            false,
            "uniform K4",
        ),
        (
            Configuration::new(generators::path(1), vec![5]).unwrap(),
            true,
            "singleton (even with nonzero tag)",
        ),
        (
            Configuration::new(generators::path(2), vec![0, 1]).unwrap(),
            true,
            "2-path distinct",
        ),
        (
            Configuration::new(generators::path(2), vec![4, 4]).unwrap(),
            false,
            "2-path equal",
        ),
        (
            tags::distinct_shuffled(generators::star(9), &mut rng),
            true,
            "star distinct tags",
        ),
        (
            tags::distinct_shuffled(generators::hypercube(3), &mut rng),
            true,
            "hypercube distinct tags",
        ),
        (
            tags::bfs_wave(generators::balanced_tree(10, 2), 1),
            true,
            "tree BFS wave",
        ),
        (
            // two-value tags on a star: all leaves late — the leaves stay
            // mutually symmetric, but centre vs leaves splits; with 8
            // leaves in one class, no singleton among them.
            tags::two_values(generators::star(9), &[1, 2, 3, 4, 5, 6, 7, 8], 1),
            true, // centre is a singleton class → feasible
            "star centre-first",
        ),
    ]
}

#[test]
fn corpus_feasibility_matches_expectations() {
    for (config, expected, name) in corpus() {
        assert_eq!(is_feasible(&config), expected, "{name}: {config}");
    }
}

#[test]
fn feasible_corpus_elects_exactly_one_leader() {
    for (config, expected, name) in corpus() {
        if !expected {
            continue;
        }
        let report = elect_leader(&config).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(report.leader < config.size() as u32, "{name}");
        // Lemma 3.10: O(n²σ) — concretely ⌈n/2⌉ phases of
        // ≤ n(2σ+1)+σ rounds each.
        let n = config.size() as u64;
        let sigma = config.span();
        let bound = n.div_ceil(2) * (n * (2 * sigma + 1) + sigma) + 1;
        assert!(
            report.rounds_local <= bound,
            "{name}: {} > {bound}",
            report.rounds_local
        );
    }
}

#[test]
fn infeasible_corpus_has_no_singleton_history() {
    // Running the canonical DRIP on an infeasible configuration must leave
    // every node with at least one history twin.
    for (config, expected, name) in corpus() {
        if expected {
            continue;
        }
        let (outcome, schedule) = anon_radio::CanonicalSchedule::build(&config);
        assert!(!outcome.feasible, "{name}");
        let factory = anon_radio::CanonicalFactory::new(std::sync::Arc::new(schedule));
        let ex = radio_sim::Executor::run(&config, &factory, radio_sim::RunOpts::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            ex.unique_history_nodes().is_empty(),
            "{name}: infeasible configuration produced a unique history"
        );
    }
}

#[test]
fn solve_and_elect_agree() {
    for (config, expected, name) in corpus() {
        match solve(&config) {
            Ok(dedicated) => {
                assert!(expected, "{name}: solve succeeded on infeasible config");
                let report = dedicated.run().unwrap();
                assert_eq!(report.leader, dedicated.predicted_leader(), "{name}");
            }
            Err(_) => assert!(!expected, "{name}: solve failed on feasible config"),
        }
    }
}

#[test]
fn election_transmission_budget_is_exactly_n_times_phases() {
    // Every node transmits exactly once per phase (Lemma 3.7 machinery).
    for (config, expected, name) in corpus() {
        if !expected {
            continue;
        }
        let dedicated = solve(&config).unwrap();
        let report = dedicated.run().unwrap();
        assert_eq!(
            report.transmissions,
            (config.size() * dedicated.schedule().phases()) as u64,
            "{name}"
        );
    }
}

#[test]
fn random_feasible_configs_elect_across_families() {
    let mut rng = rng_from(0xFEED);
    type GraphMaker = Box<dyn Fn(&mut rand::rngs::StdRng) -> radio_graph::Graph>;
    let makers: Vec<(&str, GraphMaker)> = vec![
        ("tree", Box::new(|r| generators::random_tree(10, r))),
        ("gnp", Box::new(|r| generators::gnp_connected(10, 0.3, r))),
        (
            "caterpillar",
            Box::new(|r| generators::random_caterpillar(4, 6, r)),
        ),
    ];
    let mut elected = 0usize;
    for (name, make) in &makers {
        for _ in 0..10 {
            let g = make(&mut rng);
            let config = tags::distinct_shuffled(g, &mut rng);
            if let Ok(report) = elect_leader(&config) {
                elected += 1;
                assert!(report.leader < config.size() as u32, "{name}");
            }
        }
    }
    assert!(
        elected >= 25,
        "distinct tags should make nearly every configuration feasible, got {elected}/30"
    );
}
