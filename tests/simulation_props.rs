//! Property-based tests of the simulator semantics themselves, run through
//! the public API with simple DRIPs over random configurations.

use proptest::prelude::*;

use radio_graph::{generators, Configuration};
use radio_sim::drip::{BeaconFactory, SilentFactory, WaitThenTransmitFactory};
use radio_sim::{Executor, Msg, Obs, RunOpts};
use radio_util::rng::rng_from;

fn build_config(n: usize, extra: usize, span: u64, seed: u64) -> Configuration {
    let mut rng = rng_from(seed);
    let max_extra = n * (n - 1) / 2 - n.saturating_sub(1);
    let g = generators::random_connected(n, extra.min(max_extra), &mut rng);
    radio_graph::tags::random_in_span(g, span, &mut rng)
}

fn config_strategy() -> impl Strategy<Value = Configuration> {
    (1usize..14, 0usize..10, 0u64..8, any::<u64>())
        .prop_map(|(n, extra, span, seed)| build_config(n, extra, span, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn silent_runs_have_no_traffic(config in config_strategy(), life in 1u64..12) {
        let ex = Executor::run(&config, &SilentFactory { lifetime: life }, RunOpts::default())
            .unwrap();
        prop_assert_eq!(ex.stats.transmissions, 0);
        prop_assert_eq!(ex.stats.messages_received, 0);
        prop_assert_eq!(ex.stats.collisions_observed, 0);
        prop_assert_eq!(ex.stats.forced_wakeups, 0);
        // every node wakes at its tag and terminates `life` rounds later
        for v in 0..config.size() as u32 {
            prop_assert_eq!(ex.wake_round[v as usize], config.tag(v));
            prop_assert_eq!(ex.done_local(v), life);
            prop_assert_eq!(ex.history(v).len() as u64, life);
            prop_assert!(ex.history(v).all_silent());
        }
    }

    #[test]
    fn history_length_equals_done_local(
        config in config_strategy(),
        wait in 0u64..6,
    ) {
        let drip = WaitThenTransmitFactory { wait, msg: Msg(3), lifetime: wait + 10 };
        let ex = Executor::run(&config, &drip, RunOpts::default()).unwrap();
        for v in 0..config.size() as u32 {
            prop_assert_eq!(ex.history(v).len() as u64, ex.done_local(v));
        }
    }

    #[test]
    fn conservation_of_observations(config in config_strategy(), wait in 0u64..6) {
        // Every received message and every observed collision corresponds
        // to ≥1 transmission in the same round; globally:
        // messages_received ≤ Σ (receivers per transmission) and
        // transmissions ≥ 1 whenever anything was heard.
        let drip = WaitThenTransmitFactory { wait, msg: Msg(1), lifetime: wait + 10 };
        let ex = Executor::run(&config, &drip, RunOpts::default()).unwrap();
        if ex.stats.messages_received > 0 || ex.stats.collisions_observed > 0 {
            prop_assert!(ex.stats.transmissions > 0);
        }
        // each node transmits exactly once → transmissions == n
        prop_assert_eq!(ex.stats.transmissions, config.size() as u64);
        // a node can receive at most one message observation per round it
        // listens; crude upper bound: rounds × n
        prop_assert!(ex.stats.messages_received <= ex.rounds * config.size() as u64);
    }

    #[test]
    fn forced_wakeups_only_with_early_transmissions(
        config in config_strategy(),
        start in 1u64..4,
    ) {
        let ex = Executor::run(
            &config,
            &BeaconFactory { start, lifetime: start + 6, msg: Msg(2) },
            RunOpts::default(),
        )
        .unwrap();
        // nobody can be woken before the first possible transmission round
        // (min tag + start)
        let min_tag = config.min_tag();
        for v in 0..config.size() as u32 {
            prop_assert!(ex.wake_round[v as usize] + 1 > min_tag);
            prop_assert!(ex.wake_round[v as usize] <= config.tag(v));
            if ex.wake_round[v as usize] < config.tag(v) {
                prop_assert!(ex.history(v)[0].is_message(), "early wake must be forced");
            }
        }
    }

    #[test]
    fn trace_transmitter_count_matches_stats(
        config in config_strategy(),
        wait in 0u64..5,
    ) {
        let drip = WaitThenTransmitFactory { wait, msg: Msg(1), lifetime: wait + 8 };
        let ex = Executor::run(&config, &drip, RunOpts::default().traced()).unwrap();
        let traced: u64 = ex
            .trace
            .as_ref()
            .unwrap()
            .events
            .iter()
            .map(|e| e.transmitters.len() as u64)
            .sum();
        prop_assert_eq!(traced, ex.stats.transmissions);
    }

    #[test]
    fn heard_entries_carry_the_right_message(
        config in config_strategy(),
        payload in 1u64..1000,
    ) {
        let drip = WaitThenTransmitFactory { wait: 0, msg: Msg(payload), lifetime: 8 };
        let ex = Executor::run(&config, &drip, RunOpts::default()).unwrap();
        for v in 0..config.size() as u32 {
            for (_, obs) in ex.history(v).iter() {
                if let Obs::Heard(m) = obs {
                    prop_assert_eq!(m, Msg(payload));
                }
            }
        }
    }
}
