//! End-to-end tests of the `anon-radio serve` session layer: the
//! `--stdin-stdout` protocol driven over in-memory streams, pinning
//! served results bit-identical to the one-shot CLI paths on the same
//! specs, plus deadline expiry, malformed-JSON replies, cache-hit
//! visibility, shutdown drain, and the TCP transport.

use anon_radio::cache::CacheConfig;
use anon_radio::campaign::{CampaignRunner, CampaignSpec, FamilySpec, Phase, TagStrategy};
use anon_radio::serve::{serve_session, serve_tcp, ServeOptions};
use radio_graph::Configuration;
use radio_sim::{ModelKind, RunOpts};
use radio_util::rng::{derive, rng_from};

fn serve(input: &str, opts: &ServeOptions) -> (Vec<String>, anon_radio::serve::SessionSummary) {
    let mut out: Vec<u8> = Vec::new();
    let summary = serve_session(input.as_bytes(), &mut out, opts);
    let text = String::from_utf8(out).expect("replies are UTF-8");
    (text.lines().map(str::to_string).collect(), summary)
}

/// Extracts `"name":<uint>` from a reply line.
fn field_u64(reply: &str, name: &str) -> u64 {
    let key = format!("\"{name}\":");
    let start = reply
        .find(&key)
        .unwrap_or_else(|| panic!("{name} in {reply}"))
        + key.len();
    reply[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("{name} is not a uint in {reply}"))
}

/// The exact configuration the serve layer draws for
/// `family=path n=6 span=3 seed=42` — the `elect --family` derivation.
fn drawn_path_config() -> Configuration {
    let csr = FamilySpec::Path.build_csr(6, derive(42, "graph")).unwrap();
    let tags = TagStrategy::Uniform.draw(6, 3, &mut rng_from(derive(42, "tags")));
    Configuration::from_csr(csr, tags).unwrap()
}

#[test]
fn elect_replies_are_bit_identical_to_the_one_shot_path() {
    let (lines, summary) = serve(
        "{\"op\":\"elect\",\"id\":1,\"family\":\"path\",\"n\":6,\"span\":3,\"seed\":42}\n",
        &ServeOptions::default(),
    );
    assert_eq!(summary.answered, 1);
    let reply = &lines[0];
    assert!(reply.starts_with("{\"ok\":true,\"id\":1,\"op\":\"elect\",\"feasible\":true"));

    // One-shot reference: same derivation, same resident run path.
    let report = anon_radio::solve(&drawn_path_config())
        .expect("feasible")
        .run_in(
            &mut radio_sim::SimWorkspace::new(),
            ModelKind::default(),
            RunOpts::default(),
        )
        .expect("elects");
    assert_eq!(field_u64(reply, "leader"), u64::from(report.leader));
    assert_eq!(field_u64(reply, "phases"), report.phases as u64);
    assert_eq!(field_u64(reply, "rounds_local"), report.rounds_local);
    assert_eq!(
        field_u64(reply, "completion_round"),
        report.completion_round
    );
    assert_eq!(field_u64(reply, "transmissions"), report.transmissions);
    assert_eq!(field_u64(reply, "rounds_stepped"), report.rounds_stepped);
    assert_eq!(field_u64(reply, "rounds_leapt"), report.rounds_leapt);
}

#[test]
fn classify_replies_match_the_classifier_summary() {
    let (lines, _) = serve(
        "{\"op\":\"classify\",\"id\":5,\"family\":\"path\",\"n\":6,\"span\":3,\"seed\":42}\n",
        &ServeOptions::default(),
    );
    let reply = &lines[0];
    let summary = radio_classifier::summarize(&drawn_path_config());
    assert!(reply.starts_with("{\"ok\":true,\"id\":5,\"op\":\"classify\""));
    assert_eq!(
        reply.contains("\"feasible\":true"),
        summary.feasible,
        "{reply}"
    );
    assert_eq!(field_u64(reply, "iterations"), summary.iterations as u64);
    assert_eq!(field_u64(reply, "classes"), u64::from(summary.num_classes));
    assert_eq!(field_u64(reply, "relabels"), summary.relabels);
}

#[test]
fn campaign_cell_rows_are_bit_identical_to_a_fresh_campaign() {
    let (lines, _) = serve(
        "{\"op\":\"campaign-cell\",\"id\":3,\"phase\":\"elect\",\"family\":\"path\",\
         \"n\":6,\"span\":3,\"model\":\"no-cd\",\"reps\":3,\"seed\":17}\n\
         {\"op\":\"campaign-cell\",\"id\":4,\"phase\":\"classify\",\"family\":\"star\",\
         \"n\":6,\"span\":3,\"reps\":3,\"seed\":17}\n",
        &ServeOptions::default(),
    );

    for (reply, phase) in lines.iter().zip([Phase::Elect, Phase::Classify]) {
        let spec = CampaignSpec {
            phase,
            families: vec![if phase == Phase::Elect {
                FamilySpec::Path
            } else {
                FamilySpec::Star
            }],
            tags: vec![TagStrategy::Uniform],
            sizes: vec![6],
            spans: vec![3],
            models: vec![ModelKind::NoCollisionDetection],
            reps: 3,
            seed: 17,
            opts: RunOpts::default(),
            cache: CacheConfig::default(),
            batch: anon_radio::campaign::BatchConfig::disabled(),
        };
        let mut runner = CampaignRunner::new(spec, 1);
        while runner.run_next_shard(1).is_some() {}
        let fresh = runner.jsonl_rows().remove(0);

        // Bit-identical up to the measured tail (wall clock, cache-counter
        // split, and memory high-water depend on the serving process).
        let served_row = reply
            .split("\"row\":")
            .nth(1)
            .unwrap_or_else(|| panic!("row in {reply}"));
        let strip = |row: &str| row.split(",\"wall_ns\"").next().unwrap().to_string();
        assert_eq!(strip(served_row), strip(&fresh), "phase {phase:?}");
    }
}

#[test]
fn repeated_jobs_hit_the_shared_schedule_cache() {
    let job = "{\"op\":\"elect\",\"family\":\"path\",\"n\":6,\"span\":3,\"seed\":42}\n";
    // One worker so the second job reuses the first worker's shared cache
    // deterministically (the cache is process-wide either way).
    let (lines, _) = serve(
        &job.repeat(2),
        &ServeOptions {
            threads: 1,
            ..ServeOptions::default()
        },
    );
    assert!(lines[0].contains("\"cache\":\"miss\""), "{}", lines[0]);
    assert!(lines[1].contains("\"cache\":\"exact-hit\""), "{}", lines[1]);
    assert!(field_u64(&lines[1], "cache_hits") >= 1, "{}", lines[1]);
    // The cache only changes the tail: the election numbers agree.
    assert_eq!(
        field_u64(&lines[0], "rounds_local"),
        field_u64(&lines[1], "rounds_local")
    );
    assert_eq!(
        field_u64(&lines[0], "leader"),
        field_u64(&lines[1], "leader")
    );
}

#[test]
fn uncached_sessions_report_cache_off() {
    let (lines, _) = serve(
        "{\"op\":\"elect\",\"family\":\"path\",\"n\":6,\"span\":3,\"seed\":42}\n",
        &ServeOptions {
            cache: CacheConfig::disabled(),
            ..ServeOptions::default()
        },
    );
    assert!(lines[0].contains("\"cache\":\"off\""), "{}", lines[0]);
    assert!(!lines[0].contains("cache_hits"), "{}", lines[0]);
}

#[test]
fn deadline_expiry_is_a_structured_per_job_error() {
    let input = "{\"op\":\"elect\",\"id\":8,\"family\":\"path\",\"n\":6,\"span\":3,\
                 \"seed\":42,\"max_rounds\":1}\n\
                 {\"op\":\"elect\",\"id\":9,\"family\":\"path\",\"n\":6,\"span\":3,\"seed\":42}\n";
    let (lines, summary) = serve(input, &ServeOptions::default());
    assert_eq!(summary.answered, 2, "a deadline never kills the session");
    assert!(
        lines[0].starts_with("{\"ok\":false,\"id\":8,\"error\":\"deadline\""),
        "{}",
        lines[0]
    );
    assert!(lines[0].contains("round limit 1 reached"), "{}", lines[0]);
    assert!(
        lines[1].starts_with("{\"ok\":true,\"id\":9"),
        "the next job still runs: {}",
        lines[1]
    );
}

#[test]
fn malformed_jobs_get_structured_errors_and_the_session_continues() {
    let input = "this is not json\n\
                 {\"op\":\"frobnicate\",\"id\":70}\n\
                 {\"op\":\"elect\",\"id\":71,\"family\":\"path\",\"bogus\":true}\n\
                 {\"op\":\"elect\",\"id\":72,\"family\":\"no-such-family\"}\n\
                 {\"op\":\"classify\",\"id\":73,\"family\":\"path\",\"n\":6,\"span\":3}\n";
    let (lines, summary) = serve(input, &ServeOptions::default());
    assert_eq!(summary.answered, 5, "every line is answered, none fatal");
    for (line, needle) in lines.iter().zip([
        "expected `{`",
        "unknown op",
        "bogus",
        "no-such-family",
        "\"ok\":true",
    ]) {
        assert!(line.contains(needle), "wanted {needle} in {line}");
    }
    // Parsed ids survive into the error replies.
    assert!(lines[1].contains("\"id\":70"), "{}", lines[1]);
    assert!(lines[2].contains("\"id\":71"), "{}", lines[2]);
}

#[test]
fn shutdown_drains_in_flight_jobs_and_acks_last() {
    // More queued jobs than workers or queue slots: shutdown must still
    // answer every accepted job before the ack, in submission order.
    let mut input = String::new();
    for id in 0..8 {
        input.push_str(&format!(
            "{{\"op\":\"elect\",\"id\":{id},\"family\":\"path\",\"n\":6,\"span\":3,\"seed\":{id}}}\n"
        ));
    }
    input.push_str("{\"op\":\"shutdown\",\"id\":999}\n");
    input.push_str("{\"op\":\"elect\",\"id\":1000,\"family\":\"path\"}\n");
    let (lines, summary) = serve(
        &input,
        &ServeOptions {
            threads: 2,
            queue: 2,
            cache: CacheConfig::default(),
        },
    );
    assert!(summary.shutdown);
    assert_eq!(summary.jobs, 9, "intake stops at the shutdown job");
    assert_eq!(lines.len(), 9);
    for (i, line) in lines.iter().take(8).enumerate() {
        assert!(
            line.starts_with(&format!("{{\"ok\":true,\"id\":{i}")),
            "drained reply {i} out of order: {line}"
        );
    }
    assert!(
        lines[8].starts_with("{\"ok\":true,\"id\":999,\"op\":\"shutdown\",\"jobs\":8"),
        "ack must be last: {}",
        lines[8]
    );
}

#[test]
fn tcp_transport_serves_multiple_connections_and_shuts_down() {
    use std::io::{BufRead as _, BufReader, Write as _};
    use std::net::{TcpListener, TcpStream};

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || serve_tcp(listener, &ServeOptions::default()));

    let ask = |line: &str| -> String {
        let mut conn = TcpStream::connect(addr).expect("connect");
        writeln!(conn, "{line}").expect("send job");
        let mut reader = BufReader::new(conn.try_clone().expect("clone"));
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read reply");
        reply
    };

    let first =
        ask("{\"op\":\"elect\",\"id\":1,\"family\":\"path\",\"n\":6,\"span\":3,\"seed\":42}");
    assert!(
        first.starts_with("{\"ok\":true,\"id\":1,\"op\":\"elect\""),
        "{first}"
    );
    // A second connection hits the same persistent worker pool and cache.
    let second =
        ask("{\"op\":\"elect\",\"id\":2,\"family\":\"path\",\"n\":6,\"span\":3,\"seed\":42}");
    assert!(second.contains("\"cache\":\"exact-hit\""), "{second}");

    let ack = ask("{\"op\":\"shutdown\",\"id\":3}");
    assert!(
        ack.starts_with("{\"ok\":true,\"id\":3,\"op\":\"shutdown\""),
        "{ack}"
    );
    server
        .join()
        .expect("server thread joins")
        .expect("serve_tcp exits cleanly");
}
