//! Differential testing of classifier-workspace reuse, mirroring
//! `tests/workspace_reuse.rs` on the decision side: one
//! `ClassifierWorkspace` driven through a shuffled mix of configurations
//! and engines must produce results bit-identical to fresh one-shot runs
//! — partition *and numbering*, per-iteration labels, iteration count,
//! leader class, and reference-engine step counters.
//!
//! This is the contract that lets the campaign layers keep one classifier
//! workspace per worker thread: if any state leaked across runs — a stale
//! interned label id, a dirty-worklist bit, a refine-table entry, a class
//! buffer dimensioned for the previous configuration — a reused run would
//! diverge from its fresh twin somewhere in this mix. Sizes grow and
//! shrink between consecutive runs on purpose.

use radio_classifier::{classify_with, ClassifierWorkspace, Engine, Outcome};
use radio_graph::{families, generators, tags, Configuration};
use radio_util::rng::{rng_from, stream};

fn assert_bit_identical(reused: &Outcome, fresh: &Outcome, what: &str) {
    assert_eq!(reused.feasible, fresh.feasible, "{what}: feasible");
    assert_eq!(reused.iterations, fresh.iterations, "{what}: iterations");
    assert_eq!(reused.cost, fresh.cost, "{what}: cost counters");
    assert_eq!(
        reused.records.len(),
        fresh.records.len(),
        "{what}: record count"
    );
    for (i, (a, b)) in reused.records.iter().zip(&fresh.records).enumerate() {
        // structural equality of Partition includes the class *numbering*
        // and the representatives, not just the blocks
        assert_eq!(a.partition, b.partition, "{what}: partition iter {}", i + 1);
        assert_eq!(a.labels, b.labels, "{what}: labels iter {}", i + 1);
    }
    assert_eq!(
        reused.leader_class(),
        fresh.leader_class(),
        "{what}: leader class"
    );
}

/// A deterministic shuffled case list: paper families plus random
/// configurations of varying size and span, ordered so the workspace
/// repeatedly grows and shrinks.
fn cases(seed: u64) -> Vec<(String, Configuration)> {
    let mut cases: Vec<(String, Configuration)> = Vec::new();
    // the paper families: feasible in one iteration (H_m), infeasible at a
    // two-class fixed point (S_m), and Θ(m)-iteration refinement (G_m)
    for m in [1u64, 5] {
        cases.push((format!("H_{m}"), families::h_m(m)));
        cases.push((format!("S_{m}"), families::s_m(m)));
    }
    for m in [2usize, 6] {
        cases.push((format!("G_{m}"), families::g_m(m)));
    }
    cases.push((
        "singleton".into(),
        Configuration::new(generators::path(1), vec![0]).unwrap(),
    ));
    cases.push((
        "uniform-cycle".into(),
        Configuration::with_uniform_tags(generators::cycle(6), 0).unwrap(),
    ));
    let mut k = 0u64;
    for n in [3usize, 14, 5, 20, 8] {
        for span in [0u64, 4, 40] {
            k += 1;
            let mut rng = stream(seed, "cls-reuse", k);
            let graph = if n % 2 == 0 {
                generators::gnp_connected(n, 0.3, &mut rng)
            } else {
                generators::star(n)
            };
            let config = tags::random_in_span(graph, span, &mut rng);
            cases.push((format!("case {k}: n={n} span={span}"), config));
        }
    }
    // Deterministic shuffle so consecutive runs mix sizes and shapes.
    use rand::Rng;
    let mut rng = rng_from(seed ^ 0xC1A5);
    for i in (1..cases.len()).rev() {
        let j = rng.random_range(0..=i);
        cases.swap(i, j);
    }
    cases
}

#[test]
fn one_workspace_matches_fresh_runs_across_a_shuffled_mix() {
    let mut ws = ClassifierWorkspace::new();
    for (label, config) in cases(0xFEED) {
        for engine in [Engine::Fast, Engine::Reference] {
            let reused = ws.classify_in(&config, engine);
            let fresh = classify_with(&config, engine);
            assert_bit_identical(&reused, &fresh, &format!("{label} {engine:?}"));
        }
    }
}

#[test]
fn reused_fast_engine_numbering_matches_the_reference_engine() {
    // The pinned property of the whole refactor: the *reused* fast engine
    // (interned labels, incremental worklist, recycled buffers) numbers
    // classes exactly like the paper-literal reference engine, run after
    // run.
    let mut ws = ClassifierWorkspace::new();
    for (label, config) in cases(0xBEAD) {
        let fast = ws.classify_in(&config, Engine::Fast);
        let reference = classify_with(&config, Engine::Reference);
        assert_eq!(fast.feasible, reference.feasible, "{label}");
        assert_eq!(fast.iterations, reference.iterations, "{label}");
        for (i, (f, r)) in fast.records.iter().zip(&reference.records).enumerate() {
            assert_eq!(f.partition, r.partition, "{label}: iter {}", i + 1);
            assert_eq!(f.labels, r.labels, "{label}: iter {}", i + 1);
        }
        assert_eq!(fast.leader_class(), reference.leader_class(), "{label}");
    }
}

#[test]
fn summaries_through_one_workspace_match_fresh_summaries() {
    let mut ws = ClassifierWorkspace::new();
    for (label, config) in cases(0xABBA) {
        let reused = ws.summarize_in(&config);
        let fresh = radio_classifier::summarize(&config);
        assert_eq!(reused, fresh, "{label}");
        // and the summary agrees with the eager outcome
        let outcome = radio_classifier::classify(&config);
        assert_eq!(reused.feasible, outcome.feasible, "{label}");
        assert_eq!(reused.iterations, outcome.iterations, "{label}");
        assert_eq!(
            reused.num_classes,
            outcome.final_partition().num_classes(),
            "{label}"
        );
        assert_eq!(reused.leader_class, outcome.leader_class(), "{label}");
    }
}

#[test]
fn solve_in_through_one_workspace_matches_fresh_elections() {
    // End to end: the dedicated algorithm compiled through a reused
    // classifier workspace elects the same leader with the same report as
    // the fresh path, across a mix of feasible configurations.
    let mut cls = ClassifierWorkspace::new();
    let mut sim = radio_sim::SimWorkspace::new();
    let mut rng = rng_from(99);
    let mut configs: Vec<Configuration> =
        vec![families::h_m(2), families::g_m(3), families::h_m(7)];
    for n in [4usize, 9, 6] {
        let g = generators::gnp_connected(n, 0.4, &mut rng);
        configs.push(tags::distinct_shuffled(g, &mut rng));
    }
    for config in configs {
        let reused = anon_radio::DedicatedElection::solve_in(&mut cls, &config)
            .expect("feasible")
            .run_in(
                &mut sim,
                radio_sim::ModelKind::default(),
                radio_sim::RunOpts::default(),
            )
            .expect("elects");
        let fresh = anon_radio::elect_leader(&config).expect("elects");
        assert_eq!(reused, fresh, "{config}");
    }
}
