//! Lemma 3.12 end-to-end: wrapping a working leader-election algorithm in
//! the patient transform preserves election — with the decision function
//! `f_pat(H) = f(H[s_w ..])` built exactly as the paper prescribes.

use radio_graph::{generators, Configuration};
use radio_sim::drip::WaitThenTransmitFactory;
use radio_sim::{run_election, History, LeaderAlgorithm, Msg, Obs, PatientFactory, RunOpts};

/// The paper's `f_pat`: recover `s_w = min(σ, rcv_w)` from the history and
/// apply `f` to the suffix (with the boundary-collision sanitation
/// documented in `radio-sim::patient`).
fn patient_decision<'a>(
    sigma: u64,
    inner: &'a (dyn Fn(&History) -> bool + Sync),
) -> impl Fn(&History) -> bool + Sync + 'a {
    move |h: &History| {
        let rcv = h.first_message().map(|r| r as u64);
        let s = rcv.unwrap_or(u64::MAX).min(sigma) as usize;
        if h.len() <= s {
            return false; // never reached the simulation stage
        }
        let mut suffix = h.window(s, h.len() - s);
        if suffix[0].is_collision() {
            // boundary sanitation: the inner DRIP saw (∅) here
            let mut entries = suffix.as_slice().to_vec();
            entries[0] = Obs::Silence;
            suffix = History::from_entries(entries);
        }
        inner(&suffix)
    }
}

/// A small election algorithm (wait-then-transmit + "leader iff my history
/// is pure silence through my transmission round") and the configurations
/// it wins on.
fn inner_algorithm(wait: u64) -> (WaitThenTransmitFactory, impl Fn(&History) -> bool + Sync) {
    let factory = WaitThenTransmitFactory {
        wait,
        msg: Msg::ONE,
        lifetime: wait + 12,
    };
    let decide = move |h: &History| {
        h.as_slice()
            .iter()
            .take(wait as usize + 2)
            .all(|o| o.is_silence())
    };
    (factory, decide)
}

fn working_configs() -> Vec<Configuration> {
    vec![
        // strongly staggered path: the head transmits first and wins
        Configuration::new(generators::path(2), vec![0, 9]).unwrap(),
        Configuration::new(generators::path(3), vec![0, 9, 9]).unwrap(),
        Configuration::new(generators::star(4), vec![0, 9, 9, 9]).unwrap(),
        Configuration::new(generators::path(4), vec![0, 9, 9, 9]).unwrap(),
    ]
}

#[test]
fn plain_algorithm_wins_on_the_test_configs() {
    for config in working_configs() {
        let (factory, decide) = inner_algorithm(1);
        let algo = LeaderAlgorithm {
            drip: &factory,
            decide: &decide,
        };
        let out = run_election(&config, &algo, RunOpts::default()).unwrap();
        assert_eq!(out.elected(), Some(0), "{config}");
    }
}

#[test]
fn patient_wrapping_preserves_the_winner() {
    for config in working_configs() {
        let sigma = config.span();
        let (factory, decide) = inner_algorithm(1);
        let patient = PatientFactory::new(factory, sigma);
        let pat_decide = patient_decision(sigma, &decide);
        let algo = LeaderAlgorithm {
            drip: &patient,
            decide: &pat_decide,
        };
        let out = run_election(&config, &algo, RunOpts::default()).unwrap();
        assert_eq!(out.elected(), Some(0), "{config} (patient)");
    }
}

#[test]
fn patient_wrapping_preserves_failure_too() {
    // On a symmetric configuration the inner algorithm elects 2 leaders;
    // so must the patient version (the transform changes timing, not
    // symmetry).
    let config = Configuration::new(generators::path(2), vec![0, 0]).unwrap();
    let (factory, decide) = inner_algorithm(1);
    let algo = LeaderAlgorithm {
        drip: &factory,
        decide: &decide,
    };
    let plain = run_election(&config, &algo, RunOpts::default()).unwrap();

    let sigma = config.span();
    let (factory, decide) = inner_algorithm(1);
    let patient = PatientFactory::new(factory, sigma);
    let pat_decide = patient_decision(sigma, &decide);
    let algo = LeaderAlgorithm {
        drip: &patient,
        decide: &pat_decide,
    };
    let wrapped = run_election(&config, &algo, RunOpts::default()).unwrap();

    assert_eq!(plain.leaders.len(), wrapped.leaders.len());
    assert_ne!(plain.leaders.len(), 1);
}

#[test]
fn patient_runs_are_never_early() {
    // Claim 1 of Lemma 3.12 on a batch of configurations: no transmission
    // at global rounds ≤ σ.
    let mut rng = radio_util::rng::rng_from(42);
    for _ in 0..10 {
        let g = radio_graph::generators::gnp_connected(8, 0.3, &mut rng);
        let config = radio_graph::tags::random_in_span(g, 6, &mut rng);
        let sigma = config.span();
        let (factory, _) = inner_algorithm(0);
        let patient = PatientFactory::new(factory, sigma);
        let ex = radio_sim::Executor::run(&config, &patient, RunOpts::default().traced()).unwrap();
        for event in &ex.trace.unwrap().events {
            if !event.transmitters.is_empty() {
                assert!(
                    event.round > sigma,
                    "transmission at {} ≤ σ={sigma}",
                    event.round
                );
            }
        }
    }
}

#[test]
fn patient_suffix_equality_claim_2_3() {
    // For every node: patient history from s_w onwards equals the plain
    // history (modulo the documented boundary sanitation).
    let mut rng = radio_util::rng::rng_from(7);
    for _ in 0..10 {
        let g = radio_graph::generators::random_tree(7, &mut rng);
        let config = radio_graph::tags::random_in_span(g, 4, &mut rng);
        let sigma = config.span();

        let (factory, _) = inner_algorithm(1);
        let plain = radio_sim::Executor::run(&config, &factory, RunOpts::default()).unwrap();

        let (factory, _) = inner_algorithm(1);
        let patient = PatientFactory::new(factory, sigma);
        let wrapped = radio_sim::Executor::run(&config, &patient, RunOpts::default()).unwrap();

        for v in 0..config.size() as u32 {
            let s = (plain.wake_round[v as usize] + sigma - config.tag(v)) as usize;
            let plain_h = plain.history(v).as_slice();
            let wrapped_h = wrapped.history(v).as_slice();
            assert!(wrapped_h.len() >= s + plain_h.len(), "{config} node {v}");
            let mut suffix = wrapped_h[s..s + plain_h.len()].to_vec();
            if suffix[0].is_collision() {
                suffix[0] = Obs::Silence;
            }
            assert_eq!(&suffix, plain_h, "{config} node {v}");
        }
    }
}
