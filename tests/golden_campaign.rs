//! Golden-file regression: a small fixed-seed campaign over the scenario
//! grammar's families × tag strategies writes JSONL that is compared
//! field for field against a checked-in corpus.
//!
//! This pins *everything* the campaign derives: the row schema (field
//! names and order), the seeding geometry (which configurations each cell
//! draws), the aggregation (counters, means, quantiles), and the JSON
//! rendering. Any drift — a reordered field, a perturbed seed stream, a
//! changed reservoir — fails with the exact field that moved.
//!
//! The only non-deterministic field, `wall_ns`, is stripped before
//! comparison (the same convention the geometry-invariance tests use).
//!
//! To regenerate after an *intentional* contract change:
//! `UPDATE_GOLDEN=1 cargo test --test golden_campaign` — then review the
//! corpus diff like any other code change.

use anon_radio::campaign::{CampaignRunner, CampaignSpec, Phase, TagStrategy};
use radio_sim::{ModelKind, RunOpts};

const ELECT_CORPUS: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/campaign_elect.jsonl"
);
const CLASSIFY_CORPUS: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/campaign_classify.jsonl"
);

/// The pinned elect-phase grid: seven families across the grammar (three
/// size-pinned) × all four tag strategies, one model, two reps.
fn golden_elect_spec() -> CampaignSpec {
    CampaignSpec {
        phase: Phase::Elect,
        families: vec![
            "path".parse().unwrap(),
            "cycle".parse().unwrap(),
            "grid:3x2".parse().unwrap(),
            "torus:3x3".parse().unwrap(),
            "hypercube:3".parse().unwrap(),
            "gnp:0.25".parse().unwrap(),
            "barbell:3+2".parse().unwrap(),
        ],
        tags: TagStrategy::ALL.to_vec(),
        sizes: vec![6],
        spans: vec![3],
        models: vec![ModelKind::NoCollisionDetection],
        reps: 2,
        seed: 0x60_1DE4,
        opts: RunOpts::default(),
        cache: anon_radio::cache::CacheConfig::default(),
        // The default (batched) path: the golden corpus itself pins that
        // batching is invisible in the deterministic row prefix.
        batch: anon_radio::campaign::BatchConfig::default(),
    }
}

/// The pinned classify-phase grid (no model axis in the rows).
fn golden_classify_spec() -> CampaignSpec {
    CampaignSpec {
        phase: Phase::Classify,
        families: vec![
            "star".parse().unwrap(),
            "wheel".parse().unwrap(),
            "caterpillar:3x1".parse().unwrap(),
            "bipartite:2x3".parse().unwrap(),
        ],
        ..golden_elect_spec()
    }
}

/// Runs the spec and returns its rows with the measured `wall_ns`
/// summary stripped.
fn stable_rows(spec: CampaignSpec) -> Vec<String> {
    let mut runner = CampaignRunner::new(spec, 3);
    runner.run_to_completion(2);
    runner
        .jsonl_rows()
        .into_iter()
        .map(|row| {
            let mut stable = row.split(",\"wall_ns\"").next().unwrap().to_string();
            stable.push('}');
            stable
        })
        .collect()
}

/// Splits a flat-with-nested-objects JSON row into its top-level fields,
/// so a mismatch names the exact field that drifted.
fn fields(row: &str) -> Vec<&str> {
    let body = row
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or(row);
    let mut out = Vec::new();
    let (mut depth, mut start) = (0usize, 0usize);
    for (i, b) in body.bytes().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => depth -= 1,
            b',' if depth == 0 => {
                out.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&body[start..]);
    out
}

fn assert_matches_corpus(rows: &[String], corpus_path: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let mut body = rows.join("\n");
        body.push('\n');
        std::fs::write(corpus_path, body).expect("write corpus");
        eprintln!("regenerated {corpus_path} — review the diff before committing");
        return;
    }
    let corpus = std::fs::read_to_string(corpus_path)
        .unwrap_or_else(|e| panic!("missing corpus {corpus_path} ({e}); run with UPDATE_GOLDEN=1"));
    let expected: Vec<&str> = corpus.lines().collect();
    assert_eq!(
        rows.len(),
        expected.len(),
        "row count drifted from {corpus_path}"
    );
    for (i, (got, want)) in rows.iter().zip(&expected).enumerate() {
        if got == want {
            continue;
        }
        // fall through to a field-level message
        let got_fields = fields(got);
        let want_fields = fields(want);
        for (g, w) in got_fields.iter().zip(&want_fields) {
            assert_eq!(
                g,
                w,
                "row {} of {corpus_path}: field drifted\n  got row:  {got}\n  want row: {want}",
                i + 1
            );
        }
        assert_eq!(
            got_fields.len(),
            want_fields.len(),
            "row {} of {corpus_path}: field count drifted\n  got row:  {got}\n  want row: {want}",
            i + 1
        );
    }
}

#[test]
fn elect_rows_match_the_checked_in_corpus() {
    assert_matches_corpus(&stable_rows(golden_elect_spec()), ELECT_CORPUS);
}

#[test]
fn classify_rows_match_the_checked_in_corpus() {
    assert_matches_corpus(&stable_rows(golden_classify_spec()), CLASSIFY_CORPUS);
}

#[test]
fn golden_grids_have_the_expected_shape() {
    // a guard on the guards: the corpus must cover both row schemas and
    // all four strategies, or the regression test quietly narrows
    let elect = stable_rows(golden_elect_spec());
    assert_eq!(elect.len(), 28, "7 families × 4 strategies");
    assert!(elect.iter().all(|r| r.starts_with("{\"phase\":\"elect\"")));
    let classify = stable_rows(golden_classify_spec());
    assert_eq!(classify.len(), 16, "4 families × 4 strategies");
    assert!(classify
        .iter()
        .all(|r| r.starts_with("{\"phase\":\"classify\"")));
    for strategy in ["uniform", "clustered", "extremes", "arith:2"] {
        let tag = format!("\"tags\":\"{strategy}\"");
        assert!(elect.iter().any(|r| r.contains(&tag)), "{strategy}");
        assert!(classify.iter().any(|r| r.contains(&tag)), "{strategy}");
    }
}
