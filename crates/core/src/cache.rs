//! The canonical-key schedule cache: memoizes the classify + compile
//! pipeline across repeated configurations.
//!
//! Campaign grids run thousands of reps per `(family, n, tag-strategy)`
//! cell, and those reps collapse to a handful of distinct classifier
//! traces. The outcome of `Classifier` + schedule compilation is a pure
//! function of the refinement trace, so one compiled
//! [`CompiledElection`] can serve every configuration that replays that
//! trace — the cache *is* the "knowledge about the topology" the related
//! complexity work charges election time against, amortized across a grid.
//!
//! # Two key levels
//!
//! [`CanonicalKey`] can only be derived *by classifying* — it fingerprints
//! the trace itself. On its own it would memoize schedule compilation but
//! never classification. The cache therefore indexes every entry under two
//! keys:
//!
//! * an **exact** key — a fingerprint of the raw configuration (node
//!   count, node-ordered tags, CSR adjacency), computable without
//!   classifying. An exact hit skips classification *and* compilation.
//! * the **canonical** key — the trace fingerprint from
//!   [`radio_classifier::canonical_key_in`]'s [`KeySink`] contract. On an
//!   exact miss the configuration is classified once (streaming both the
//!   canonical lists and the key out of the same run); a canonical hit
//!   then reuses the cached schedule and registers the new exact key as an
//!   alias, so the *next* occurrence of this configuration short-circuits
//!   before classifying.
//!
//! A canonical hit may legitimately join non-isomorphic configurations:
//! uniform-tag `C_4` and `K_4` drive `Classifier` through bit-identical
//! traces, and everything the cache serves (summary, schedule) is a
//! function of the trace alone — so sharing is sound, not merely probable.
//!
//! # Sharding, bounding, eviction
//!
//! The cache is shared by all campaign workers, so the map is split into
//! [`SHARDS`] independently-locked shards selected by key hash; counters
//! are lock-free atomics. Each shard holds at most `⌈capacity/SHARDS⌉`
//! entries; on overflow the shard evicts its least-recently-used entry (an
//! `O(len)` min-scan of per-entry ticks — eviction is rare and shards are
//! small, so a heap is not worth its constant factor).
//!
//! # Bit-for-bit contract
//!
//! Cached ≡ uncached everywhere: a hit returns the same
//! [`ClassifySummary`] and a schedule equal (by value) to what a fresh
//! compile would produce. Debug builds verify the schedule equality on
//! every canonical hit. What *is* nondeterministic under concurrency is
//! the hit/miss split itself (two workers can race to first-miss the same
//! key), which is why campaign JSONL emits cache counters after `wall_ns`
//! — outside the byte range golden tests compare.

use std::hash::Hasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use radio_classifier::{ClassifierWorkspace, KeySink, ListsSink};
use radio_graph::Configuration;
use radio_util::fxhash::{FxHashMap, FxHasher};

use crate::dedicated::CompiledElection;
use crate::schedule::CanonicalSchedule;

/// Number of independently-locked shards (fixed power of two).
pub const SHARDS: usize = 16;

/// Default total entry capacity of a [`ScheduleCache`].
pub const DEFAULT_CAPACITY: usize = 4096;

/// Cache policy knob carried by `CampaignSpec` and the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Whether the campaign attaches a schedule cache at all
    /// (`--no-cache` clears it).
    pub enabled: bool,
    /// Total entry budget across all shards.
    pub capacity: usize,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            enabled: true,
            capacity: DEFAULT_CAPACITY,
        }
    }
}

impl CacheConfig {
    /// The `--no-cache` configuration.
    pub fn disabled() -> CacheConfig {
        CacheConfig {
            enabled: false,
            ..CacheConfig::default()
        }
    }

    /// Enabled with an explicit capacity (`--cache-capacity N`).
    pub fn with_capacity(capacity: usize) -> CacheConfig {
        CacheConfig {
            enabled: true,
            capacity,
        }
    }
}

/// Snapshot of a cache's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (exact + canonical).
    pub hits: u64,
    /// Hits that short-circuited before classifying.
    pub exact_hits: u64,
    /// Lookups that classified *and* compiled from scratch.
    pub misses: u64,
    /// Entries displaced by the LRU bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits that classified but reused a cached schedule.
    pub fn canonical_hits(&self) -> u64 {
        self.hits - self.exact_hits
    }

    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

/// How a single [`ScheduleCache::compile_in`] call was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLookup {
    /// Configuration fingerprint known — no classification ran.
    ExactHit,
    /// Classified once; the trace key matched a cached schedule, so
    /// compilation was skipped and the schedule `Arc` shared.
    CanonicalHit,
    /// Classified and compiled from scratch; both keys now populated.
    Miss,
}

impl CacheLookup {
    /// Whether the cached schedule was reused (either hit flavour).
    pub fn is_hit(self) -> bool {
        !matches!(self, CacheLookup::Miss)
    }
}

/// Map key: both levels live in one map so a shard's LRU budget covers
/// exact aliases and canonical entries uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Key {
    Exact(u128),
    Canonical(u128),
}

impl Key {
    fn shard(self) -> usize {
        // The fingerprint bits are already well-mixed FxHash output; fold
        // the level tag in so an exact/canonical pair with (impossibly)
        // equal bits would still separate.
        let (tag, bits) = match self {
            Key::Exact(b) => (0u64, b),
            Key::Canonical(b) => (1u64, b),
        };
        let fold = (bits as u64) ^ ((bits >> 64) as u64) ^ (tag.wrapping_mul(0x9E37_79B9));
        (fold as usize) & (SHARDS - 1)
    }
}

#[derive(Debug)]
struct Entry {
    last_used: u64,
    value: CompiledElection,
}

#[derive(Debug, Default)]
struct Shard {
    map: FxHashMap<Key, Entry>,
    tick: u64,
}

impl Shard {
    fn touch(&mut self, key: Key) -> Option<CompiledElection> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&key).map(|entry| {
            entry.last_used = tick;
            entry.value.clone()
        })
    }

    /// Inserts under `key`, evicting the least-recently-used entry when
    /// the shard is at its budget. Returns the number of evictions (0/1).
    fn insert(&mut self, key: Key, value: CompiledElection, budget: usize) -> u64 {
        self.tick += 1;
        let mut evicted = 0;
        if !self.map.contains_key(&key) && self.map.len() >= budget {
            if let Some(&victim) = self
                .map
                // lint:allow(nondet-iter): min-scan over `last_used` ticks, which are
                // unique within a shard — the minimum is a single entry, so the scan's
                // hash order cannot influence which victim is evicted
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(k, _)| k)
            {
                self.map.remove(&victim);
                evicted = 1;
            }
        }
        self.map.insert(
            key,
            Entry {
                last_used: self.tick,
                value,
            },
        );
        evicted
    }
}

/// A sharded-lock, bounded-LRU cache for compiled elections — see the
/// module docs for the two-level key protocol and its soundness argument.
pub struct ScheduleCache {
    shards: Box<[Mutex<Shard>]>,
    per_shard: usize,
    hits: AtomicU64,
    exact_hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for ScheduleCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScheduleCache")
            .field("per_shard", &self.per_shard)
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for ScheduleCache {
    fn default() -> ScheduleCache {
        ScheduleCache::new(DEFAULT_CAPACITY)
    }
}

impl ScheduleCache {
    /// A cache holding at most ~`capacity` entries across [`SHARDS`]
    /// shards (each shard gets `⌈capacity/SHARDS⌉`, minimum 1).
    pub fn new(capacity: usize) -> ScheduleCache {
        ScheduleCache::with_budget(capacity.div_ceil(SHARDS).max(1))
    }

    /// A cache whose *per-shard* budget is `per_shard` entries — exposed
    /// so eviction tests can exercise the LRU bound without inserting
    /// thousands of entries.
    pub fn with_budget(per_shard: usize) -> ScheduleCache {
        let shards = (0..SHARDS)
            .map(|_| Mutex::new(Shard::default()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ScheduleCache {
            shards,
            per_shard: per_shard.max(1),
            hits: AtomicU64::new(0),
            exact_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Current number of entries (exact aliases and canonical entries both
    /// count — the map stores each compiled election under up to two keys).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot (approximate under concurrency, exact when quiescent).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            exact_hits: self.exact_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    fn get(&self, key: Key) -> Option<CompiledElection> {
        self.shards[key.shard()]
            .lock()
            .expect("cache shard poisoned")
            .touch(key)
    }

    fn put(&self, key: Key, value: CompiledElection) {
        let evicted = self.shards[key.shard()]
            .lock()
            .expect("cache shard poisoned")
            .insert(key, value, self.per_shard);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// The memoized form of [`CompiledElection::compile_in`]: returns a
    /// compiled election bit-identical to a fresh compile, plus how the
    /// lookup resolved. Infeasible configurations are cached like any
    /// other (their schedule is well-defined; only the leader is absent).
    pub fn compile_in(
        &self,
        workspace: &mut ClassifierWorkspace,
        config: &Configuration,
    ) -> (CompiledElection, CacheLookup) {
        let exact = Key::Exact(config_fingerprint(config));
        if let Some(cached) = self.get(exact) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.exact_hits.fetch_add(1, Ordering::Relaxed);
            return (cached, CacheLookup::ExactHit);
        }
        // One classification streams both the canonical lists and the
        // trace key out of the same run.
        let mut sink = (ListsSink::default(), KeySink::default());
        let summary =
            workspace.classify_with_sink(config, radio_classifier::Engine::Fast, &mut sink);
        let (lists_sink, key_sink) = sink;
        let canonical = Key::Canonical(key_sink.finish(config).bits());
        if let Some(cached) = self.get(canonical) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            // The cached schedule was compiled from a trace equal to the
            // one just observed, so the summaries agree and the schedule
            // may be shared verbatim. Debug builds prove it.
            #[cfg(debug_assertions)]
            {
                let fresh = CanonicalSchedule::from_lists(
                    lists_sink.into_lists(config.span(), summary.leader_class),
                );
                debug_assert_eq!(
                    cached.summary(),
                    summary,
                    "canonical key collision (summary)"
                );
                debug_assert_eq!(
                    cached.schedule().lists,
                    fresh.lists,
                    "canonical key collision (lists)"
                );
            }
            let compiled = CompiledElection::from_parts(summary, cached.shared_schedule());
            self.put(exact, compiled.clone());
            return (compiled, CacheLookup::CanonicalHit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let lists = lists_sink.into_lists(config.span(), summary.leader_class);
        let schedule = CanonicalSchedule::from_lists(lists);
        let compiled = CompiledElection::from_parts(summary, std::sync::Arc::new(schedule));
        self.put(canonical, compiled.clone());
        self.put(exact, compiled.clone());
        (compiled, CacheLookup::Miss)
    }
}

/// Fingerprints the raw configuration — node count, span, node-ordered
/// tags, and the CSR adjacency — without classifying. Equal
/// configurations always collide (the fingerprint is a pure function of
/// the configuration's canonical representation); distinct ones separate
/// up to the two-lane 128-bit birthday bound.
pub fn config_fingerprint(config: &Configuration) -> u128 {
    const SEED: u64 = 0xC0FF_EE00_D15C_0B1A;
    let mut lane_lo = FxHasher::default();
    let mut lane_hi = FxHasher::default();
    lane_hi.write_u64(SEED);
    let mut fold = |word: u64| {
        lane_lo.write_u64(word);
        // per-word FxHash maps are bijections: mix the second lane's copy
        // so the lanes' collision sets decorrelate (same trick as KeySink)
        lane_hi.write_u64(word.rotate_left(32) ^ SEED);
    };
    let n = config.size();
    fold(n as u64);
    fold(config.span());
    for &tag in config.tags() {
        fold(tag);
    }
    let csr = config.csr();
    for v in 0..n as radio_graph::NodeId {
        fold(csr.degree(v) as u64);
        for &u in csr.neighbors(v) {
            fold(u as u64);
        }
    }
    ((lane_hi.finish() as u128) << 64) | lane_lo.finish() as u128
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::{families, generators, tags, Configuration};
    use radio_util::rng::rng_from;

    #[test]
    fn fingerprint_separates_and_repeats() {
        let a = families::h_m(3);
        let b = families::s_m(3);
        assert_eq!(config_fingerprint(&a), config_fingerprint(&a));
        assert_ne!(config_fingerprint(&a), config_fingerprint(&b));
        // same graph, different tags
        let g = generators::path(4);
        let t1 = Configuration::new(g.clone(), vec![0, 1, 2, 3]).unwrap();
        let t2 = Configuration::new(g, vec![3, 2, 1, 0]).unwrap();
        assert_ne!(config_fingerprint(&t1), config_fingerprint(&t2));
    }

    #[test]
    fn exact_hit_after_miss() {
        let cache = ScheduleCache::default();
        let mut ws = ClassifierWorkspace::new();
        let c = families::h_m(3);
        let (first, l1) = cache.compile_in(&mut ws, &c);
        assert_eq!(l1, CacheLookup::Miss);
        let (second, l2) = cache.compile_in(&mut ws, &c);
        assert_eq!(l2, CacheLookup::ExactHit);
        assert_eq!(first.summary(), second.summary());
        assert!(std::sync::Arc::ptr_eq(
            &first.shared_schedule(),
            &second.shared_schedule()
        ));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.exact_hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn cached_equals_fresh_compile() {
        let cache = ScheduleCache::default();
        let mut ws = ClassifierWorkspace::new();
        let mut rng = rng_from(41);
        let mut configs = vec![families::h_m(2), families::g_m(3), families::s_m(2)];
        for _ in 0..10 {
            let g = generators::gnp_connected(8, 0.35, &mut rng);
            configs.push(tags::random_in_span(g, 4, &mut rng));
        }
        // twice over, so the second pass hits
        for round in 0..2 {
            for c in &configs {
                let (cached, lookup) = cache.compile_in(&mut ws, c);
                if round == 1 {
                    assert!(lookup.is_hit(), "{c}");
                }
                let fresh = CompiledElection::compile_in(&mut ws, c);
                assert_eq!(cached.summary(), fresh.summary(), "{c}");
                assert_eq!(cached.schedule().lists, fresh.schedule().lists, "{c}");
                assert_eq!(
                    cached.schedule().phase_end,
                    fresh.schedule().phase_end,
                    "{c}"
                );
            }
        }
    }

    #[test]
    fn canonical_hit_joins_trace_identical_configurations() {
        // uniform-tag C_4 and K_4 share a classifier trace (one collision
        // triple each, partition freezes) but have different adjacency, so
        // the exact keys differ while the canonical keys agree.
        let cycle = Configuration::with_uniform_tags(generators::cycle(4), 0).unwrap();
        let complete = Configuration::with_uniform_tags(generators::complete(4), 0).unwrap();
        let cache = ScheduleCache::default();
        let mut ws = ClassifierWorkspace::new();
        let (_, l1) = cache.compile_in(&mut ws, &cycle);
        assert_eq!(l1, CacheLookup::Miss);
        let (_, l2) = cache.compile_in(&mut ws, &complete);
        assert_eq!(l2, CacheLookup::CanonicalHit);
        // the canonical hit registered an exact alias for K_4
        let (_, l3) = cache.compile_in(&mut ws, &complete);
        assert_eq!(l3, CacheLookup::ExactHit);
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.exact_hits, 1);
        assert_eq!(stats.canonical_hits(), 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn lru_evicts_and_reinserts() {
        // per-shard budget 1 ⇒ each shard holds one entry; every compile
        // stores two keys, so a handful of configurations forces evictions.
        let cache = ScheduleCache::with_budget(1);
        let mut ws = ClassifierWorkspace::new();
        let configs: Vec<Configuration> = (1..=12u64).map(families::h_m).collect();
        for c in &configs {
            let _ = cache.compile_in(&mut ws, c);
        }
        let stats = cache.stats();
        assert!(stats.evictions > 0, "budget 1 must evict: {stats:?}");
        assert!(cache.len() <= 2 * SHARDS);
        // whatever was evicted recomputes correctly and re-enters
        for c in &configs {
            let (compiled, _) = cache.compile_in(&mut ws, c);
            let fresh = CompiledElection::compile_in(&mut ws, c);
            assert_eq!(compiled.summary(), fresh.summary());
            assert_eq!(compiled.schedule().lists, fresh.schedule().lists);
        }
    }

    #[test]
    fn infeasible_configurations_cache_too() {
        let cache = ScheduleCache::default();
        let mut ws = ClassifierWorkspace::new();
        let c = families::s_m(2);
        let (first, l1) = cache.compile_in(&mut ws, &c);
        assert_eq!(l1, CacheLookup::Miss);
        assert!(!first.feasible());
        let (second, l2) = cache.compile_in(&mut ws, &c);
        assert_eq!(l2, CacheLookup::ExactHit);
        assert!(!second.feasible());
        assert_eq!(first.summary(), second.summary());
    }

    #[test]
    fn shared_across_threads() {
        let cache = std::sync::Arc::new(ScheduleCache::default());
        let configs: Vec<Configuration> = (1..=6u64).map(families::h_m).collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = cache.clone();
                let configs = &configs;
                scope.spawn(move || {
                    let mut ws = ClassifierWorkspace::new();
                    for _ in 0..5 {
                        for c in configs {
                            let (compiled, _) = cache.compile_in(&mut ws, c);
                            assert!(compiled.feasible());
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.lookups(), 4 * 5 * 6);
        // racing first-misses make the exact split nondeterministic, but
        // at most one miss per (thread, config) worst case
        assert!(stats.misses <= 4 * 6);
        assert!(stats.hits >= stats.lookups() - 4 * 6);
    }

    #[test]
    fn config_default_and_knobs() {
        let d = CacheConfig::default();
        assert!(d.enabled);
        assert_eq!(d.capacity, DEFAULT_CAPACITY);
        assert!(!CacheConfig::disabled().enabled);
        let c = CacheConfig::with_capacity(64);
        assert!(c.enabled);
        assert_eq!(c.capacity, 64);
    }
}
