//! Campaign row model: typed rows, JSONL rendering/parsing, and a compact
//! binary codec.
//!
//! A campaign's machine-readable output is one row per grid cell. PR 5
//! pinned the JSONL schema with a golden corpus and PR 7's `radio-lint
//! schema` enforces it; this module gives the same rows a typed in-memory
//! form ([`CampaignRow`]) plus two interchangeable wire encodings:
//!
//! * **JSONL** — the canonical, human-greppable format. [`CampaignRow::
//!   to_jsonl`] reproduces the pinned field order byte for byte, and
//!   [`CampaignRow::parse_jsonl`] inverts it exactly (floats round-trip
//!   because Rust renders the shortest representation that re-parses to
//!   the same bits).
//! * **Binary** — a length-prefixed little-endian encoding for
//!   million-node campaigns, where JSONL rendering and disk volume start
//!   to matter. `anon-radio rows convert` maps between the two formats
//!   losslessly in either direction.
//!
//! ## Measured tail
//!
//! Both row shapes end in a *measured tail* — everything from `wall_ns`
//! on is execution-dependent (wall time, cache counter split across
//! workers, workspace high-water marks), so deterministic consumers strip
//! it. The tail is a strict prefix: a field may be absent only if every
//! field after it is too. Golden-corpus rows carry no tail at all; the
//! runner emits the full tail.
//!
//! ## Binary layout (version 1)
//!
//! | section | bytes |
//! |---|---|
//! | file header | magic `ARBR` (4) + version u16 LE |
//! | per row | payload length u32 LE + payload |
//!
//! Payload fields in JSONL field order: phase byte (1 = elect,
//! 2 = classify); strings as u16 LE length + UTF-8 bytes; counters as
//! u64 LE; stats objects as a tag byte (0 = `null`, 1 = present) followed
//! (when present) by count u64 LE and the five summary floats as f64 LE
//! bit patterns (NaN bits encode a JSON `null` summary value). The
//! measured tail is a length byte (0–4 for elect, 0–2 for classify)
//! followed by that many tail fields in order.

use radio_util::stats::StreamingStats;
use std::fmt;

/// Magic bytes opening every binary row file ("Anon-Radio Binary Rows").
pub const BINARY_MAGIC: [u8; 4] = *b"ARBR";
/// Binary schema version written after the magic; readers reject others.
pub const BINARY_VERSION: u16 = 1;

/// A malformed row (either encoding). Carries a human-readable reason —
/// row handling is an offline tool path, not a hot loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowError(String);

impl RowError {
    fn new(msg: impl Into<String>) -> Self {
        RowError(msg.into())
    }
}

impl fmt::Display for RowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed campaign row: {}", self.0)
    }
}

impl std::error::Error for RowError {}

/// A `{count, mean, min, max, p50, p95}` summary, or `null` when the
/// metric folded no samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RowStats {
    /// No samples were folded — rendered as JSON `null`.
    Null,
    /// A non-empty summary. Non-finite floats render as JSON `null` and
    /// are stored as NaN in memory and in the binary encoding.
    Present {
        /// Number of samples folded.
        count: u64,
        /// Arithmetic mean.
        mean: f64,
        /// Smallest sample.
        min: f64,
        /// Largest sample.
        max: f64,
        /// Median estimate from the reservoir.
        p50: f64,
        /// 95th-percentile estimate from the reservoir.
        p95: f64,
    },
}

impl From<&StreamingStats> for RowStats {
    fn from(s: &StreamingStats) -> Self {
        if s.is_empty() {
            return RowStats::Null;
        }
        RowStats::Present {
            count: s.count(),
            mean: s.mean().expect("non-empty"),
            min: s.min().expect("non-empty"),
            max: s.max().expect("non-empty"),
            p50: s.p50().expect("non-empty"),
            p95: s.p95().expect("non-empty"),
        }
    }
}

impl RowStats {
    fn render(&self, out: &mut String) {
        match self {
            RowStats::Null => out.push_str("null"),
            RowStats::Present {
                count,
                mean,
                min,
                max,
                p50,
                p95,
            } => {
                out.push_str(&format!(
                    "{{\"count\":{},\"mean\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{}}}",
                    count,
                    json_f64(*mean),
                    json_f64(*min),
                    json_f64(*max),
                    json_f64(*p50),
                    json_f64(*p95),
                ));
            }
        }
    }
}

/// JSON-safe float rendering (JSON has no NaN/∞; a whole-valued f64 is
/// emitted without a fraction, which every JSON parser reads as a number).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// One elect-phase row. The measured tail (`wall_ns`, `cache_hits`,
/// `cache_misses`, `mem_hw`) is a strict prefix: each field may be
/// present only if all earlier tail fields are.
#[derive(Debug, Clone, PartialEq)]
pub struct ElectRow {
    /// Family axis label (e.g. `gnp:0.25`).
    pub family: String,
    /// Tag-strategy axis label (e.g. `arith:2`).
    pub tags: String,
    /// Size axis.
    pub n: u64,
    /// Tag-span axis.
    pub span: u64,
    /// Collision-model axis label.
    pub model: String,
    /// Repetitions folded into this cell.
    pub runs: u64,
    /// Runs whose configuration admitted a leader.
    pub feasible: u64,
    /// Runs that elected a leader.
    pub elected: u64,
    /// Runs aborted by the round cap.
    pub aborted: u64,
    /// Rounds-to-termination summary.
    pub rounds: RowStats,
    /// Transmission-count summary.
    pub transmissions: RowStats,
    /// Stepped-advance summary.
    pub stepped: RowStats,
    /// Leapt-advance summary.
    pub leapt: RowStats,
    /// Wall-clock summary (measured tail).
    pub wall_ns: Option<RowStats>,
    /// Schedule-cache hits (measured tail).
    pub cache_hits: Option<u64>,
    /// Schedule-cache misses (measured tail).
    pub cache_misses: Option<u64>,
    /// Workspace high-water-mark summary in bytes (measured tail).
    pub mem_hw: Option<RowStats>,
}

/// One classify-phase row (no model axis — classification never consults
/// it). The measured tail is `wall_ns` then `mem_hw`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifyRow {
    /// Family axis label.
    pub family: String,
    /// Tag-strategy axis label.
    pub tags: String,
    /// Size axis.
    pub n: u64,
    /// Tag-span axis.
    pub span: u64,
    /// Repetitions folded into this cell.
    pub runs: u64,
    /// Runs whose configuration admitted a leader.
    pub feasible: u64,
    /// Refinement-iteration summary.
    pub iterations: RowStats,
    /// Class-count summary.
    pub classes: RowStats,
    /// Relabel-count summary.
    pub relabels: RowStats,
    /// Wall-clock summary (measured tail).
    pub wall_ns: Option<RowStats>,
    /// Workspace high-water-mark summary in bytes (measured tail).
    pub mem_hw: Option<RowStats>,
}

/// A campaign row of either phase.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignRow {
    /// An elect-phase row.
    Elect(ElectRow),
    /// A classify-phase row.
    Classify(ClassifyRow),
}

impl CampaignRow {
    /// Renders the pinned JSONL form, byte for byte.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(512);
        match self {
            CampaignRow::Elect(r) => {
                out.push_str(&format!(
                    "{{\"phase\":\"elect\",\
                     \"family\":\"{}\",\"tags\":\"{}\",\"n\":{},\"span\":{},\"model\":\"{}\",\
                     \"runs\":{},\"feasible\":{},\"elected\":{},\"aborted\":{}",
                    r.family,
                    r.tags,
                    r.n,
                    r.span,
                    r.model,
                    r.runs,
                    r.feasible,
                    r.elected,
                    r.aborted,
                ));
                for (key, stats) in [
                    ("rounds", &r.rounds),
                    ("transmissions", &r.transmissions),
                    ("stepped", &r.stepped),
                    ("leapt", &r.leapt),
                ] {
                    out.push_str(&format!(",\"{key}\":"));
                    stats.render(&mut out);
                }
                if let Some(wall) = &r.wall_ns {
                    out.push_str(",\"wall_ns\":");
                    wall.render(&mut out);
                    if let Some(hits) = r.cache_hits {
                        out.push_str(&format!(",\"cache_hits\":{hits}"));
                        if let Some(misses) = r.cache_misses {
                            out.push_str(&format!(",\"cache_misses\":{misses}"));
                            if let Some(mem) = &r.mem_hw {
                                out.push_str(",\"mem_hw\":");
                                mem.render(&mut out);
                            }
                        }
                    }
                }
            }
            CampaignRow::Classify(r) => {
                out.push_str(&format!(
                    "{{\"phase\":\"classify\",\
                     \"family\":\"{}\",\"tags\":\"{}\",\"n\":{},\"span\":{},\
                     \"runs\":{},\"feasible\":{}",
                    r.family, r.tags, r.n, r.span, r.runs, r.feasible,
                ));
                for (key, stats) in [
                    ("iterations", &r.iterations),
                    ("classes", &r.classes),
                    ("relabels", &r.relabels),
                ] {
                    out.push_str(&format!(",\"{key}\":"));
                    stats.render(&mut out);
                }
                if let Some(wall) = &r.wall_ns {
                    out.push_str(",\"wall_ns\":");
                    wall.render(&mut out);
                    if let Some(mem) = &r.mem_hw {
                        out.push_str(",\"mem_hw\":");
                        mem.render(&mut out);
                    }
                }
            }
        }
        out.push('}');
        out
    }

    /// Parses one JSONL row produced by [`to_jsonl`](Self::to_jsonl) (or
    /// any prior schema version — the measured tail may be any prefix).
    /// The parser is exact, not lenient: field order, spelling, and the
    /// absence of whitespace are all enforced, matching the contract
    /// `radio-lint schema` checks.
    pub fn parse_jsonl(line: &str) -> Result<CampaignRow, RowError> {
        let mut c = Cursor::new(line);
        c.expect("{\"phase\":\"")?;
        let phase = c.string_until_quote()?;
        let row = match phase.as_str() {
            "elect" => {
                c.expect(",\"family\":\"")?;
                let family = c.string_until_quote()?;
                c.expect(",\"tags\":\"")?;
                let tags = c.string_until_quote()?;
                c.expect(",\"n\":")?;
                let n = c.u64()?;
                c.expect(",\"span\":")?;
                let span = c.u64()?;
                c.expect(",\"model\":\"")?;
                let model = c.string_until_quote()?;
                c.expect(",\"runs\":")?;
                let runs = c.u64()?;
                c.expect(",\"feasible\":")?;
                let feasible = c.u64()?;
                c.expect(",\"elected\":")?;
                let elected = c.u64()?;
                c.expect(",\"aborted\":")?;
                let aborted = c.u64()?;
                c.expect(",\"rounds\":")?;
                let rounds = c.stats()?;
                c.expect(",\"transmissions\":")?;
                let transmissions = c.stats()?;
                c.expect(",\"stepped\":")?;
                let stepped = c.stats()?;
                c.expect(",\"leapt\":")?;
                let leapt = c.stats()?;
                let mut row = ElectRow {
                    family,
                    tags,
                    n,
                    span,
                    model,
                    runs,
                    feasible,
                    elected,
                    aborted,
                    rounds,
                    transmissions,
                    stepped,
                    leapt,
                    wall_ns: None,
                    cache_hits: None,
                    cache_misses: None,
                    mem_hw: None,
                };
                if c.eat(",\"wall_ns\":") {
                    row.wall_ns = Some(c.stats()?);
                    if c.eat(",\"cache_hits\":") {
                        row.cache_hits = Some(c.u64()?);
                        if c.eat(",\"cache_misses\":") {
                            row.cache_misses = Some(c.u64()?);
                            if c.eat(",\"mem_hw\":") {
                                row.mem_hw = Some(c.stats()?);
                            }
                        }
                    }
                }
                CampaignRow::Elect(row)
            }
            "classify" => {
                c.expect(",\"family\":\"")?;
                let family = c.string_until_quote()?;
                c.expect(",\"tags\":\"")?;
                let tags = c.string_until_quote()?;
                c.expect(",\"n\":")?;
                let n = c.u64()?;
                c.expect(",\"span\":")?;
                let span = c.u64()?;
                c.expect(",\"runs\":")?;
                let runs = c.u64()?;
                c.expect(",\"feasible\":")?;
                let feasible = c.u64()?;
                c.expect(",\"iterations\":")?;
                let iterations = c.stats()?;
                c.expect(",\"classes\":")?;
                let classes = c.stats()?;
                c.expect(",\"relabels\":")?;
                let relabels = c.stats()?;
                let mut row = ClassifyRow {
                    family,
                    tags,
                    n,
                    span,
                    runs,
                    feasible,
                    iterations,
                    classes,
                    relabels,
                    wall_ns: None,
                    mem_hw: None,
                };
                if c.eat(",\"wall_ns\":") {
                    row.wall_ns = Some(c.stats()?);
                    if c.eat(",\"mem_hw\":") {
                        row.mem_hw = Some(c.stats()?);
                    }
                }
                CampaignRow::Classify(row)
            }
            other => return Err(RowError::new(format!("unknown phase {other:?}"))),
        };
        c.expect("}")?;
        c.end()?;
        Ok(row)
    }
}

/// Exact-match cursor over a JSONL row. No whitespace skipping: the
/// producer never emits any, and the schema contract forbids drift.
struct Cursor<'a> {
    rest: &'a str,
}

impl<'a> Cursor<'a> {
    fn new(s: &'a str) -> Self {
        Cursor { rest: s }
    }

    fn expect(&mut self, lit: &str) -> Result<(), RowError> {
        if let Some(rest) = self.rest.strip_prefix(lit) {
            self.rest = rest;
            Ok(())
        } else {
            let got: String = self.rest.chars().take(lit.len().max(12)).collect();
            Err(RowError::new(format!("expected {lit:?}, found {got:?}")))
        }
    }

    fn eat(&mut self, lit: &str) -> bool {
        if let Some(rest) = self.rest.strip_prefix(lit) {
            self.rest = rest;
            true
        } else {
            false
        }
    }

    fn end(&self) -> Result<(), RowError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(RowError::new(format!(
                "trailing content after row: {:?}",
                &self.rest[..self.rest.len().min(24)]
            )))
        }
    }

    /// Reads up to (and consumes) the closing quote. Axis labels never
    /// contain escapes, so a backslash is rejected rather than decoded.
    fn string_until_quote(&mut self) -> Result<String, RowError> {
        let close = self
            .rest
            .find('"')
            .ok_or_else(|| RowError::new("unterminated string"))?;
        let s = &self.rest[..close];
        if s.contains('\\') {
            return Err(RowError::new("escape sequences are not part of the schema"));
        }
        self.rest = &self.rest[close + 1..];
        Ok(s.to_string())
    }

    fn u64(&mut self) -> Result<u64, RowError> {
        let digits = self.rest.len()
            - self
                .rest
                .trim_start_matches(|c: char| c.is_ascii_digit())
                .len();
        if digits == 0 {
            return Err(RowError::new(format!(
                "expected an integer, found {:?}",
                &self.rest[..self.rest.len().min(12)]
            )));
        }
        let (num, rest) = self.rest.split_at(digits);
        self.rest = rest;
        num.parse()
            .map_err(|e| RowError::new(format!("integer {num:?}: {e}")))
    }

    /// A JSON number or `null` (rendered for non-finite floats). `null`
    /// parses to NaN, which renders back to `null` — exact round-trip.
    fn f64(&mut self) -> Result<f64, RowError> {
        if self.eat("null") {
            return Ok(f64::NAN);
        }
        let len = self.rest.len()
            - self
                .rest
                .trim_start_matches(|c: char| c.is_ascii_digit() || "+-.eE".contains(c))
                .len();
        if len == 0 {
            return Err(RowError::new(format!(
                "expected a number, found {:?}",
                &self.rest[..self.rest.len().min(12)]
            )));
        }
        let (num, rest) = self.rest.split_at(len);
        self.rest = rest;
        num.parse()
            .map_err(|e| RowError::new(format!("number {num:?}: {e}")))
    }

    fn stats(&mut self) -> Result<RowStats, RowError> {
        if self.eat("null") {
            return Ok(RowStats::Null);
        }
        self.expect("{\"count\":")?;
        let count = self.u64()?;
        self.expect(",\"mean\":")?;
        let mean = self.f64()?;
        self.expect(",\"min\":")?;
        let min = self.f64()?;
        self.expect(",\"max\":")?;
        let max = self.f64()?;
        self.expect(",\"p50\":")?;
        let p50 = self.f64()?;
        self.expect(",\"p95\":")?;
        let p95 = self.f64()?;
        self.expect("}")?;
        Ok(RowStats::Present {
            count,
            mean,
            min,
            max,
            p50,
            p95,
        })
    }
}

// ---------------------------------------------------------------------------
// Binary codec
// ---------------------------------------------------------------------------

/// True when `bytes` opens with the binary-row magic — the format sniff
/// used by `anon-radio rows convert` and `radio-lint schema`.
pub fn is_binary(bytes: &[u8]) -> bool {
    bytes.starts_with(&BINARY_MAGIC)
}

/// Encodes a full binary row file: header plus one length-prefixed
/// payload per row.
pub fn write_binary(rows: &[CampaignRow]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + rows.len() * 256);
    out.extend_from_slice(&BINARY_MAGIC);
    out.extend_from_slice(&BINARY_VERSION.to_le_bytes());
    for row in rows {
        let payload = encode_row(row);
        out.extend_from_slice(
            &u32::try_from(payload.len())
                .expect("row fits u32")
                .to_le_bytes(),
        );
        out.extend_from_slice(&payload);
    }
    out
}

/// Decodes a binary row file, rejecting bad magic, unknown versions,
/// truncation, and trailing garbage.
pub fn read_binary(bytes: &[u8]) -> Result<Vec<CampaignRow>, RowError> {
    if bytes.len() < 6 {
        return Err(RowError::new("file shorter than the 6-byte header"));
    }
    if !is_binary(bytes) {
        return Err(RowError::new(format!(
            "bad magic {:?} (expected {:?})",
            &bytes[..4],
            BINARY_MAGIC
        )));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != BINARY_VERSION {
        return Err(RowError::new(format!(
            "unsupported binary schema version {version} (reader supports {BINARY_VERSION})"
        )));
    }
    let mut rest = &bytes[6..];
    let mut rows = Vec::new();
    while !rest.is_empty() {
        if rest.len() < 4 {
            return Err(RowError::new("truncated row length prefix"));
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        rest = &rest[4..];
        if rest.len() < len {
            return Err(RowError::new(format!(
                "truncated row payload: declared {len} bytes, {} remain",
                rest.len()
            )));
        }
        let (payload, tail) = rest.split_at(len);
        rest = tail;
        let mut d = Decoder { rest: payload };
        rows.push(d.row()?);
        if !d.rest.is_empty() {
            return Err(RowError::new(format!(
                "{} stray bytes after a decoded row payload",
                d.rest.len()
            )));
        }
    }
    Ok(rows)
}

const PHASE_ELECT: u8 = 1;
const PHASE_CLASSIFY: u8 = 2;
const STATS_NULL: u8 = 0;
const STATS_PRESENT: u8 = 1;

fn encode_row(row: &CampaignRow) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    match row {
        CampaignRow::Elect(r) => {
            out.push(PHASE_ELECT);
            put_str(&mut out, &r.family);
            put_str(&mut out, &r.tags);
            put_u64(&mut out, r.n);
            put_u64(&mut out, r.span);
            put_str(&mut out, &r.model);
            for v in [r.runs, r.feasible, r.elected, r.aborted] {
                put_u64(&mut out, v);
            }
            for s in [&r.rounds, &r.transmissions, &r.stepped, &r.leapt] {
                put_stats(&mut out, s);
            }
            let tail_len = [
                r.wall_ns.is_some(),
                r.cache_hits.is_some(),
                r.cache_misses.is_some(),
                r.mem_hw.is_some(),
            ]
            .iter()
            .take_while(|p| **p)
            .count();
            out.push(tail_len as u8);
            if let Some(wall) = &r.wall_ns {
                put_stats(&mut out, wall);
            }
            if let Some(hits) = r.cache_hits {
                put_u64(&mut out, hits);
            }
            if let Some(misses) = r.cache_misses {
                put_u64(&mut out, misses);
            }
            if let Some(mem) = &r.mem_hw {
                put_stats(&mut out, mem);
            }
        }
        CampaignRow::Classify(r) => {
            out.push(PHASE_CLASSIFY);
            put_str(&mut out, &r.family);
            put_str(&mut out, &r.tags);
            put_u64(&mut out, r.n);
            put_u64(&mut out, r.span);
            put_u64(&mut out, r.runs);
            put_u64(&mut out, r.feasible);
            for s in [&r.iterations, &r.classes, &r.relabels] {
                put_stats(&mut out, s);
            }
            let tail_len = [r.wall_ns.is_some(), r.mem_hw.is_some()]
                .iter()
                .take_while(|p| **p)
                .count();
            out.push(tail_len as u8);
            if let Some(wall) = &r.wall_ns {
                put_stats(&mut out, wall);
            }
            if let Some(mem) = &r.mem_hw {
                put_stats(&mut out, mem);
            }
        }
    }
    out
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let len = u16::try_from(s.len()).expect("axis labels are short");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_stats(out: &mut Vec<u8>, s: &RowStats) {
    match s {
        RowStats::Null => out.push(STATS_NULL),
        RowStats::Present {
            count,
            mean,
            min,
            max,
            p50,
            p95,
        } => {
            out.push(STATS_PRESENT);
            put_u64(out, *count);
            for f in [mean, min, max, p50, p95] {
                out.extend_from_slice(&f.to_le_bytes());
            }
        }
    }
}

struct Decoder<'a> {
    rest: &'a [u8],
}

impl Decoder<'_> {
    fn take(&mut self, n: usize, what: &str) -> Result<&[u8], RowError> {
        if self.rest.len() < n {
            return Err(RowError::new(format!(
                "truncated {what}: needed {n} bytes, {} remain",
                self.rest.len()
            )));
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    fn u8(&mut self, what: &str) -> Result<u8, RowError> {
        Ok(self.take(1, what)?[0])
    }

    fn u64(&mut self, what: &str) -> Result<u64, RowError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn f64(&mut self, what: &str) -> Result<f64, RowError> {
        let b = self.take(8, what)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn str(&mut self, what: &str) -> Result<String, RowError> {
        let len = u16::from_le_bytes(self.take(2, what)?.try_into().expect("2 bytes")) as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| RowError::new(format!("{what} is not UTF-8: {e}")))
    }

    fn stats(&mut self, what: &str) -> Result<RowStats, RowError> {
        match self.u8(what)? {
            STATS_NULL => Ok(RowStats::Null),
            STATS_PRESENT => Ok(RowStats::Present {
                count: self.u64(what)?,
                mean: self.f64(what)?,
                min: self.f64(what)?,
                max: self.f64(what)?,
                p50: self.f64(what)?,
                p95: self.f64(what)?,
            }),
            tag => Err(RowError::new(format!("unknown stats tag {tag} in {what}"))),
        }
    }

    fn row(&mut self) -> Result<CampaignRow, RowError> {
        match self.u8("phase byte")? {
            PHASE_ELECT => {
                let family = self.str("family")?;
                let tags = self.str("tags")?;
                let n = self.u64("n")?;
                let span = self.u64("span")?;
                let model = self.str("model")?;
                let runs = self.u64("runs")?;
                let feasible = self.u64("feasible")?;
                let elected = self.u64("elected")?;
                let aborted = self.u64("aborted")?;
                let rounds = self.stats("rounds")?;
                let transmissions = self.stats("transmissions")?;
                let stepped = self.stats("stepped")?;
                let leapt = self.stats("leapt")?;
                let tail_len = self.u8("tail length")?;
                if tail_len > 4 {
                    return Err(RowError::new(format!(
                        "elect tail length {tail_len} exceeds the 4 defined tail fields"
                    )));
                }
                let wall_ns = (tail_len >= 1).then(|| self.stats("wall_ns")).transpose()?;
                let cache_hits = (tail_len >= 2)
                    .then(|| self.u64("cache_hits"))
                    .transpose()?;
                let cache_misses = (tail_len >= 3)
                    .then(|| self.u64("cache_misses"))
                    .transpose()?;
                let mem_hw = (tail_len >= 4).then(|| self.stats("mem_hw")).transpose()?;
                Ok(CampaignRow::Elect(ElectRow {
                    family,
                    tags,
                    n,
                    span,
                    model,
                    runs,
                    feasible,
                    elected,
                    aborted,
                    rounds,
                    transmissions,
                    stepped,
                    leapt,
                    wall_ns,
                    cache_hits,
                    cache_misses,
                    mem_hw,
                }))
            }
            PHASE_CLASSIFY => {
                let family = self.str("family")?;
                let tags = self.str("tags")?;
                let n = self.u64("n")?;
                let span = self.u64("span")?;
                let runs = self.u64("runs")?;
                let feasible = self.u64("feasible")?;
                let iterations = self.stats("iterations")?;
                let classes = self.stats("classes")?;
                let relabels = self.stats("relabels")?;
                let tail_len = self.u8("tail length")?;
                if tail_len > 2 {
                    return Err(RowError::new(format!(
                        "classify tail length {tail_len} exceeds the 2 defined tail fields"
                    )));
                }
                let wall_ns = (tail_len >= 1).then(|| self.stats("wall_ns")).transpose()?;
                let mem_hw = (tail_len >= 2).then(|| self.stats("mem_hw")).transpose()?;
                Ok(CampaignRow::Classify(ClassifyRow {
                    family,
                    tags,
                    n,
                    span,
                    runs,
                    feasible,
                    iterations,
                    classes,
                    relabels,
                    wall_ns,
                    mem_hw,
                }))
            }
            byte => Err(RowError::new(format!("unknown phase byte {byte}"))),
        }
    }
}

/// Converts JSONL text to a binary row file (exact inverse of
/// [`binary_to_jsonl`]). Blank lines are skipped.
pub fn jsonl_to_binary(text: &str) -> Result<Vec<u8>, RowError> {
    let rows: Vec<CampaignRow> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(CampaignRow::parse_jsonl)
        .collect::<Result<_, _>>()?;
    Ok(write_binary(&rows))
}

/// Converts a binary row file to JSONL text (one row per line, trailing
/// newline), the exact inverse of [`jsonl_to_binary`].
pub fn binary_to_jsonl(bytes: &[u8]) -> Result<String, RowError> {
    let rows = read_binary(bytes)?;
    let mut out = String::with_capacity(rows.len() * 256);
    for row in &rows {
        out.push_str(&row.to_jsonl());
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_elect(tail: bool) -> CampaignRow {
        CampaignRow::Elect(ElectRow {
            family: "gnp:0.25".into(),
            tags: "arith:2".into(),
            n: 1_000_000,
            span: 3,
            model: "no-collision-detection".into(),
            runs: 2,
            feasible: 2,
            elected: 2,
            aborted: 0,
            rounds: RowStats::Present {
                count: 2,
                mean: 13.5,
                min: 11.0,
                max: 15.0,
                p50: 15.0,
                p95: 15.0,
            },
            transmissions: RowStats::Null,
            stepped: RowStats::Present {
                count: 2,
                mean: 10.123456789012345,
                min: 9.0,
                max: 12.0,
                p50: 12.0,
                p95: 12.0,
            },
            leapt: RowStats::Null,
            wall_ns: tail.then_some(RowStats::Present {
                count: 2,
                mean: 1.25e9,
                min: 1.0e9,
                max: 1.5e9,
                p50: 1.5e9,
                p95: 1.5e9,
            }),
            cache_hits: tail.then_some(1),
            cache_misses: tail.then_some(1),
            mem_hw: tail.then_some(RowStats::Null),
        })
    }

    fn sample_classify() -> CampaignRow {
        CampaignRow::Classify(ClassifyRow {
            family: "star".into(),
            tags: "uniform".into(),
            n: 6,
            span: 3,
            runs: 2,
            feasible: 2,
            iterations: RowStats::Present {
                count: 2,
                mean: 1.0,
                min: 1.0,
                max: 1.0,
                p50: 1.0,
                p95: 1.0,
            },
            classes: RowStats::Null,
            relabels: RowStats::Present {
                count: 2,
                mean: 6.0,
                min: 6.0,
                max: 6.0,
                p50: 6.0,
                p95: 6.0,
            },
            wall_ns: Some(RowStats::Present {
                count: 2,
                mean: 42.0,
                min: 41.0,
                max: 43.0,
                p50: 43.0,
                p95: 43.0,
            }),
            mem_hw: Some(RowStats::Present {
                count: 2,
                mean: 65536.0,
                min: 65536.0,
                max: 65536.0,
                p50: 65536.0,
                p95: 65536.0,
            }),
        })
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        for row in [sample_elect(true), sample_elect(false), sample_classify()] {
            let line = row.to_jsonl();
            let parsed = CampaignRow::parse_jsonl(&line).expect("parses");
            assert_eq!(parsed.to_jsonl(), line);
        }
    }

    #[test]
    fn binary_round_trips_exactly() {
        let rows = vec![sample_elect(true), sample_elect(false), sample_classify()];
        let bytes = write_binary(&rows);
        assert!(is_binary(&bytes));
        let back = read_binary(&bytes).expect("decodes");
        assert_eq!(back, rows);
        // and through the text form: jsonl → binary → jsonl is identity
        let jsonl: String = rows.iter().map(|r| r.to_jsonl() + "\n").collect();
        let bin = jsonl_to_binary(&jsonl).expect("encodes");
        assert_eq!(binary_to_jsonl(&bin).expect("decodes"), jsonl);
    }

    #[test]
    fn parser_rejects_schema_drift() {
        // reordered field
        assert!(CampaignRow::parse_jsonl(
            "{\"phase\":\"elect\",\"tags\":\"uniform\",\"family\":\"path\"}"
        )
        .is_err());
        // whitespace is drift, not style
        let line = sample_classify().to_jsonl().replace(":", ": ");
        assert!(CampaignRow::parse_jsonl(&line).is_err());
        // truncated tail mid-object
        let line = sample_elect(true).to_jsonl();
        assert!(CampaignRow::parse_jsonl(&line[..line.len() - 2]).is_err());
        // unknown phase
        assert!(CampaignRow::parse_jsonl("{\"phase\":\"audit\"}").is_err());
    }

    #[test]
    fn binary_reader_rejects_corruption() {
        let good = write_binary(&[sample_classify()]);
        // bad magic
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(read_binary(&bad).is_err());
        // unsupported version
        let mut bad = good.clone();
        bad[4] = 99;
        assert!(read_binary(&bad).is_err());
        // truncated payload
        assert!(read_binary(&good[..good.len() - 3]).is_err());
        // truncated header
        assert!(read_binary(&good[..5]).is_err());
        // declared length longer than file
        let mut bad = good.clone();
        bad[6] = 0xFF;
        bad[7] = 0xFF;
        assert!(read_binary(&bad).is_err());
    }

    #[test]
    fn non_finite_floats_render_as_null_and_round_trip() {
        let row = CampaignRow::Classify(match sample_classify() {
            CampaignRow::Classify(mut r) => {
                r.wall_ns = Some(RowStats::Present {
                    count: 1,
                    mean: f64::NAN,
                    min: 0.0,
                    max: 0.0,
                    p50: 0.0,
                    p95: 0.0,
                });
                r.mem_hw = None;
                r
            }
            _ => unreachable!(),
        });
        let line = row.to_jsonl();
        assert!(line.contains("\"mean\":null"));
        let parsed = CampaignRow::parse_jsonl(&line).expect("parses");
        assert_eq!(parsed.to_jsonl(), line);
        // binary carries the NaN bits; jsonl render collapses back to null
        let back = read_binary(&write_binary(&[row])).expect("decodes");
        assert_eq!(back[0].to_jsonl(), line);
    }
}
