//! `anon-radio serve` — the resident election service (ROADMAP item 1).
//!
//! The reuse machinery of the campaign layer — warm [`SimWorkspace`]s,
//! warm [`ClassifierWorkspace`]s, the process-wide [`ScheduleCache`] —
//! only pays off when workers survive across requests. This module is the
//! long-running process that makes that true: a supervised daemon
//! accepting **jobs** over a line-delimited JSON protocol and streaming
//! one **reply** line back per job.
//!
//! # Protocol
//!
//! Every request is one line holding one flat JSON object; every reply is
//! one line holding one flat JSON object (`campaign-cell` replies embed
//! the nested row object). Requests are answered **in submission order**
//! per connection, whatever order the worker pool finishes them in.
//!
//! ```text
//! {"op":"elect","id":1,"family":"path","n":8,"span":4,"seed":42,"model":"no-cd"}
//! {"op":"classify","id":2,"family":"star","n":6,"span":3,"seed":7}
//! {"op":"campaign-cell","id":3,"phase":"elect","family":"path","n":8,"span":4,"reps":3,"seed":9}
//! {"op":"shutdown"}
//! ```
//!
//! * `op` (required): `elect`, `classify`, `campaign-cell`, `shutdown`.
//! * `id` (optional, unsigned): echoed verbatim in the reply; defaults to
//!   the connection-local sequence number.
//! * `elect`/`classify` name a configuration either **drawn** — `family`
//!   (a [`FamilySpec`] string) with optional `n` (default 8), `span`
//!   (default 4), `tags` (a [`TagStrategy`], default `uniform`), `seed`
//!   (default the root seed) — or **inline** via `config` holding a
//!   `radio-graph` text-format document. The drawn route uses exactly the
//!   `elect --family` derivation streams (`derive(seed, "graph")` /
//!   `derive(seed, "tags")`), so a served reply is bit-identical to the
//!   one-shot CLI on the same spec.
//! * `elect` additionally takes `model` (default `no-cd`), and the
//!   per-job deadline knobs `max_rounds` (unsigned; the existing
//!   [`RunOpts::max_rounds`] plumbing) and `no_leap` (bool).
//! * `campaign-cell` takes `phase` (default `elect`), `family` (required),
//!   `n`/`span`/`tags`/`seed`, `reps` (default 1), and for the elect
//!   phase `model`/`max_rounds`/`no_leap`. It executes one grid cell
//!   through [`run_cell`] — positional seeds, same as a full `campaign`
//!   over the single-cell spec — and embeds the cell's row (the PR 6/PR 9
//!   row schema, full measured tail) under `"row"`.
//! * Unknown fields, unknown ops, type mismatches, and malformed JSON are
//!   answered with a structured error reply — never by closing the
//!   connection.
//!
//! Replies: `{"ok":true,"id":…,"op":…,…}` on success — elect replies
//! carry the election report plus the cache verdict for *this* job
//! (`"cache":"exact-hit"|"canonical-hit"|"miss"|"off"`) and the shared
//! cache's cumulative `cache_hits`/`cache_misses` counters — or
//! `{"ok":false,"id":…,"error":…,"message":…}` with `error` one of
//! `bad-request` (unparseable or invalid job), `deadline` (the round
//! budget ran out; [`ElectError::RoundLimit`]), `election` (contract or
//! prediction violation), `shutting-down`, or `internal` (a worker
//! panicked; the job's reply reports it and the worker rebuilds its
//! workspace — a panic never takes down the daemon).
//!
//! # Supervision
//!
//! One **bounded** job queue ([`std::sync::mpsc::sync_channel`], capacity
//! [`ServeOptions::queue`]) provides backpressure: readers block instead
//! of buffering unbounded work. A fixed pool of long-lived workers
//! ([`ServeOptions::threads`]) each owns a warm [`CampaignWorkspace`]
//! wired to one shared [`ScheduleCache`]; a per-connection writer thread
//! reorders replies into submission order and treats write failures
//! (client gone, broken pipe) as *per-connection* events — it keeps
//! draining and discarding so workers never block on a dead client, and
//! the process never exits on EPIPE. `{"op":"shutdown"}` (or EOF on
//! stdin) stops intake, drains every queued job, emits the shutdown ack
//! last, then joins workers.
//!
//! [`SimWorkspace`]: radio_sim::SimWorkspace
//! [`ClassifierWorkspace`]: radio_classifier::ClassifierWorkspace
//! [`ElectError::RoundLimit`]: crate::api::ElectError::RoundLimit

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::{mpsc, Arc, Mutex};

use radio_graph::Configuration;
use radio_sim::{ModelKind, RunOpts};
use radio_util::rng::{derive, rng_from, DEFAULT_ROOT_SEED};

use crate::api::ElectError;
use crate::cache::{CacheConfig, CacheLookup, ScheduleCache};
use crate::campaign::{
    cell_row, run_cell, BatchConfig, CampaignSpec, CampaignWorkspace, FamilySpec, Phase,
    TagStrategy,
};
use crate::dedicated::CompiledElection;

/// Supervisor knobs for a serve session or daemon.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads, each owning one warm [`CampaignWorkspace`]
    /// (clamped to ≥ 1). The CLI defaults this to
    /// [`radio_sim::parallel::default_threads`].
    pub threads: usize,
    /// Bounded job-queue capacity (clamped to ≥ 1): readers block once
    /// this many jobs are in flight — backpressure instead of unbounded
    /// buffering.
    pub queue: usize,
    /// Schedule-cache policy for the process-wide cache every worker
    /// shares ([`CacheConfig::disabled`] runs uncached).
    pub cache: CacheConfig,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            threads: 4,
            queue: 16,
            cache: CacheConfig::default(),
        }
    }
}

/// What one connection did, reported when it ends.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionSummary {
    /// Reply lines produced (jobs executed + parse-error replies + the
    /// shutdown ack).
    pub jobs: u64,
    /// Replies actually written to the client.
    pub answered: u64,
    /// Replies discarded because the client was gone (write failure) —
    /// per-connection failures, never process exits.
    pub dropped: u64,
    /// The session ended on `{"op":"shutdown"}` (as opposed to EOF).
    pub shutdown: bool,
}

// ---------------------------------------------------------------------------
// Request grammar
// ---------------------------------------------------------------------------

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Client-chosen correlation id (echoed in the reply; defaults to the
    /// connection-local sequence number when absent).
    pub id: Option<u64>,
    /// The work itself.
    pub kind: JobKind,
}

/// The operation a request names.
#[derive(Debug, Clone, PartialEq)]
pub enum JobKind {
    /// Full election pipeline on one configuration.
    Elect(OneShotJob),
    /// Decision phase only on one configuration.
    Classify(OneShotJob),
    /// One campaign grid cell (`reps` positional runs, one row back).
    CampaignCell(CellJob),
    /// Stop intake, drain the queue, join workers.
    Shutdown,
}

/// Where an `elect`/`classify` job's configuration comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigSource {
    /// A `radio-graph` text-format document sent inline.
    Inline(String),
    /// Drawn from a scenario spec with the `elect --family` derivation
    /// streams.
    Drawn {
        /// Graph family.
        family: FamilySpec,
        /// Node count.
        n: usize,
        /// Tag span σ.
        span: u64,
        /// Tag-placement strategy.
        tags: TagStrategy,
        /// Root seed of the draw.
        seed: u64,
    },
}

/// An `elect` or `classify` request.
#[derive(Debug, Clone, PartialEq)]
pub struct OneShotJob {
    /// The configuration to run on.
    pub source: ConfigSource,
    /// Channel model (elect only; always the default for classify).
    pub model: ModelKind,
    /// Per-job deadline: round budget override (elect only).
    pub max_rounds: Option<u64>,
    /// Disable the time-leap scheduler (elect only).
    pub no_leap: bool,
}

/// A `campaign-cell` request: one grid cell, `reps` positional runs.
#[derive(Debug, Clone, PartialEq)]
pub struct CellJob {
    /// Which pipeline stage each run executes.
    pub phase: Phase,
    /// Graph family (required — positional seeding needs the spec).
    pub family: FamilySpec,
    /// Node count.
    pub n: usize,
    /// Tag span σ.
    pub span: u64,
    /// Tag-placement strategy.
    pub tags: TagStrategy,
    /// Channel model (elect phase only).
    pub model: ModelKind,
    /// Runs in the cell.
    pub reps: usize,
    /// Campaign root seed.
    pub seed: u64,
    /// Per-job deadline: round budget override.
    pub max_rounds: Option<u64>,
    /// Disable the time-leap scheduler.
    pub no_leap: bool,
}

fn run_opts(max_rounds: Option<u64>, no_leap: bool) -> RunOpts {
    let mut opts = if no_leap {
        RunOpts::default().no_leap()
    } else {
        RunOpts::default()
    };
    if let Some(budget) = max_rounds {
        opts.max_rounds = budget;
    }
    opts
}

/// A request that failed to parse — carries the `id` when one was
/// readable, so even a rejected job's error reply correlates.
#[derive(Debug, Clone, PartialEq)]
pub struct JobParseError {
    /// The request's `id` field, when the line parsed far enough to have
    /// one.
    pub id: Option<u64>,
    /// What was wrong.
    pub message: String,
}

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    UInt(u64),
    Bool(bool),
    Null,
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::UInt(_) => "unsigned integer",
            Value::Bool(_) => "boolean",
            Value::Null => "null",
        }
    }
}

/// Byte scanner for the flat-object request grammar (strings, unsigned
/// integers, booleans, null — nothing nested, nothing signed or
/// fractional).
struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(line: &'a str) -> Scanner<'a> {
        Scanner {
            bytes: line.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, want: u8) -> Result<(), String> {
        match self.peek() {
            Some(b) if b == want => {
                self.pos += 1;
                Ok(())
            }
            Some(b) => Err(format!(
                "expected `{}` at byte {}, found `{}`",
                want as char, self.pos, b as char
            )),
            None => Err(format!("expected `{}` but the line ended", want as char)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or(format!("\\u{hex} is not a scalar value"))?,
                            );
                        }
                        other => return Err(format!("unknown escape `\\{}`", other as char)),
                    }
                }
                _ => {
                    // Continuation bytes of multi-byte characters ride
                    // along: the line is valid UTF-8 (it came in as &str)
                    // and escapes are ASCII, so byte-wise copying is safe.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while self.bytes.get(end).is_some_and(|&b| b >= 0x80) {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| "invalid UTF-8 in string")?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b) if b.is_ascii_digit() => {
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
                    self.pos += 1;
                }
                match self.bytes.get(self.pos) {
                    Some(b'.') | Some(b'e') | Some(b'E') => {
                        Err("numbers must be unsigned integers".to_string())
                    }
                    _ => std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("digits are ASCII")
                        .parse::<u64>()
                        .map(Value::UInt)
                        .map_err(|e| format!("bad integer: {e}")),
                }
            }
            Some(b'-') => Err("numbers must be unsigned integers".to_string()),
            Some(b'{') | Some(b'[') => {
                Err("nested objects/arrays are not part of the job grammar".to_string())
            }
            Some(b) => Err(format!("unexpected `{}` where a value belongs", b as char)),
            None => Err("line ended where a value belongs".to_string()),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected `{word}`"))
        }
    }

    fn done(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!(
                "trailing content after the object at byte {}",
                self.pos
            ))
        }
    }
}

/// `{"k":v,…}` → ordered `(key, value)` pairs.
fn parse_object(line: &str) -> Result<Vec<(String, Value)>, String> {
    let mut s = Scanner::new(line);
    s.eat(b'{')?;
    let mut fields = Vec::new();
    if s.peek() == Some(b'}') {
        s.pos += 1;
        s.done()?;
        return Ok(fields);
    }
    loop {
        let key = s.string()?;
        s.eat(b':')?;
        let value = s.value()?;
        if fields.iter().any(|(k, _)| *k == key) {
            return Err(format!("duplicate field \"{key}\""));
        }
        fields.push((key, value));
        match s.peek() {
            Some(b',') => s.pos += 1,
            Some(b'}') => {
                s.pos += 1;
                s.done()?;
                return Ok(fields);
            }
            _ => return Err("expected `,` or `}` after a field".to_string()),
        }
    }
}

struct Fields(Vec<(String, Value)>);

impl Fields {
    fn take(&mut self, name: &str) -> Option<Value> {
        let idx = self.0.iter().position(|(k, _)| k == name)?;
        Some(self.0.remove(idx).1)
    }

    fn take_u64(&mut self, name: &str) -> Result<Option<u64>, String> {
        match self.take(name) {
            None => Ok(None),
            Some(Value::UInt(v)) => Ok(Some(v)),
            Some(other) => Err(format!(
                "\"{name}\" must be an unsigned integer, got {}",
                other.type_name()
            )),
        }
    }

    fn take_str(&mut self, name: &str) -> Result<Option<String>, String> {
        match self.take(name) {
            None => Ok(None),
            Some(Value::Str(v)) => Ok(Some(v)),
            Some(other) => Err(format!(
                "\"{name}\" must be a string, got {}",
                other.type_name()
            )),
        }
    }

    fn take_bool(&mut self, name: &str) -> Result<bool, String> {
        match self.take(name) {
            None => Ok(false),
            Some(Value::Bool(v)) => Ok(v),
            Some(other) => Err(format!(
                "\"{name}\" must be a boolean, got {}",
                other.type_name()
            )),
        }
    }

    fn reject_leftovers(&self, op: &str) -> Result<(), String> {
        match self.0.first() {
            None => Ok(()),
            Some((name, _)) => Err(format!("\"{name}\" is not a field of \"{op}\" jobs")),
        }
    }
}

impl JobRequest {
    /// Parses one request line. Errors carry the request's `id` whenever
    /// the line parsed far enough to expose one, so the error reply still
    /// correlates.
    pub fn parse(line: &str) -> Result<JobRequest, JobParseError> {
        let mut fields =
            Fields(parse_object(line).map_err(|message| JobParseError { id: None, message })?);
        let id = fields
            .take_u64("id")
            .map_err(|message| JobParseError { id: None, message })?;
        let fail = |message: String| JobParseError { id, message };
        let op = fields
            .take_str("op")
            .map_err(&fail)?
            .ok_or_else(|| fail("every job needs an \"op\" field".to_string()))?;
        let kind = match op.as_str() {
            "elect" => JobKind::Elect(OneShotJob::from_fields(&mut fields, true).map_err(&fail)?),
            "classify" => {
                JobKind::Classify(OneShotJob::from_fields(&mut fields, false).map_err(&fail)?)
            }
            "campaign-cell" => {
                JobKind::CampaignCell(CellJob::from_fields(&mut fields).map_err(&fail)?)
            }
            "shutdown" => JobKind::Shutdown,
            other => {
                return Err(fail(format!(
                    "unknown op \"{other}\" (expected elect, classify, campaign-cell, or \
                     shutdown)"
                )))
            }
        };
        fields.reject_leftovers(&op).map_err(&fail)?;
        Ok(JobRequest { id, kind })
    }
}

impl OneShotJob {
    fn from_fields(fields: &mut Fields, is_elect: bool) -> Result<OneShotJob, String> {
        let source = ConfigSource::from_fields(fields)?;
        let (model, max_rounds, no_leap) = if is_elect {
            (
                parse_model(fields.take_str("model")?)?,
                fields.take_u64("max_rounds")?,
                fields.take_bool("no_leap")?,
            )
        } else {
            for knob in ["model", "max_rounds", "no_leap"] {
                if fields.take(knob).is_some() {
                    return Err(format!(
                        "\"{knob}\" does not apply to \"classify\" jobs (no simulation runs)"
                    ));
                }
            }
            (ModelKind::default(), None, false)
        };
        Ok(OneShotJob {
            source,
            model,
            max_rounds,
            no_leap,
        })
    }

    /// Builds the configuration — inline text or the `elect --family`
    /// derivation streams.
    pub fn configuration(&self) -> Result<Configuration, String> {
        match &self.source {
            ConfigSource::Inline(text) => {
                radio_graph::io::from_text(text).map_err(|e| format!("invalid inline config: {e}"))
            }
            ConfigSource::Drawn {
                family,
                n,
                span,
                tags,
                seed,
            } => {
                let csr = family
                    .build_csr(*n, derive(*seed, "graph"))
                    .map_err(|e| e.to_string())?;
                let tag_values = tags.draw(*n, *span, &mut rng_from(derive(*seed, "tags")));
                Configuration::from_csr(csr, tag_values).map_err(|e| {
                    format!("{family} with {tags} tags is not a valid configuration: {e}")
                })
            }
        }
    }
}

impl ConfigSource {
    fn from_fields(fields: &mut Fields) -> Result<ConfigSource, String> {
        if let Some(text) = fields.take_str("config")? {
            for drawn in ["family", "n", "span", "tags", "seed"] {
                if fields.take(drawn).is_some() {
                    return Err(format!(
                        "\"config\" is self-contained — it cannot combine with \"{drawn}\""
                    ));
                }
            }
            return Ok(ConfigSource::Inline(text));
        }
        let family = fields
            .take_str("family")?
            .ok_or("jobs need a \"family\" spec (or an inline \"config\")")?
            .parse::<FamilySpec>()?;
        Ok(ConfigSource::Drawn {
            family,
            n: fields.take_u64("n")?.unwrap_or(8) as usize,
            span: fields.take_u64("span")?.unwrap_or(4),
            tags: parse_tags(fields.take_str("tags")?)?,
            seed: fields.take_u64("seed")?.unwrap_or(DEFAULT_ROOT_SEED),
        })
    }
}

impl CellJob {
    fn from_fields(fields: &mut Fields) -> Result<CellJob, String> {
        if fields.take("config").is_some() {
            return Err(
                "\"campaign-cell\" draws its configurations positionally from the spec — \
                 inline \"config\" does not apply"
                    .to_string(),
            );
        }
        let phase = match fields.take_str("phase")? {
            Some(p) => p.parse::<Phase>()?,
            None => Phase::Elect,
        };
        let model_field = fields.take_str("model")?;
        if phase == Phase::Classify && model_field.is_some() {
            return Err(
                "\"model\" does not apply to classify-phase cells (no simulation runs)".to_string(),
            );
        }
        Ok(CellJob {
            phase,
            family: fields
                .take_str("family")?
                .ok_or("\"campaign-cell\" jobs need a \"family\" spec")?
                .parse::<FamilySpec>()?,
            n: fields.take_u64("n")?.unwrap_or(8) as usize,
            span: fields.take_u64("span")?.unwrap_or(4),
            tags: parse_tags(fields.take_str("tags")?)?,
            model: parse_model(model_field)?,
            reps: fields.take_u64("reps")?.unwrap_or(1) as usize,
            seed: fields.take_u64("seed")?.unwrap_or(DEFAULT_ROOT_SEED),
            max_rounds: fields.take_u64("max_rounds")?,
            no_leap: fields.take_bool("no_leap")?,
        })
    }

    /// The single-cell [`CampaignSpec`] this job names. Runs route
    /// through the worker's shared cache when one is attached; the cache
    /// only ever changes the measured tail.
    pub fn spec(&self, cached: bool) -> CampaignSpec {
        CampaignSpec {
            phase: self.phase,
            families: vec![self.family],
            tags: vec![self.tags],
            sizes: vec![self.n],
            spans: vec![self.span],
            models: vec![self.model],
            reps: self.reps,
            seed: self.seed,
            opts: run_opts(self.max_rounds, self.no_leap),
            cache: if cached {
                CacheConfig::default()
            } else {
                CacheConfig::disabled()
            },
            batch: BatchConfig::disabled(),
        }
    }
}

fn parse_model(value: Option<String>) -> Result<ModelKind, String> {
    match value {
        Some(m) => m.parse(),
        None => Ok(ModelKind::default()),
    }
}

fn parse_tags(value: Option<String>) -> Result<TagStrategy, String> {
    match value {
        Some(t) => t.parse(),
        None => Ok(TagStrategy::Uniform),
    }
}

// ---------------------------------------------------------------------------
// Reply rendering
// ---------------------------------------------------------------------------

fn push_json_escaped(buf: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
}

struct Reply {
    buf: String,
}

impl Reply {
    fn ok(id: u64, op: &str) -> Reply {
        Reply {
            buf: format!("{{\"ok\":true,\"id\":{id},\"op\":\"{op}\""),
        }
    }

    fn u64(mut self, name: &str, value: u64) -> Reply {
        self.buf.push_str(&format!(",\"{name}\":{value}"));
        self
    }

    fn bool(mut self, name: &str, value: bool) -> Reply {
        self.buf.push_str(&format!(",\"{name}\":{value}"));
        self
    }

    fn str(mut self, name: &str, value: &str) -> Reply {
        self.buf.push_str(&format!(",\"{name}\":\""));
        push_json_escaped(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    /// Raw pre-rendered JSON (the embedded campaign row).
    fn raw(mut self, name: &str, json: &str) -> Reply {
        self.buf.push_str(&format!(",\"{name}\":{json}"));
        self
    }

    fn opt_u64(mut self, name: &str, value: Option<u64>) -> Reply {
        match value {
            Some(v) => self.buf.push_str(&format!(",\"{name}\":{v}")),
            None => self.buf.push_str(&format!(",\"{name}\":null")),
        }
        self
    }

    fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

fn error_reply(id: u64, code: &str, message: &str) -> String {
    let mut buf = format!("{{\"ok\":false,\"id\":{id},\"error\":\"{code}\",\"message\":\"");
    push_json_escaped(&mut buf, message);
    buf.push_str("\"}");
    buf
}

fn lookup_name(lookup: Option<CacheLookup>) -> &'static str {
    match lookup {
        None => "off",
        Some(CacheLookup::ExactHit) => "exact-hit",
        Some(CacheLookup::CanonicalHit) => "canonical-hit",
        Some(CacheLookup::Miss) => "miss",
    }
}

// ---------------------------------------------------------------------------
// Job execution (worker side)
// ---------------------------------------------------------------------------

fn compile_with_cache(
    ws: &mut CampaignWorkspace,
    config: &Configuration,
) -> (CompiledElection, Option<CacheLookup>) {
    match &ws.cache {
        Some(cache) => {
            let (compiled, lookup) = cache.compile_in(&mut ws.classifier, config);
            (compiled, Some(lookup))
        }
        None => (
            CompiledElection::compile_in(&mut ws.classifier, config),
            None,
        ),
    }
}

/// Appends the per-job cache verdict and the shared cache's cumulative
/// counters — the reply-visible form of the campaign rows' cache columns.
fn with_cache_fields(
    mut reply: Reply,
    ws: &CampaignWorkspace,
    lookup: Option<CacheLookup>,
) -> Reply {
    reply = reply.str("cache", lookup_name(lookup));
    if let Some(cache) = &ws.cache {
        let stats = cache.stats();
        reply = reply
            .u64("cache_hits", stats.hits)
            .u64("cache_misses", stats.misses);
    }
    reply
}

fn run_elect_job(ws: &mut CampaignWorkspace, job: &OneShotJob, id: u64) -> String {
    let config = match job.configuration() {
        Ok(config) => config,
        Err(msg) => return error_reply(id, "bad-request", &msg),
    };
    let (compiled, lookup) = compile_with_cache(ws, &config);
    if !compiled.feasible() {
        let reply = Reply::ok(id, "elect")
            .bool("feasible", false)
            .u64("iterations", compiled.summary().iterations as u64);
        return with_cache_fields(reply, ws, lookup).finish();
    }
    match compiled.run_in(
        &mut ws.sim,
        &config,
        job.model,
        run_opts(job.max_rounds, job.no_leap),
    ) {
        Ok(report) => {
            let reply = Reply::ok(id, "elect")
                .bool("feasible", true)
                .str("model", &job.model.to_string())
                .u64("leader", u64::from(report.leader))
                .u64("phases", report.phases as u64)
                .u64("rounds_local", report.rounds_local)
                .u64("completion_round", report.completion_round)
                .u64("transmissions", report.transmissions)
                .u64("rounds_stepped", report.rounds_stepped)
                .u64("rounds_leapt", report.rounds_leapt);
            with_cache_fields(reply, ws, lookup).finish()
        }
        Err(e @ ElectError::RoundLimit { .. }) => error_reply(id, "deadline", &e.to_string()),
        Err(e) => error_reply(id, "election", &e.to_string()),
    }
}

fn run_classify_job(ws: &mut CampaignWorkspace, job: &OneShotJob, id: u64) -> String {
    let config = match job.configuration() {
        Ok(config) => config,
        Err(msg) => return error_reply(id, "bad-request", &msg),
    };
    let summary = ws.classifier.summarize_in(&config);
    Reply::ok(id, "classify")
        .bool("feasible", summary.feasible)
        .u64("iterations", summary.iterations as u64)
        .u64("classes", u64::from(summary.num_classes))
        .opt_u64("leader", summary.leader.map(u64::from))
        .u64("relabels", summary.relabels)
        .finish()
}

fn run_cell_job(ws: &mut CampaignWorkspace, job: &CellJob, id: u64) -> String {
    let spec = job.spec(ws.cache.is_some());
    if let Err(msg) = spec.validate() {
        return error_reply(id, "bad-request", &msg);
    }
    let cells = spec.cells();
    debug_assert_eq!(cells.len(), 1, "single-value axes name one cell");
    let agg = run_cell(ws, &spec, &cells[0]);
    let row = cell_row(spec.phase, &cells[0], &agg);
    Reply::ok(id, "campaign-cell")
        .u64("reps", spec.reps as u64)
        .raw("row", &row.to_jsonl())
        .finish()
}

fn execute_job(ws: &mut CampaignWorkspace, id: u64, job: &JobKind) -> String {
    match job {
        JobKind::Elect(j) => run_elect_job(ws, j, id),
        JobKind::Classify(j) => run_classify_job(ws, j, id),
        JobKind::CampaignCell(j) => run_cell_job(ws, j, id),
        // Shutdown is intercepted by the reader; a worker never sees it.
        JobKind::Shutdown => error_reply(id, "internal", "shutdown reached a worker"),
    }
}

// ---------------------------------------------------------------------------
// Supervisor: queue, workers, ordered writer
// ---------------------------------------------------------------------------

struct Task {
    /// Connection-local submission index — the writer's ordering key.
    seq: u64,
    /// Effective correlation id (explicit `id` or `seq`).
    id: u64,
    job: JobKind,
    reply: Sender<(u64, String)>,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("opaque panic payload")
}

/// One long-lived worker: owns a warm [`CampaignWorkspace`] wired to the
/// shared cache, executes jobs until the queue closes. A panicking job is
/// answered with an `internal` error and the workspace is rebuilt — the
/// daemon survives.
fn worker_loop(jobs: &Mutex<Receiver<Task>>, cache: &Option<Arc<ScheduleCache>>) {
    let mut ws = CampaignWorkspace::with_cache(cache.clone());
    loop {
        let task = {
            let Ok(rx) = jobs.lock() else { return };
            match rx.recv() {
                Ok(task) => task,
                Err(_) => return, // queue closed: drain complete
            }
        };
        let line = match catch_unwind(AssertUnwindSafe(|| {
            execute_job(&mut ws, task.id, &task.job)
        })) {
            Ok(line) => line,
            Err(payload) => {
                // The workspace may be mid-mutation; discard it rather
                // than trust its invariants.
                ws = CampaignWorkspace::with_cache(cache.clone());
                error_reply(
                    task.id,
                    "internal",
                    &format!(
                        "job panicked ({}); worker workspace rebuilt",
                        panic_message(payload.as_ref())
                    ),
                )
            }
        };
        let _ = task.reply.send((task.seq, line));
    }
}

/// Reorders replies into submission order and writes one line each. A
/// write failure marks the client dead: the loop keeps draining (so
/// workers never block on a gone consumer) and counts drops. Returns
/// `(answered, dropped)`.
fn writer_loop<W: Write>(out: &mut W, replies: Receiver<(u64, String)>) -> (u64, u64) {
    let mut pending: BTreeMap<u64, String> = BTreeMap::new();
    let mut next = 0u64;
    let mut dead = false;
    let mut answered = 0u64;
    let mut dropped = 0u64;
    for (seq, line) in replies {
        pending.insert(seq, line);
        while let Some(line) = pending.remove(&next) {
            next += 1;
            if !dead {
                let wrote = out
                    .write_all(line.as_bytes())
                    .and_then(|()| out.write_all(b"\n"))
                    .and_then(|()| out.flush());
                match wrote {
                    Ok(()) => {
                        answered += 1;
                        continue;
                    }
                    Err(_) => dead = true, // broken pipe or peer gone
                }
            }
            dropped += 1;
        }
    }
    (answered, dropped)
}

/// Reads request lines, parses, and feeds the bounded queue (blocking on
/// a full queue — that *is* the backpressure). Parse failures are
/// answered directly with `bad-request` replies; `{"op":"shutdown"}`
/// acknowledges, raises the flag, and stops intake. Returns
/// `(reply_lines, saw_shutdown)`.
fn reader_loop<R: BufRead>(
    input: R,
    jobs: &SyncSender<Task>,
    replies: &Sender<(u64, String)>,
    shutdown: &AtomicBool,
) -> (u64, bool) {
    let mut seq = 0u64;
    let mut saw_shutdown = false;
    for line in input.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        if shutdown.load(Ordering::SeqCst) {
            // Another connection shut the daemon down; refuse new work
            // (structured, not a dropped connection) and stop reading.
            let _ = replies.send((
                seq,
                error_reply(seq, "shutting-down", "the daemon is draining; job refused"),
            ));
            seq += 1;
            break;
        }
        match JobRequest::parse(&line) {
            Ok(request) => {
                let id = request.id.unwrap_or(seq);
                if matches!(request.kind, JobKind::Shutdown) {
                    saw_shutdown = true;
                    shutdown.store(true, Ordering::SeqCst);
                    // The ack takes the highest sequence number, so the
                    // in-order writer emits it only after every earlier
                    // job has drained through the queue and workers.
                    let ack = Reply::ok(id, "shutdown").u64("jobs", seq).finish();
                    let _ = replies.send((seq, ack));
                    seq += 1;
                    break;
                }
                let task = Task {
                    seq,
                    id,
                    job: request.kind,
                    reply: replies.clone(),
                };
                if jobs.send(task).is_err() {
                    break; // worker pool gone — nothing can execute
                }
                seq += 1;
            }
            Err(e) => {
                let id = e.id.unwrap_or(seq);
                let _ = replies.send((seq, error_reply(id, "bad-request", &e.message)));
                seq += 1;
            }
        }
    }
    (seq, saw_shutdown)
}

fn make_cache(config: &CacheConfig) -> Option<Arc<ScheduleCache>> {
    config
        .enabled
        .then(|| Arc::new(ScheduleCache::new(config.capacity.max(1))))
}

/// Serves one connection's worth of jobs from `input` to `output` — the
/// `--stdin-stdout` mode, and the library surface the end-to-end tests
/// drive over in-memory streams. Spawns its own worker pool (each worker
/// a warm [`CampaignWorkspace`] on one shared [`ScheduleCache`]), reads
/// until EOF or `{"op":"shutdown"}`, drains every accepted job, writes
/// replies in submission order, and joins everything before returning.
pub fn serve_session<R, W>(input: R, output: &mut W, opts: &ServeOptions) -> SessionSummary
where
    R: BufRead,
    W: Write + Send,
{
    let cache = make_cache(&opts.cache);
    let (job_tx, job_rx) = mpsc::sync_channel::<Task>(opts.queue.max(1));
    let job_rx = Mutex::new(job_rx);
    let shutdown = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let job_rx = &job_rx;
        let cache = &cache;
        for _ in 0..opts.threads.max(1) {
            scope.spawn(move || worker_loop(job_rx, cache));
        }
        let (reply_tx, reply_rx) = mpsc::channel::<(u64, String)>();
        let writer = scope.spawn(move || writer_loop(output, reply_rx));
        let (jobs, saw_shutdown) = reader_loop(input, &job_tx, &reply_tx, &shutdown);
        // Closing the reply sender and the queue lets workers drain to
        // completion and the writer flush every reply, in that order —
        // the graceful-shutdown join.
        drop(reply_tx);
        drop(job_tx);
        let (answered, dropped) = writer.join().unwrap_or((0, 0));
        SessionSummary {
            jobs,
            answered,
            dropped,
            shutdown: saw_shutdown,
        }
    })
}

// ---------------------------------------------------------------------------
// Socket daemon (TCP / Unix)
// ---------------------------------------------------------------------------

/// A connection stream that can hand out an independently-owned read half
/// (`try_clone` on both socket types).
pub trait Splittable {
    /// The read half.
    type Reader: Read + Send;
    /// Clones out the read half.
    fn split(&self) -> std::io::Result<Self::Reader>;
}

impl Splittable for std::net::TcpStream {
    type Reader = std::net::TcpStream;
    fn split(&self) -> std::io::Result<std::net::TcpStream> {
        self.try_clone()
    }
}

#[cfg(unix)]
impl Splittable for std::os::unix::net::UnixStream {
    type Reader = std::os::unix::net::UnixStream;
    fn split(&self) -> std::io::Result<std::os::unix::net::UnixStream> {
        self.try_clone()
    }
}

enum Accept<S> {
    Conn(S),
    Idle,
    Fatal(std::io::Error),
}

/// Serves a pre-bound TCP listener until a client sends
/// `{"op":"shutdown"}`: one persistent worker pool (shared queue, shared
/// cache) across all connections, one reader + ordered-writer pair per
/// connection. Binding is the caller's job so tests can bind port 0 and
/// the CLI can report the address before handing over.
pub fn serve_tcp(listener: std::net::TcpListener, opts: &ServeOptions) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    serve_listener(opts, || match listener.accept() {
        Ok((stream, _)) => {
            // Connections block on reads; only the accept loop polls.
            let _ = stream.set_nonblocking(false);
            Accept::Conn(stream)
        }
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Accept::Idle,
        Err(e) => Accept::Fatal(e),
    })
}

/// [`serve_tcp`] over a Unix-domain socket listener.
#[cfg(unix)]
pub fn serve_unix(
    listener: std::os::unix::net::UnixListener,
    opts: &ServeOptions,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    serve_listener(opts, || match listener.accept() {
        Ok((stream, _)) => {
            let _ = stream.set_nonblocking(false);
            Accept::Conn(stream)
        }
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Accept::Idle,
        Err(e) => Accept::Fatal(e),
    })
}

fn serve_listener<S, A>(opts: &ServeOptions, mut accept: A) -> std::io::Result<()>
where
    S: Splittable + Write + Send,
    A: FnMut() -> Accept<S>,
{
    let cache = make_cache(&opts.cache);
    let (job_tx, job_rx) = mpsc::sync_channel::<Task>(opts.queue.max(1));
    let mut job_tx = Some(job_tx);
    let job_rx = Mutex::new(job_rx);
    let shutdown = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let job_rx = &job_rx;
        let cache = &cache;
        let shutdown = &shutdown;
        for _ in 0..opts.threads.max(1) {
            scope.spawn(move || worker_loop(job_rx, cache));
        }
        let result = loop {
            if shutdown.load(Ordering::SeqCst) {
                break Ok(());
            }
            match accept() {
                Accept::Conn(stream) => {
                    let Ok(read_half) = stream.split() else {
                        continue;
                    };
                    let jobs = job_tx.as_ref().expect("accept loop owns a sender").clone();
                    scope.spawn(move || {
                        let (reply_tx, reply_rx) = mpsc::channel::<(u64, String)>();
                        let writer = scope.spawn(move || {
                            let mut out = stream;
                            writer_loop(&mut out, reply_rx)
                        });
                        reader_loop(BufReader::new(read_half), &jobs, &reply_tx, shutdown);
                        drop(reply_tx);
                        drop(jobs);
                        let _ = writer.join();
                    });
                }
                Accept::Idle => std::thread::sleep(std::time::Duration::from_millis(20)),
                Accept::Fatal(e) => break Err(e),
            }
        };
        // Shutdown drain: dropping the queue sender lets workers finish
        // every queued job and exit; scope exit joins workers and any
        // still-open connection threads (which stop at their next line).
        job_tx.take();
        result
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(line: &str) -> JobRequest {
        JobRequest::parse(line).expect(line)
    }

    fn parse_err(line: &str) -> JobParseError {
        JobRequest::parse(line).expect_err(line)
    }

    #[test]
    fn parses_the_job_grammar() {
        let req = parse_ok(
            r#"{"op":"elect","id":7,"family":"path","n":6,"span":3,"tags":"uniform","seed":9,"model":"beep","max_rounds":100,"no_leap":true}"#,
        );
        assert_eq!(req.id, Some(7));
        let JobKind::Elect(job) = req.kind else {
            panic!("not elect")
        };
        assert_eq!(job.model, ModelKind::Beeping);
        assert_eq!(job.max_rounds, Some(100));
        assert!(job.no_leap);
        assert_eq!(
            job.source,
            ConfigSource::Drawn {
                family: FamilySpec::Path,
                n: 6,
                span: 3,
                tags: TagStrategy::Uniform,
                seed: 9
            }
        );

        let req = parse_ok(r#"{"op":"classify","family":"star"}"#);
        assert_eq!(req.id, None);
        assert!(matches!(req.kind, JobKind::Classify(_)));

        let req = parse_ok(r#"{"op":"campaign-cell","family":"path","reps":3,"phase":"classify"}"#);
        let JobKind::CampaignCell(cell) = req.kind else {
            panic!("not a cell")
        };
        assert_eq!(cell.phase, Phase::Classify);
        assert_eq!(cell.reps, 3);

        assert!(matches!(
            parse_ok(r#"{"op":"shutdown"}"#).kind,
            JobKind::Shutdown
        ));
    }

    #[test]
    fn inline_configs_parse_with_escapes() {
        let req = parse_ok(r#"{"op":"classify","config":"config 2 1\ntags 0 5\nedge 0 1\n"}"#);
        let JobKind::Classify(job) = req.kind else {
            panic!("not classify")
        };
        let config = job.configuration().expect("valid inline config");
        assert_eq!(config.size(), 2);
    }

    #[test]
    fn structured_errors_name_the_problem() {
        assert!(parse_err("not json").message.contains("expected `{`"));
        assert!(parse_err(r#"{"id":1}"#).message.contains("\"op\""));
        let e = parse_err(r#"{"op":"frobnicate","id":4}"#);
        assert_eq!(e.id, Some(4), "id survives an unknown op");
        assert!(e.message.contains("unknown op"));
        let e = parse_err(r#"{"op":"elect","id":5,"family":"path","bogus":1}"#);
        assert_eq!(e.id, Some(5));
        assert!(e.message.contains("\"bogus\""));
        assert!(parse_err(r#"{"op":"elect","family":"path","n":-3}"#)
            .message
            .contains("unsigned"));
        assert!(parse_err(r#"{"op":"elect"}"#)
            .message
            .contains("\"family\""));
        assert!(
            parse_err(r#"{"op":"classify","family":"path","model":"cd"}"#)
                .message
                .contains("does not apply")
        );
        assert!(parse_err(r#"{"op":"elect","config":"x","family":"path"}"#)
            .message
            .contains("self-contained"));
        assert!(parse_err(r#"{"op":"elect","op":"elect"}"#)
            .message
            .contains("duplicate"));
    }

    #[test]
    fn writer_reorders_replies_into_submission_order() {
        let (tx, rx) = mpsc::channel();
        tx.send((2, "two".to_string())).unwrap();
        tx.send((0, "zero".to_string())).unwrap();
        tx.send((1, "one".to_string())).unwrap();
        drop(tx);
        let mut out = Vec::new();
        let (answered, dropped) = writer_loop(&mut out, rx);
        assert_eq!(answered, 3);
        assert_eq!(dropped, 0);
        assert_eq!(String::from_utf8(out).unwrap(), "zero\none\ntwo\n");
    }

    /// A sink that fails after `live` writes — the gone-client stand-in.
    struct DyingSink {
        live: usize,
    }

    impl Write for DyingSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.live == 0 {
                return Err(std::io::Error::from(std::io::ErrorKind::BrokenPipe));
            }
            self.live -= 1;
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn writer_survives_a_broken_pipe_and_keeps_draining() {
        let (tx, rx) = mpsc::channel();
        for seq in 0..4u64 {
            tx.send((seq, format!("r{seq}"))).unwrap();
        }
        drop(tx);
        // 2 write calls per reply (payload + newline): one full reply
        // lands, the second reply's payload write breaks the pipe.
        let mut out = DyingSink { live: 3 };
        let (answered, dropped) = writer_loop(&mut out, rx);
        assert_eq!(answered, 1);
        assert_eq!(dropped, 3, "remaining replies drain as drops, no panic");
    }

    #[test]
    fn serve_session_answers_in_order_and_acks_shutdown_last() {
        let input = concat!(
            "{\"op\":\"classify\",\"id\":10,\"family\":\"star\",\"n\":6,\"span\":3}\n",
            "garbage\n",
            "{\"op\":\"elect\",\"id\":11,\"family\":\"path\",\"n\":6,\"span\":3}\n",
            "{\"op\":\"shutdown\",\"id\":99}\n",
            "{\"op\":\"elect\",\"id\":12,\"family\":\"path\"}\n",
        );
        let mut out = Vec::new();
        let summary = serve_session(
            input.as_bytes(),
            &mut out,
            &ServeOptions {
                threads: 3,
                queue: 2,
                cache: CacheConfig::default(),
            },
        );
        assert!(summary.shutdown);
        assert_eq!(summary.jobs, 4, "the post-shutdown line is never read");
        assert_eq!(summary.answered, 4);
        assert_eq!(summary.dropped, 0);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("{\"ok\":true,\"id\":10,\"op\":\"classify\""));
        assert!(lines[1].contains("\"error\":\"bad-request\""));
        assert!(lines[2].starts_with("{\"ok\":true,\"id\":11,\"op\":\"elect\""));
        assert!(
            lines[3].starts_with("{\"ok\":true,\"id\":99,\"op\":\"shutdown\""),
            "ack must come last: {}",
            lines[3]
        );
    }
}
