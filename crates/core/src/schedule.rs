//! The canonical schedule: phase geometry plus the hard-coded lists.
//!
//! The canonical DRIP (paper Section 3.3.1) is parameterized entirely by
//! the configuration-specific data compiled here:
//!
//! * the span `σ`,
//! * the lists `L_1 … L_{T+1}` ([`radio_classifier::CanonicalLists`]),
//! * the derived phase geometry: phase `P_j` (for `j ≤ T`) consists of
//!   `numClasses_j` transmission blocks of `2σ+1` rounds followed by `σ`
//!   listening rounds, so it ends at local round
//!   `r_j = r_{j-1} + numClasses_j·(2σ+1) + σ`, with `r_0 = 0`. Every node
//!   terminates in local round `r_T + 1`.
//!
//! The other half of this module is **phase matching**: the procedure by
//! which a node (or the decision function replaying a history) determines
//! its transmission block for phase `j` by comparing its recorded history
//! of phase `P_{j-1}` against the `L_j` entries. A history matches entry
//! `k = (oldClass_k, label_k)` iff the node transmitted in block
//! `oldClass_k` of the previous phase and the non-silent rounds of the
//! previous phase's block region are exactly the triples of `label_k`.

use std::sync::Arc;

use radio_classifier::{
    CanonicalLists, ClassifierWorkspace, ClassifySummary, Engine, Label, Level, ListEntry,
    ListsSink, Multi, Outcome, Triple,
};
use radio_graph::Configuration;

/// The complete dedicated knowledge of the canonical DRIP for one
/// configuration, plus derived geometry.
#[derive(Debug, Clone)]
pub struct CanonicalSchedule {
    /// Span of the configuration.
    pub sigma: u64,
    /// The compiled lists.
    pub lists: CanonicalLists,
    /// `phase_end[j]` = `r_j` for `j = 0..=T` (`phase_end[0] = 0`).
    pub phase_end: Vec<u64>,
    /// `phase_matchers[j-1]` = the [`MatchAutomaton`] over `L_{j+1}`'s
    /// entries, for `j = 1..T` — the matcher phase `j`'s observations are
    /// judged against. Phase `T`'s observations are judged against
    /// `final_matcher`.
    phase_matchers: Vec<MatchAutomaton>,
    /// Matcher over the final would-be list `L_{T+1}`'s entries.
    final_matcher: MatchAutomaton,
}

impl CanonicalSchedule {
    /// Runs `Classifier` (fast engine) and compiles the schedule. Works for
    /// infeasible configurations too — the canonical DRIP is well-defined
    /// there; only the leader class is absent.
    ///
    /// This eager form materializes the full [`Outcome`] (every
    /// iteration's labels and partition). Callers that only need the
    /// compiled algorithm — the election pipeline, batch sweeps — use
    /// [`CanonicalSchedule::build_in`], which streams the list entries
    /// straight out of a recycled classifier workspace instead.
    pub fn build(config: &Configuration) -> (Outcome, CanonicalSchedule) {
        let outcome = radio_classifier::classify(config);
        let schedule = CanonicalSchedule::from_outcome(config, &outcome);
        (outcome, schedule)
    }

    /// [`CanonicalSchedule::build`] through a caller-provided
    /// [`ClassifierWorkspace`]: the classifier runs incrementally on
    /// recycled buffers and the canonical lists are compiled *while it
    /// iterates* (via [`ListsSink`]) — per-representative entries only,
    /// never per-node records. Returns the lean [`ClassifySummary`] in
    /// place of the eager outcome. The compiled schedule is identical to
    /// [`CanonicalSchedule::build`]'s.
    pub fn build_in(
        workspace: &mut ClassifierWorkspace,
        config: &Configuration,
    ) -> (ClassifySummary, CanonicalSchedule) {
        let mut sink = ListsSink::default();
        let summary = workspace.classify_with_sink(config, Engine::Fast, &mut sink);
        let lists = sink.into_lists(config.span(), summary.leader_class);
        (summary, CanonicalSchedule::from_lists(lists))
    }

    /// Compiles the schedule from an existing classifier outcome.
    pub fn from_outcome(config: &Configuration, outcome: &Outcome) -> CanonicalSchedule {
        CanonicalSchedule::from_lists(CanonicalLists::from_outcome(config, outcome))
    }

    /// Derives the phase geometry from compiled lists — the single home of
    /// the `r_j = r_{j-1} + numClasses_j·(2σ+1) + σ` arithmetic.
    pub fn from_lists(lists: CanonicalLists) -> CanonicalSchedule {
        let sigma = lists.sigma;
        let mut phase_end = Vec::with_capacity(lists.phases() + 1);
        phase_end.push(0u64);
        for j in 1..=lists.phases() {
            let blocks = lists.level(j).num_blocks() as u64;
            let prev = *phase_end.last().expect("non-empty");
            phase_end.push(prev + blocks * (2 * sigma + 1) + sigma);
        }
        let mut phase_matchers = Vec::with_capacity(lists.phases().saturating_sub(1));
        for j in 2..=lists.phases() {
            let entries = match lists.level(j) {
                Level::Blocks(entries) => entries.as_slice(),
                Level::Terminate => unreachable!("levels 1..=T are block levels"),
            };
            phase_matchers.push(MatchAutomaton::compile(entries));
        }
        let final_matcher = MatchAutomaton::compile(&lists.final_entries);
        CanonicalSchedule {
            sigma,
            lists,
            phase_end,
            phase_matchers,
            final_matcher,
        }
    }

    /// Number of non-terminate phases `T`.
    pub fn phases(&self) -> usize {
        self.lists.phases()
    }

    /// `r_j`, the local round at which phase `j` ends (`r_0 = 0`).
    pub fn phase_end(&self, j: usize) -> u64 {
        self.phase_end[j]
    }

    /// The local round in which every node terminates: `r_T + 1`.
    pub fn done_local(&self) -> u64 {
        self.phase_end[self.phases()] + 1
    }

    /// Number of transmission blocks of phase `j`.
    pub fn blocks(&self, j: usize) -> u64 {
        self.lists.level(j).num_blocks() as u64
    }

    /// The local round within phase `j` at which a node assigned block
    /// `t_block` transmits: `r_{j-1} + (t_block−1)(2σ+1) + σ + 1`.
    pub fn transmit_round(&self, j: usize, t_block: u32) -> u64 {
        self.phase_end(j - 1) + (t_block as u64 - 1) * (2 * self.sigma + 1) + self.sigma + 1
    }

    /// Quiescence horizon of an on-schedule node (the
    /// [`DripNode::quiet_until`](radio_sim::DripNode::quiet_until)
    /// contract): given that the node is about to decide local round `i`,
    /// sits in phase `phase`, and has its transmission pinned at local
    /// round `transmit_at`, returns the next local round at which it may
    /// act — transmit, re-derive its block at a phase entry, or terminate.
    /// `None` when round `i` itself is such a round (no quiet claim).
    ///
    /// The schedule knows its entire transmission timetable, so within a
    /// phase the horizon is exact: the node's own `transmit_at` if still
    /// ahead, otherwise the first round of the next phase (where the block
    /// for that phase is re-derived from the just-recorded history).
    pub fn quiet_horizon(&self, i: u64, phase: usize, transmit_at: u64) -> Option<u64> {
        if i > self.phase_end(self.phases()) {
            return None; // terminates this round
        }
        if i > self.phase_end(phase) {
            return None; // phase-entry round: matching must run
        }
        let next_act = if transmit_at >= i {
            transmit_at
        } else {
            self.phase_end(phase) + 1
        };
        (next_act > i).then_some(next_act)
    }

    /// Extracts the triples a history realized during phase `j`'s block
    /// region: each non-silent entry at local round
    /// `t = r_{j-1} + (a−1)(2σ+1) + b` becomes `(a, b, c)` with `c = 1` for
    /// a message and `∗` for a collision. Rounds beyond the block region
    /// (the trailing `σ` listening rounds) are ignored, as in the paper.
    pub fn observed_triples(&self, history: radio_sim::HistoryView<'_>, j: usize) -> Vec<Triple> {
        let start = self.phase_end(j - 1); // r_{j-1}; phase rounds start at +1
        let width = 2 * self.sigma + 1;
        let block_region = self.blocks(j) * width;
        let mut triples = Vec::new();
        for off in 1..=block_region {
            let t = (start + off) as usize;
            let obs = match history.get(t) {
                Some(o) => o,
                None => break,
            };
            let c = match obs {
                radio_sim::Obs::Silence => continue,
                radio_sim::Obs::Heard(_) => Multi::One,
                // Noise only arises off-model; treat it like collision
                // noise for matching purposes (the node goes off-schedule
                // anyway on any foreign channel).
                radio_sim::Obs::Collision | radio_sim::Obs::Noise => Multi::Star,
            };
            let a = ((off - 1) / width + 1) as u32;
            let b = (off - 1) % width + 1;
            triples.push(Triple::new(a, b, c));
        }
        triples
    }

    /// Matches a node's phase-`(j-1)` history against the entries of
    /// `L_j`, given the block `prev_block` it transmitted in during phase
    /// `j-1`. Returns the 1-based index of the unique matching entry.
    ///
    /// `entries` is `L_j`'s entry list (or the final would-be list when the
    /// decision function resolves the leader class).
    pub fn match_entries(
        &self,
        history: radio_sim::HistoryView<'_>,
        j_prev: usize,
        prev_block: u32,
        entries: &[ListEntry],
    ) -> MatchResult {
        let observed = self.observed_triples(history, j_prev);
        let mut found: Option<u32> = None;
        for (idx, entry) in entries.iter().enumerate() {
            if entry.old_class != prev_block {
                continue;
            }
            if labels_equal(&observed, &entry.label) {
                match found {
                    None => found = Some(idx as u32 + 1),
                    Some(first) => {
                        return MatchResult::Ambiguous {
                            first,
                            second: idx as u32 + 1,
                        }
                    }
                }
            }
        }
        match found {
            Some(k) => MatchResult::Unique(k),
            None => MatchResult::NoMatch,
        }
    }

    /// The precompiled matcher that phase `j`'s observations are judged
    /// against at the phase boundary: `L_{j+1}`'s entries for `j < T`, the
    /// final would-be list for `j = T`. This is the streaming twin of
    /// [`CanonicalSchedule::match_entries`] — a node feeds its non-silent
    /// observations into a [`MatchCursor`] as they land and resolves at
    /// the boundary, never re-reading its history.
    pub fn matcher_after_phase(&self, j: usize) -> &MatchAutomaton {
        debug_assert!((1..=self.phases()).contains(&j));
        if j == self.phases() {
            &self.final_matcher
        } else {
            &self.phase_matchers[j - 1]
        }
    }
}

/// Result of matching a phase history against list entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchResult {
    /// Exactly one entry matched (the on-configuration guarantee of
    /// Lemma 3.8).
    Unique(u32),
    /// No entry matched — the node's history is off-schedule (running the
    /// dedicated algorithm on a foreign configuration).
    NoMatch,
    /// Two entries matched — impossible on-configuration; indicates a
    /// foreign configuration or a bug.
    Ambiguous {
        /// First matching entry (1-based).
        first: u32,
        /// Second matching entry (1-based).
        second: u32,
    },
}

/// A precompiled trie matcher over one entry list, the streaming
/// equivalent of [`CanonicalSchedule::match_entries`].
///
/// Entries sharing an `old_class` share a root; each root's trie follows
/// the entry labels triple by triple. Because
/// [`CanonicalSchedule::observed_triples`] emits a phase's non-silent
/// observations in ascending `(a, b)` order — exactly the ≺_hist order the
/// label triples are stored in — sequence equality against a label is a
/// root-to-leaf walk: advance the cursor once per observed triple, then
/// read the terminal entries at the final state. A node therefore needs
/// only a cursor (one `u32`) of per-phase match state instead of its
/// recorded history, which is what lets million-node elections run with
/// length-only histories.
#[derive(Debug, Clone, Default)]
pub struct MatchAutomaton {
    /// `roots[c]` = trie root for entries with `old_class == c`
    /// (`NO_STATE` when no entry has that class).
    roots: Vec<u32>,
    states: Vec<MatchState>,
}

#[derive(Debug, Clone, Default)]
struct MatchState {
    /// Outgoing transitions, sorted by triple (unique keys).
    children: Vec<(Triple, u32)>,
    /// 1-based indices of entries whose label ends at this state, in entry
    /// order.
    terminal: Vec<u32>,
}

/// Sentinel for "no such state": a dead cursor, or an absent root.
const NO_STATE: u32 = u32::MAX;

impl MatchAutomaton {
    /// Builds the trie over `entries` (each contributes one root-to-leaf
    /// path under its `old_class` root).
    pub fn compile(entries: &[ListEntry]) -> MatchAutomaton {
        let mut a = MatchAutomaton::default();
        for (idx, entry) in entries.iter().enumerate() {
            let c = entry.old_class as usize;
            if a.roots.len() <= c {
                a.roots.resize(c + 1, NO_STATE);
            }
            if a.roots[c] == NO_STATE {
                a.roots[c] = a.new_state();
            }
            let mut s = a.roots[c];
            for &t in entry.label.triples() {
                let pos = a.states[s as usize]
                    .children
                    .binary_search_by_key(&t, |&(k, _)| k);
                s = match pos {
                    Ok(i) => a.states[s as usize].children[i].1,
                    Err(i) => {
                        let next = a.new_state();
                        a.states[s as usize].children.insert(i, (t, next));
                        next
                    }
                };
            }
            a.states[s as usize].terminal.push(idx as u32 + 1);
        }
        a
    }

    fn new_state(&mut self) -> u32 {
        self.states.push(MatchState::default());
        (self.states.len() - 1) as u32
    }

    /// A cursor rooted at `old_class` — dead from the start when no entry
    /// has that class (the `prev_block` filter of
    /// [`CanonicalSchedule::match_entries`]).
    pub fn start(&self, old_class: u32) -> MatchCursor {
        let state = self
            .roots
            .get(old_class as usize)
            .copied()
            .unwrap_or(NO_STATE);
        MatchCursor { state }
    }
}

/// Incremental match state: one trie position (or dead). `Copy`, so a
/// node's entire per-phase match state is a single word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchCursor {
    state: u32,
}

impl MatchCursor {
    /// Feeds the next observed triple. A transition miss kills the cursor
    /// permanently (the observation sequence is not a prefix of any
    /// entry's label).
    #[inline]
    pub fn advance(&mut self, automaton: &MatchAutomaton, triple: Triple) {
        if self.state == NO_STATE {
            return;
        }
        let children = &automaton.states[self.state as usize].children;
        self.state = match children.binary_search_by_key(&triple, |&(k, _)| k) {
            Ok(i) => children[i].1,
            Err(_) => NO_STATE,
        };
    }

    /// Resolves the match at a phase boundary: the entries terminating at
    /// the current state, reported exactly like
    /// [`CanonicalSchedule::match_entries`].
    pub fn resolve(&self, automaton: &MatchAutomaton) -> MatchResult {
        if self.state == NO_STATE {
            return MatchResult::NoMatch;
        }
        match automaton.states[self.state as usize].terminal.as_slice() {
            [] => MatchResult::NoMatch,
            [k] => MatchResult::Unique(*k),
            [first, second, ..] => MatchResult::Ambiguous {
                first: *first,
                second: *second,
            },
        }
    }
}

fn labels_equal(observed: &[Triple], label: &Label) -> bool {
    // `observed` is produced in ascending (a, b) order and label triples
    // are ≺_hist-sorted with unique (a, b), so elementwise comparison is
    // exact set comparison.
    observed == label.triples()
}

impl CanonicalSchedule {
    /// Renders the compiled dedicated algorithm as human-readable text:
    /// the phase geometry, every list `L_j` with its entries, and the
    /// leader class — literally *the algorithm* the paper's Section 3.3.1
    /// hard-codes for this configuration.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "canonical DRIP: σ = {}, {} phase(s), every node terminates in local round {}",
            self.sigma,
            self.phases(),
            self.done_local()
        );
        for j in 1..=self.phases() {
            let blocks = self.blocks(j);
            let _ = writeln!(
                out,
                "phase P_{j}: local rounds {}..={} ({} block(s) of {} rounds + {} trailing)",
                self.phase_end(j - 1) + 1,
                self.phase_end(j),
                blocks,
                2 * self.sigma + 1,
                self.sigma
            );
            match self.lists.level(j) {
                radio_classifier::Level::Blocks(entries) => {
                    for (k, entry) in entries.iter().enumerate() {
                        let _ = writeln!(
                            out,
                            "  L_{j}[{}] = (oldClass {}, label {})  → transmit in local round {}",
                            k + 1,
                            entry.old_class,
                            entry.label,
                            self.transmit_round(j, k as u32 + 1)
                        );
                    }
                }
                radio_classifier::Level::Terminate => unreachable!("levels 1..=T are blocks"),
            }
        }
        let _ = writeln!(out, "L_{}: terminate", self.phases() + 1);
        match self.lists.leader_class {
            Some(m_hat) => {
                let _ = writeln!(
                    out,
                    "decision f: history landing in final class {m_hat} (of {}) elects itself",
                    self.lists.final_entries.len()
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "decision f: no leader class — configuration infeasible"
                );
            }
        }
        out
    }
}

/// Shared handle used by the factory and the decision function.
pub type SharedSchedule = Arc<CanonicalSchedule>;

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::families;
    use radio_sim::{History, Msg, Obs};

    fn h2_schedule() -> CanonicalSchedule {
        let c = families::h_m(2);
        CanonicalSchedule::build(&c).1
    }

    #[test]
    fn geometry_of_h_2() {
        // H_2: σ=3, T=1, one block in phase 1:
        // r_1 = 0 + 1·(2·3+1) + 3 = 10; done at 11.
        let s = h2_schedule();
        assert_eq!(s.sigma, 3);
        assert_eq!(s.phases(), 1);
        assert_eq!(s.phase_end(0), 0);
        assert_eq!(s.phase_end(1), 10);
        assert_eq!(s.done_local(), 11);
        assert_eq!(s.blocks(1), 1);
        // block 1 transmit: r_0 + 0 + σ + 1 = 4
        assert_eq!(s.transmit_round(1, 1), 4);
    }

    #[test]
    fn geometry_of_g_2() {
        // G_2: n=9, σ=1. Classifier needs 2 iterations; block counts are
        // 1 then numClasses after iter 1.
        let c = families::g_m(2);
        let (out, s) = CanonicalSchedule::build(&c);
        assert_eq!(s.phases(), out.iterations);
        assert_eq!(s.phase_end(0), 0);
        // phase 1: 1 block of 3 rounds + 1 trailing = 4
        assert_eq!(s.phase_end(1), 4);
        let blocks2 = out.records[0].partition.num_classes() as u64;
        assert_eq!(s.phase_end(2), 4 + blocks2 * 3 + 1);
    }

    #[test]
    fn observed_triples_extraction() {
        let s = h2_schedule(); // σ=3, width 7, 1 block in phase 1
                               // craft a history: wake at 0, then phase-1 rounds 1..=7 (block) and
                               // 8..=10 (trailing). Put a message at round 2 (b=2) and a collision
                               // at round 6 (b=6).
        let mut entries = vec![Obs::Silence]; // H[0]
        for t in 1..=10u64 {
            entries.push(match t {
                2 => Obs::Heard(Msg::ONE),
                6 => Obs::Collision,
                _ => Obs::Silence,
            });
        }
        let h = History::from_entries(entries);
        let observed = s.observed_triples(h.view(), 1);
        assert_eq!(
            observed,
            vec![
                Triple::new(1, 2, Multi::One),
                Triple::new(1, 6, Multi::Star)
            ]
        );
    }

    #[test]
    fn observed_triples_ignore_trailing_rounds() {
        let s = h2_schedule();
        let mut entries = vec![Obs::Silence];
        for t in 1..=10u64 {
            // message in trailing round 9 — outside the block region
            entries.push(if t == 9 {
                Obs::Heard(Msg::ONE)
            } else {
                Obs::Silence
            });
        }
        let h = History::from_entries(entries);
        assert!(s.observed_triples(h.view(), 1).is_empty());
    }

    #[test]
    fn matching_is_unique_on_configuration_histories() {
        // On H_2, node a's phase-1 history: hears b's transmission. b is in
        // class 2 → transmits in block... phase 1 has ONE block (all in
        // class 1 at phase 1), so a hears b at (1, σ+1+t_b−t_a = 2).
        let s = h2_schedule();
        let mut entries = vec![Obs::Silence];
        for t in 1..=10u64 {
            entries.push(if t == 2 {
                Obs::Heard(Msg::ONE)
            } else {
                Obs::Silence
            });
        }
        let h = History::from_entries(entries);
        let m = s.match_entries(h.view(), 1, 1, &s.lists.final_entries);
        assert_eq!(
            m,
            MatchResult::Unique(1),
            "node a's history must match final entry 1"
        );
    }

    #[test]
    fn render_shows_the_whole_algorithm() {
        let s = h2_schedule();
        let text = s.render();
        assert!(text.contains("σ = 3"));
        assert!(text.contains("phase P_1: local rounds 1..=10"));
        assert!(text.contains("L_1[1] = (oldClass 1, label null)"));
        assert!(text.contains("transmit in local round 4"));
        assert!(text.contains("L_2: terminate"));
        assert!(text.contains("final class 1"));
    }

    #[test]
    fn build_in_compiles_the_same_schedule_as_build() {
        use radio_util::rng::rng_from;
        let mut rng = rng_from(31);
        let mut ws = ClassifierWorkspace::new();
        let mut configs = vec![families::h_m(3), families::s_m(2), families::g_m(3)];
        for _ in 0..8 {
            let g = radio_graph::generators::gnp_connected(8, 0.35, &mut rng);
            configs.push(radio_graph::tags::random_in_span(g, 4, &mut rng));
        }
        for config in configs {
            let (outcome, eager) = CanonicalSchedule::build(&config);
            let (summary, streamed) = CanonicalSchedule::build_in(&mut ws, &config);
            assert_eq!(summary.feasible, outcome.feasible, "{config}");
            assert_eq!(summary.iterations, outcome.iterations, "{config}");
            assert_eq!(streamed.sigma, eager.sigma, "{config}");
            assert_eq!(streamed.phase_end, eager.phase_end, "{config}");
            assert_eq!(streamed.lists, eager.lists, "{config}");
        }
    }

    #[test]
    fn automaton_resolves_exactly_like_match_entries() {
        // On real canonical executions, a cursor fed the observed triples
        // of each phase must resolve to the same MatchResult as the
        // eager sequence comparison — for every node, every phase, and
        // the final would-be list, on feasible and infeasible configs.
        use crate::canonical::CanonicalFactory;
        use radio_sim::{Executor, RunOpts};
        use radio_util::rng::rng_from;
        use std::sync::Arc;
        let mut rng = rng_from(23);
        let mut configs = vec![
            families::h_m(3),
            families::g_m(3),
            families::s_m(2),
            families::h_m(1),
        ];
        for _ in 0..6 {
            let g = radio_graph::generators::gnp_connected(9, 0.35, &mut rng);
            configs.push(radio_graph::tags::random_in_span(g, 5, &mut rng));
        }
        for config in configs {
            let (_, s) = CanonicalSchedule::build(&config);
            let shared = Arc::new(s);
            let factory = CanonicalFactory::new(shared.clone());
            let ex = Executor::run(&config, &factory, RunOpts::default()).unwrap();
            let s = &*shared;
            for v in 0..config.size() as u32 {
                let h = ex.history(v).view();
                let mut t_block = 1u32;
                for j in 1..=s.phases() {
                    let entries = if j == s.phases() {
                        &s.lists.final_entries
                    } else {
                        match s.lists.level(j + 1) {
                            radio_classifier::Level::Blocks(e) => e,
                            radio_classifier::Level::Terminate => unreachable!(),
                        }
                    };
                    let expected = s.match_entries(h, j, t_block, entries);
                    let automaton = s.matcher_after_phase(j);
                    let mut cursor = automaton.start(t_block);
                    for triple in s.observed_triples(h, j) {
                        cursor.advance(automaton, triple);
                    }
                    assert_eq!(
                        cursor.resolve(automaton),
                        expected,
                        "{config}: node {v} phase {j}"
                    );
                    // a foreign previous block must miss in both
                    let mut foreign = automaton.start(u32::MAX - 1);
                    for triple in s.observed_triples(h, j) {
                        foreign.advance(automaton, triple);
                    }
                    assert_eq!(
                        foreign.resolve(automaton),
                        s.match_entries(h, j, u32::MAX - 1, entries),
                        "{config}: node {v} phase {j} foreign block"
                    );
                    match expected {
                        MatchResult::Unique(k) => t_block = k,
                        _ => break,
                    }
                }
            }
        }
    }

    #[test]
    fn render_marks_infeasible_schedules() {
        let c = radio_graph::families::s_m(2);
        let (_, s) = CanonicalSchedule::build(&c);
        assert!(s.render().contains("infeasible"));
    }

    #[test]
    fn matching_detects_foreign_histories() {
        let s = h2_schedule();
        // all-silent phase (no neighbour heard): matches no final entry of
        // H_2, where every node hears something in phase 1.
        let h = History::from_entries(vec![Obs::Silence; 11]);
        assert_eq!(
            s.match_entries(h.view(), 1, 1, &s.lists.final_entries),
            MatchResult::NoMatch
        );
        // wrong previous block also fails
        let mut entries = vec![Obs::Silence];
        for t in 1..=10u64 {
            entries.push(if t == 2 {
                Obs::Heard(Msg::ONE)
            } else {
                Obs::Silence
            });
        }
        let h = History::from_entries(entries);
        assert_eq!(
            s.match_entries(h.view(), 1, 99, &s.lists.final_entries),
            MatchResult::NoMatch
        );
    }
}
