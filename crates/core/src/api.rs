//! Top-level convenience API: feasibility, solving, and one-call election.

use radio_graph::{Configuration, NodeId};

use crate::dedicated::DedicatedElection;

/// The configuration admits no deterministic leader-election algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Infeasible {
    /// The iteration at which `Classifier` found the partition stable.
    pub iterations: usize,
}

impl std::fmt::Display for Infeasible {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "configuration is infeasible (partition stabilized after {} iteration(s))",
            self.iterations
        )
    }
}

impl std::error::Error for Infeasible {}

/// Failure while running a dedicated election.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElectError {
    /// The simulator hit its round budget before every node terminated —
    /// the structured deadline surface (`RunOpts::max_rounds` is the
    /// per-job deadline knob of the serve layer).
    RoundLimit {
        /// The budget that ran out.
        max_rounds: u64,
        /// Nodes still running when it did.
        still_running: usize,
    },
    /// The simulator aborted for any other reason (e.g. the configuration
    /// turned out infeasible at solve time).
    Simulation(String),
    /// The decision function did not mark exactly one node — a broken
    /// invariant for a feasible configuration.
    Contract {
        /// Nodes that claimed leadership.
        leaders: Vec<NodeId>,
    },
    /// The elected node differs from `Classifier`'s prediction — a broken
    /// invariant.
    PredictionMismatch {
        /// Node the simulation elected.
        elected: NodeId,
        /// Node the classifier predicted.
        predicted: NodeId,
    },
}

impl std::fmt::Display for ElectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ElectError::RoundLimit {
                max_rounds,
                still_running,
            } => write!(
                f,
                "simulation failed: round limit {max_rounds} reached with {still_running} \
                 node(s) still running"
            ),
            ElectError::Simulation(msg) => write!(f, "simulation failed: {msg}"),
            ElectError::Contract { leaders } => {
                write!(
                    f,
                    "decision function marked {} nodes: {leaders:?}",
                    leaders.len()
                )
            }
            ElectError::PredictionMismatch { elected, predicted } => {
                write!(
                    f,
                    "elected v{elected} but classifier predicted v{predicted}"
                )
            }
        }
    }
}

impl std::error::Error for ElectError {}

/// Summary of a successful dedicated election run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElectionReport {
    /// The elected node.
    pub leader: NodeId,
    /// Configuration size `n`.
    pub n: usize,
    /// Configuration span `σ`.
    pub sigma: u64,
    /// Number of phases `T` the canonical DRIP ran.
    pub phases: usize,
    /// Local rounds until termination (`r_T + 1`; the `O(n²σ)` quantity).
    pub rounds_local: u64,
    /// Global round by which every node had terminated.
    pub completion_round: u64,
    /// Total transmissions over the run (= `n · T`).
    pub transmissions: u64,
    /// Global rounds the engine executed one by one (see
    /// [`radio_sim::Execution::rounds_stepped`]).
    pub rounds_stepped: u64,
    /// Global rounds the time-leap scheduler skipped as provably quiet
    /// (0 when leaping is disabled).
    pub rounds_leapt: u64,
}

/// Decides feasibility of leader election on `config` (Theorem 3.17).
///
/// Routed through the record-free classifier path: nothing but the
/// verdict is materialized. For repeated decisions hold a
/// [`ClassifierWorkspace`](radio_classifier::ClassifierWorkspace) and use
/// [`is_feasible_in`].
pub fn is_feasible(config: &Configuration) -> bool {
    radio_classifier::summarize(config).feasible
}

/// [`is_feasible`] through a caller-provided
/// [`ClassifierWorkspace`](radio_classifier::ClassifierWorkspace) — the
/// batch path: one workspace per worker thread makes back-to-back
/// feasibility decisions allocation-free.
pub fn is_feasible_in(
    workspace: &mut radio_classifier::ClassifierWorkspace,
    config: &Configuration,
) -> bool {
    workspace.summarize_in(config).feasible
}

/// [`is_feasible_in`] through a [`ScheduleCache`](crate::ScheduleCache):
/// an exact cache hit answers without classifying at all, and a miss
/// leaves the compiled election behind for later `solve`/campaign reuse.
/// The verdict is bit-identical to the uncached path.
pub fn is_feasible_cached(
    workspace: &mut radio_classifier::ClassifierWorkspace,
    config: &Configuration,
    cache: &crate::cache::ScheduleCache,
) -> bool {
    cache.compile_in(workspace, config).0.feasible()
}

/// Compiles the dedicated leader-election algorithm `(D_G, f_G)` for a
/// feasible configuration (Theorem 3.15).
pub fn solve(config: &Configuration) -> Result<DedicatedElection, Infeasible> {
    DedicatedElection::solve(config)
}

/// One call: classify, compile, simulate, validate — returns the elected
/// leader and run metrics.
pub fn elect_leader(config: &Configuration) -> Result<ElectionReport, ElectError> {
    elect_leader_under(config, radio_sim::ModelKind::default())
}

/// [`elect_leader`] under an explicit channel model.
///
/// The compiled algorithm is proved correct only for the default (paper)
/// model; foreign models run deterministically but may break the
/// exactly-one-leader contract, which surfaces as an error.
pub fn elect_leader_under(
    config: &Configuration,
    model: radio_sim::ModelKind,
) -> Result<ElectionReport, ElectError> {
    elect_leader_with(config, model, radio_sim::RunOpts::default())
}

/// [`elect_leader_under`] with explicit executor options — e.g.
/// `RunOpts::default().no_leap()` for the CLI's `--no-leap` escape hatch,
/// or a custom round limit.
pub fn elect_leader_with(
    config: &Configuration,
    model: radio_sim::ModelKind,
    opts: radio_sim::RunOpts,
) -> Result<ElectionReport, ElectError> {
    let dedicated = solve(config).map_err(|e| ElectError::Simulation(e.to_string()))?;
    dedicated.run_under(model, opts)
}

/// [`elect_leader_with`] through a caller-provided
/// [`SimWorkspace`](radio_sim::SimWorkspace): classify, compile, simulate
/// — with the simulation recycling the workspace's engine state. The
/// batch/campaign layers hold one workspace per worker thread and route
/// every election through it.
pub fn elect_leader_in(
    workspace: &mut radio_sim::SimWorkspace,
    config: &Configuration,
    model: radio_sim::ModelKind,
    opts: radio_sim::RunOpts,
) -> Result<ElectionReport, ElectError> {
    let dedicated = solve(config).map_err(|e| ElectError::Simulation(e.to_string()))?;
    dedicated.run_in(workspace, model, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::{families, generators, Configuration};

    #[test]
    fn feasibility_shortcuts() {
        assert!(is_feasible(&families::h_m(2)));
        assert!(!is_feasible(&families::s_m(2)));
        let mut ws = radio_classifier::ClassifierWorkspace::new();
        assert!(is_feasible_in(&mut ws, &families::h_m(2)));
        assert!(!is_feasible_in(&mut ws, &families::s_m(2)));
    }

    #[test]
    fn cached_feasibility_matches_uncached() {
        let cache = crate::cache::ScheduleCache::default();
        let mut ws = radio_classifier::ClassifierWorkspace::new();
        for c in [families::h_m(2), families::s_m(2), families::g_m(3)] {
            let plain = is_feasible_in(&mut ws, &c);
            // twice: once populating, once hitting — same verdict always
            assert_eq!(is_feasible_cached(&mut ws, &c, &cache), plain, "{c}");
            assert_eq!(is_feasible_cached(&mut ws, &c, &cache), plain, "{c}");
        }
        assert!(cache.stats().hits >= 3);
    }

    #[test]
    fn elect_leader_end_to_end() {
        let report = elect_leader(&families::h_m(4)).unwrap();
        assert_eq!(report.leader, 0);
        assert_eq!(report.transmissions, 4, "n · T = 4 · 1");
    }

    #[test]
    fn elect_leader_on_infeasible_is_an_error() {
        let err = elect_leader(&families::s_m(1)).unwrap_err();
        assert!(matches!(err, ElectError::Simulation(_)));
        assert!(err.to_string().contains("infeasible"));
    }

    #[test]
    fn error_displays_are_informative() {
        let e = ElectError::Contract {
            leaders: vec![1, 2],
        };
        assert!(e.to_string().contains("2 nodes"));
        let e = ElectError::PredictionMismatch {
            elected: 3,
            predicted: 1,
        };
        assert!(e.to_string().contains("v3"));
        assert!(e.to_string().contains("v1"));
        let i = Infeasible { iterations: 2 };
        assert!(i.to_string().contains("2 iteration"));
    }

    #[test]
    fn feasible_iff_shift_invariant() {
        let base = Configuration::new(generators::path(3), vec![0, 2, 1]).unwrap();
        let shifted = base.shift_tags(7);
        assert_eq!(is_feasible(&base), is_feasible(&shifted.normalize()));
    }
}
