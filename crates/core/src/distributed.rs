//! Proposition 4.5: no distributed algorithm decides feasibility — made
//! executable.
//!
//! A hypothetical distributed decision algorithm would make all nodes
//! output "yes" on feasible configurations and some node output "no" on
//! infeasible ones. The paper kills this with an indistinguishability
//! argument: for any DRIP, let `t` be the first round in which the tag-0
//! nodes transmit; then every node's history on the *feasible* `H_{t+1}`
//! (tags `t+1, 0, 0, t+2`) is identical to its counterpart's on the
//! *infeasible* `S_{t+1}` (tags `t+1, 0, 0, t+1`) — the two configurations
//! differ only in node `d`'s tag, which in both cases is pre-empted by the
//! forced wake-up at round `t`. Identical histories force identical
//! verdicts, so any verdict is wrong on one of the two.
//!
//! [`refute_distributed_decision`] produces this evidence for any DRIP.

use radio_sim::{DripFactory, Executor, History, RunOpts};

use crate::universal::silence_breaking_round;
use radio_graph::families;

/// Evidence that a DRIP cannot power a distributed feasibility decision.
#[derive(Debug)]
pub struct DecisionRefutation {
    /// The DRIP's silence-breaking round.
    pub t: u64,
    /// Index of the configuration pair: `H_{t+1}` vs `S_{t+1}`.
    pub m: u64,
    /// `H_m` is feasible (checked via `Classifier`).
    pub h_feasible: bool,
    /// `S_m` is infeasible (checked via `Classifier`).
    pub s_feasible: bool,
    /// Per-node history equality across the two executions.
    pub histories_identical: [bool; 4],
    /// The four histories on `H_m` (for reporting).
    pub h_histories: Vec<History>,
    /// The four histories on `S_m`.
    pub s_histories: Vec<History>,
}

impl DecisionRefutation {
    /// True when the evidence is complete: the pair differs in feasibility
    /// yet every node's history coincides.
    pub fn is_conclusive(&self) -> bool {
        self.h_feasible && !self.s_feasible && self.histories_identical.iter().all(|&b| b)
    }
}

/// Failure modes of the refutation construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefuteError {
    /// The DRIP never transmits on silent histories; it cannot gather any
    /// information to decide anything (all histories are all-silent on
    /// every `H_m`/`S_m`, which is itself an indistinguishability proof,
    /// but there is no round `t` to exhibit).
    NeverTransmits {
        /// Rounds probed.
        probed_rounds: u64,
    },
    /// The simulation exceeded its round budget.
    Simulation(String),
}

/// Runs the Proposition 4.5 construction against a DRIP.
pub fn refute_distributed_decision(
    factory: &dyn DripFactory,
    probe_limit: u64,
) -> Result<DecisionRefutation, RefuteError> {
    let t = silence_breaking_round(factory, probe_limit).ok_or(RefuteError::NeverTransmits {
        probed_rounds: probe_limit,
    })?;
    let m = t + 1;
    let h = families::h_m(m);
    let s = families::s_m(m);

    let opts = RunOpts::with_max_rounds(8 * (probe_limit + m) + 64);
    let ex_h =
        Executor::run(&h, factory, opts).map_err(|e| RefuteError::Simulation(e.to_string()))?;
    let ex_s =
        Executor::run(&s, factory, opts).map_err(|e| RefuteError::Simulation(e.to_string()))?;

    let histories_identical =
        core::array::from_fn(|v| ex_h.history(v as u32) == ex_s.history(v as u32));

    Ok(DecisionRefutation {
        t,
        m,
        h_feasible: radio_classifier::classify(&h).feasible,
        s_feasible: radio_classifier::classify(&s).feasible,
        histories_identical,
        h_histories: ex_h.histories,
        s_histories: ex_s.histories,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_sim::drip::{SilentFactory, WaitThenTransmitFactory};
    use radio_sim::Msg;

    #[test]
    fn wait_then_transmit_is_refuted() {
        for wait in [0u64, 2, 6] {
            let f = WaitThenTransmitFactory {
                wait,
                msg: Msg::ONE,
                lifetime: wait + 12,
            };
            let r = refute_distributed_decision(&f, 1_000).unwrap();
            assert_eq!(r.t, wait + 1);
            assert!(r.is_conclusive(), "wait={wait}: {r:?}");
            assert!(r.h_feasible && !r.s_feasible);
        }
    }

    #[test]
    fn canonical_drip_of_h1_is_refuted() {
        // Even the paper's own dedicated DRIP cannot power a distributed
        // feasibility decision.
        let dedicated = crate::dedicated::DedicatedElection::solve(&families::h_m(1)).unwrap();
        let factory = dedicated.factory();
        let r = refute_distributed_decision(&factory, 1_000).unwrap();
        assert!(r.is_conclusive(), "{r:?}");
    }

    #[test]
    fn silent_drips_cannot_be_probed() {
        let f = SilentFactory { lifetime: 4 };
        let err = refute_distributed_decision(&f, 50).unwrap_err();
        assert_eq!(err, RefuteError::NeverTransmits { probed_rounds: 50 });
    }

    #[test]
    fn histories_report_matches_flags() {
        let f = WaitThenTransmitFactory {
            wait: 1,
            msg: Msg::ONE,
            lifetime: 10,
        };
        let r = refute_distributed_decision(&f, 100).unwrap();
        for v in 0..4usize {
            assert_eq!(
                r.h_histories[v] == r.s_histories[v],
                r.histories_identical[v]
            );
        }
    }
}
