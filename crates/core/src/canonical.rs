//! The canonical DRIP `D_G` (paper Section 3.3.1) as an executable node.
//!
//! Per phase `j ≤ T`, a node transmits `'1'` exactly once — in the
//! `(σ+1)`-th round of its transmission block — and listens in every other
//! round. Its block for phase 1 is 1 (all nodes); for each later phase it
//! re-derives the block by matching its recorded history of the previous
//! phase against the hard-coded `L_j` entries. In the first round after
//! phase `T` every node terminates.
//!
//! ## Off-schedule histories
//!
//! On its own configuration the matching is guaranteed to succeed uniquely
//! (Lemma 3.8). When the dedicated algorithm is (ab)used on a *different*
//! configuration — e.g. in the universal-algorithm counterexample — a
//! node's history may match zero or two entries. Such a node downgrades to
//! a silent observer: it listens for the rest of the schedule and
//! terminates on time. This keeps the DRIP total (every node terminates)
//! without inventing behaviour the paper doesn't define.

use radio_sim::{Action, DripFactory, DripNode, HistoryView, Msg, Obs};

use crate::schedule::{MatchCursor, MatchResult, SharedSchedule};
use radio_classifier::{Level, Multi, Triple};

/// Factory installing the canonical DRIP of one configuration at every
/// node.
pub struct CanonicalFactory {
    schedule: SharedSchedule,
    streaming: bool,
}

impl CanonicalFactory {
    /// Wraps a compiled schedule.
    pub fn new(schedule: SharedSchedule) -> CanonicalFactory {
        CanonicalFactory {
            schedule,
            streaming: false,
        }
    }

    /// Wraps a compiled schedule in *streaming-match* mode: nodes fold
    /// every observation into a [`MatchCursor`] as it lands (via
    /// [`DripNode::observe`]) and resolve their phase matches — and the
    /// final leader verdict — without ever re-reading history content.
    /// Behaviour is bit-identical to [`CanonicalFactory::new`]; the point
    /// is that it stays correct under
    /// [`RunOpts::len_only_histories`](radio_sim::RunOpts), where
    /// histories have lengths but no content, which removes the dominant
    /// memory term of million-node elections.
    pub fn streaming(schedule: SharedSchedule) -> CanonicalFactory {
        CanonicalFactory {
            schedule,
            streaming: true,
        }
    }

    /// The shared schedule.
    pub fn schedule(&self) -> &SharedSchedule {
        &self.schedule
    }
}

impl DripFactory for CanonicalFactory {
    fn spawn(&self) -> Box<dyn DripNode> {
        Box::new(CanonicalNode {
            cursor: self.schedule.matcher_after_phase(1).start(1),
            schedule: self.schedule.clone(),
            phase: 1,
            t_block: 1,
            transmit_at: self.schedule.transmit_round(1, 1),
            off_schedule: false,
            streaming: self.streaming,
            is_leader: None,
        })
    }

    fn name(&self) -> String {
        format!(
            "canonical(σ={}, T={})",
            self.schedule.sigma,
            self.schedule.phases()
        )
    }
}

struct CanonicalNode {
    schedule: SharedSchedule,
    /// Current phase `j` (1-based).
    phase: usize,
    /// Transmission block within the current phase.
    t_block: u32,
    /// Local round of this phase's transmission.
    transmit_at: u64,
    /// Set when matching failed (foreign configuration): listen-only mode.
    off_schedule: bool,
    /// Streaming-match mode: phase matches (and the leader verdict) come
    /// from `cursor`, fed by `observe`, instead of re-reading history.
    streaming: bool,
    /// Trie position within `matcher_after_phase(phase)` (streaming only).
    cursor: MatchCursor,
    /// The leader verdict, resolved once at termination (streaming only).
    is_leader: Option<bool>,
}

impl DripNode for CanonicalNode {
    fn decide(&mut self, history: HistoryView<'_>) -> Action {
        let i = history.len() as u64; // local round to act in
        let s = &self.schedule;

        if i > s.phase_end(s.phases()) {
            // r_T + 1: all nodes terminate (L_{T+1} = terminate). In
            // streaming mode this is also where the decision function
            // collapses into the node: resolve phase T's cursor against
            // the final would-be list and compare with the leader class.
            if self.streaming && self.is_leader.is_none() {
                let claim = !self.off_schedule
                    && match self.cursor.resolve(s.matcher_after_phase(self.phase)) {
                        MatchResult::Unique(k) => s.lists.leader_class == Some(k),
                        MatchResult::NoMatch | MatchResult::Ambiguous { .. } => false,
                    };
                self.is_leader = Some(claim);
            }
            return Action::Terminate;
        }

        if i > s.phase_end(self.phase) {
            // First round of the next phase: derive the new block from the
            // history of the phase that just ended.
            let next = self.phase + 1;
            debug_assert!(next <= s.phases());
            if !self.off_schedule {
                let result = if self.streaming {
                    self.cursor.resolve(s.matcher_after_phase(self.phase))
                } else {
                    let entries = match s.lists.level(next) {
                        Level::Blocks(entries) => entries,
                        Level::Terminate => unreachable!("terminate level handled above"),
                    };
                    s.match_entries(history, self.phase, self.t_block, entries)
                };
                match result {
                    MatchResult::Unique(k) => {
                        self.t_block = k;
                        self.transmit_at = s.transmit_round(next, k);
                        if self.streaming {
                            self.cursor = s.matcher_after_phase(next).start(k);
                        }
                    }
                    MatchResult::NoMatch | MatchResult::Ambiguous { .. } => {
                        self.off_schedule = true;
                    }
                }
            }
            self.phase = next;
        }

        if !self.off_schedule && i == self.transmit_at {
            Action::Transmit(Msg::ONE)
        } else {
            Action::Listen
        }
    }

    fn observe(&mut self, t: u64, obs: Obs) {
        if !self.streaming || self.off_schedule || self.is_leader.is_some() {
            return;
        }
        // Project the observation onto phase geometry exactly as
        // `CanonicalSchedule::observed_triples` does: only non-silent
        // rounds inside the current phase's block region become triples
        // (the engine already filters silence; `t` outside the region —
        // the wake round 0 or the trailing σ listening rounds — is
        // ignored).
        let s = &self.schedule;
        let start = s.phase_end(self.phase - 1);
        if t <= start {
            return;
        }
        let off = t - start;
        let width = 2 * s.sigma + 1;
        if off > s.blocks(self.phase) * width {
            return;
        }
        let c = match obs {
            Obs::Silence => return,
            Obs::Heard(_) => Multi::One,
            Obs::Collision | Obs::Noise => Multi::Star,
        };
        let a = ((off - 1) / width + 1) as u32;
        let b = (off - 1) % width + 1;
        self.cursor
            .advance(s.matcher_after_phase(self.phase), Triple::new(a, b, c));
    }

    fn leader_claim(&self) -> Option<bool> {
        self.is_leader
    }

    fn quiet_until(&self, history: HistoryView<'_>) -> Option<u64> {
        let i = history.len() as u64;
        if self.off_schedule {
            // A silent observer listens until the scheduled termination
            // round (its decide short-circuits to Terminate there, before
            // any phase bookkeeping).
            let done = self.schedule.done_local();
            return (done > i).then_some(done);
        }
        // On schedule, the compiled timetable answers exactly.
        self.schedule.quiet_horizon(i, self.phase, self.transmit_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::CanonicalSchedule;
    use radio_graph::{families, generators, Configuration};
    use radio_sim::{Executor, RunOpts};
    use std::sync::Arc;

    fn run_canonical(config: &Configuration) -> radio_sim::Execution {
        let (_, schedule) = CanonicalSchedule::build(config);
        let factory = CanonicalFactory::new(Arc::new(schedule));
        Executor::run(config, &factory, RunOpts::default().traced()).unwrap()
    }

    #[test]
    fn all_nodes_terminate_simultaneously_in_local_time() {
        let c = families::h_m(2);
        let (_, schedule) = CanonicalSchedule::build(&c);
        let done = schedule.done_local();
        let ex = run_canonical(&c);
        for v in 0..4u32 {
            assert_eq!(ex.done_local(v), done, "node {v}");
        }
    }

    #[test]
    fn canonical_is_patient_lemma_3_6() {
        // No transmission in global rounds 0..=σ; every wake-up is
        // spontaneous at the node's tag.
        for c in [families::h_m(3), families::g_m(2), families::s_m(2)] {
            let sigma = c.span();
            let ex = run_canonical(&c);
            let trace = ex.trace.as_ref().unwrap();
            for e in &trace.events {
                if !e.transmitters.is_empty() {
                    assert!(
                        e.round > sigma,
                        "{c}: transmission at round {} ≤ σ",
                        e.round
                    );
                }
            }
            for v in 0..c.size() as u32 {
                assert!(ex.woke_spontaneously(v), "{c}: node {v}");
                assert_eq!(ex.wake_round[v as usize], c.tag(v));
            }
        }
    }

    #[test]
    fn every_node_transmits_once_per_phase() {
        let c = families::g_m(2);
        let (out, schedule) = CanonicalSchedule::build(&c);
        let ex = run_canonical(&c);
        let total_tx: u64 = ex.stats.transmissions;
        // every node transmits exactly once per phase
        assert_eq!(total_tx, (c.size() * out.iterations) as u64);
        let _ = schedule;
    }

    #[test]
    fn transmit_blocks_match_classifier_classes() {
        // Lemma 3.8(2): node v transmits in block k of phase j iff its
        // class at the start of phase j is k.
        let c = families::g_m(3);
        let (out, schedule) = CanonicalSchedule::build(&c);
        let ex = run_canonical(&c);
        let trace = ex.trace.as_ref().unwrap();
        let width = 2 * schedule.sigma + 1;

        // expected: class of v at phase j = v_CLASS,j = partition after
        // iteration j-1 (phase 1: class 1 for all).
        for j in 1..=schedule.phases() {
            let class_of = |v: u32| -> u32 {
                if j == 1 {
                    1
                } else {
                    out.records[j - 2].partition.class_of(v)
                }
            };
            for v in 0..c.size() as u32 {
                let k = class_of(v);
                let local = schedule.phase_end(j - 1) + (k as u64 - 1) * width + schedule.sigma + 1;
                let global = c.tag(v) + local; // spontaneous wake at tag
                let ev = trace
                    .round(global)
                    .unwrap_or_else(|| panic!("phase {j} node {v}: no event at round {global}"));
                assert!(
                    ev.transmitters.iter().any(|&(u, _)| u == v),
                    "phase {j}: node {v} must transmit in block {k} (global round {global})"
                );
            }
        }
    }

    #[test]
    fn histories_partition_matches_final_classes() {
        // Lemma 3.9 at the final iteration: equal final histories ⟺ equal
        // final classes.
        for c in [families::h_m(1), families::s_m(2), families::g_m(2)] {
            let (out, _) = CanonicalSchedule::build(&c);
            let ex = run_canonical(&c);
            let p = out.final_partition();
            for v in 0..c.size() as u32 {
                for w in 0..c.size() as u32 {
                    let same_class = p.class_of(v) == p.class_of(w);
                    let same_hist = ex.history(v) == ex.history(w);
                    assert_eq!(same_class, same_hist, "{c}: nodes {v},{w}");
                }
            }
        }
    }

    #[test]
    fn off_schedule_node_goes_silent_but_terminates() {
        // Run H_2's dedicated DRIP on S_2 (same span σ... S_2 has σ=2 but
        // H_2 has σ=3 — geometry differs, matching will fail for some
        // nodes). All nodes must still terminate on schedule.
        let h2 = families::h_m(2);
        let (_, schedule) = CanonicalSchedule::build(&h2);
        let done = schedule.done_local();
        let factory = CanonicalFactory::new(Arc::new(schedule));
        let s2 = families::s_m(2);
        let ex = Executor::run(&s2, &factory, RunOpts::default()).unwrap();
        for v in 0..4u32 {
            assert_eq!(ex.done_local(v), done);
        }
    }

    #[test]
    fn leap_engine_runs_high_span_schedules_in_few_steps() {
        // H_m with m = 2^12: σ = 4097, schedule ≈ 3·(2σ+1)+… rounds of
        // which only a handful are eventful. The leap engine must step a
        // tiny fraction and still match the step engine bit for bit.
        let c = families::h_m(1 << 12);
        let (_, schedule) = CanonicalSchedule::build(&c);
        let factory = CanonicalFactory::new(Arc::new(schedule));
        let leap = Executor::run(&c, &factory, RunOpts::default()).unwrap();
        let step = Executor::run(&c, &factory, RunOpts::default().no_leap()).unwrap();
        assert_eq!(leap.histories, step.histories);
        assert_eq!(leap.done_round, step.done_round);
        assert_eq!(leap.wake_round, step.wake_round);
        assert_eq!(leap.stats, step.stats);
        assert_eq!(leap.rounds, step.rounds);
        assert!(leap.rounds > 8_000, "σ-scale schedule");
        assert!(
            leap.rounds_stepped * 100 < leap.rounds,
            "stepped {} of {} rounds — the schedule is silence-dominated",
            leap.rounds_stepped,
            leap.rounds
        );
    }

    #[test]
    fn streaming_len_only_elects_exactly_like_the_dense_path() {
        // The streaming factory under length-only histories must produce
        // the same leaders and run shape as the dense factory judged by
        // the view-reading decision function — across feasible,
        // infeasible, and random configurations, with and without leaps.
        use crate::decision::LeaderDecision;
        use radio_sim::{run_election_resident, ModelKind, SimWorkspace};
        let mut rng = radio_util::rng::rng_from(29);
        let mut configs = vec![
            families::h_m(3),
            families::g_m(3),
            families::s_m(2),
            families::h_m(1),
        ];
        for _ in 0..6 {
            let g = generators::gnp_connected(9, 0.35, &mut rng);
            configs.push(radio_graph::tags::random_in_span(g, 5, &mut rng));
        }
        let mut sim = SimWorkspace::new();
        for config in configs {
            let (_, schedule) = CanonicalSchedule::build(&config);
            let shared = Arc::new(schedule);
            let decision = LeaderDecision::new(shared.clone());
            let decide = |h: radio_sim::HistoryView<'_>| decision.is_leader_view(h);
            for base in [RunOpts::default(), RunOpts::default().no_leap()] {
                let dense = run_election_resident(
                    &mut sim,
                    ModelKind::NoCollisionDetection,
                    &config,
                    &CanonicalFactory::new(shared.clone()),
                    &decide,
                    base,
                )
                .unwrap();
                let (dense_leaders, dense_run) = (dense.leaders, dense.run);
                let streaming = run_election_resident(
                    &mut sim,
                    ModelKind::NoCollisionDetection,
                    &config,
                    &CanonicalFactory::streaming(shared.clone()),
                    &decide,
                    base.len_only(),
                )
                .unwrap();
                assert_eq!(streaming.leaders, dense_leaders, "{config}");
                assert_eq!(streaming.run.stats, dense_run.stats, "{config}");
                assert_eq!(
                    streaming.run.completion_round, dense_run.completion_round,
                    "{config}"
                );
                assert_eq!(streaming.run.rounds, dense_run.rounds, "{config}");
            }
        }
    }

    #[test]
    fn streaming_mode_survives_foreign_configurations() {
        // Off-schedule nodes must go silent and claim non-leadership —
        // never panic, never claim — when the dedicated DRIP runs on a
        // configuration it was not compiled for.
        use radio_sim::{run_election_resident, ModelKind, SimWorkspace};
        let h2 = families::h_m(2);
        let (_, schedule) = CanonicalSchedule::build(&h2);
        let shared = Arc::new(schedule);
        let decision = crate::decision::LeaderDecision::new(shared.clone());
        let decide = |h: radio_sim::HistoryView<'_>| decision.is_leader_view(h);
        let s2 = families::s_m(2);
        let mut sim = SimWorkspace::new();
        let outcome = run_election_resident(
            &mut sim,
            ModelKind::NoCollisionDetection,
            &s2,
            &CanonicalFactory::streaming(shared.clone()),
            &decide,
            RunOpts::default().len_only(),
        )
        .unwrap();
        let dense = run_election_resident(
            &mut sim,
            ModelKind::NoCollisionDetection,
            &s2,
            &CanonicalFactory::new(shared),
            &decide,
            RunOpts::default(),
        )
        .unwrap();
        assert_eq!(outcome.leaders, dense.leaders);
    }

    #[test]
    fn factory_name_is_descriptive() {
        let c = generators::path(1);
        let c = Configuration::new(c, vec![0]).unwrap();
        let (_, schedule) = CanonicalSchedule::build(&c);
        let f = CanonicalFactory::new(Arc::new(schedule));
        assert_eq!(f.name(), "canonical(σ=0, T=1)");
    }
}
