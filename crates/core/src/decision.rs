//! The decision function `f_G` of the dedicated leader-election algorithm.
//!
//! The paper (Lemma 3.11) defines `f_G` extensionally: it maps the unique
//! history of the singleton-class node to 1 and every other history to 0.
//! The constructive equivalent implemented here replays the phase-matching
//! procedure over the full recorded history — the same computation a node
//! itself performs during phases, extended by one step using the *would-be*
//! list `L_{T+1}`'s entries — and outputs 1 iff the history lands in the
//! leader class `m̂`. By Lemmas 3.8/3.9 this agrees with the extensional
//! definition, and it is manifestly a pure function of the history, so
//! anonymity is preserved.

use radio_sim::{History, HistoryView};

use crate::schedule::{MatchResult, SharedSchedule};
use radio_classifier::Level;

/// The decision function `f_G`; cheap to clone (shares the schedule).
#[derive(Clone)]
pub struct LeaderDecision {
    schedule: SharedSchedule,
}

impl LeaderDecision {
    /// Builds the decision function for a compiled schedule.
    pub fn new(schedule: SharedSchedule) -> LeaderDecision {
        LeaderDecision { schedule }
    }

    /// Replays the matching over `history` and returns the final class it
    /// lands in, or `None` if the history is off-schedule.
    pub fn final_class(&self, history: &History) -> Option<u32> {
        self.final_class_view(history.view())
    }

    /// [`LeaderDecision::final_class`] over a borrowed history view — the
    /// batch engine's metric path classifies straight out of the shared
    /// observation arena without materializing owned histories.
    pub fn final_class_view(&self, history: HistoryView<'_>) -> Option<u32> {
        let s = &self.schedule;
        let mut t_block = 1u32; // phase 1: everyone in block 1 (L_1 = [(1, null)])
        for j in 2..=s.phases() {
            let entries = match s.lists.level(j) {
                Level::Blocks(entries) => entries,
                Level::Terminate => unreachable!("levels 1..=T are block levels"),
            };
            match s.match_entries(history, j - 1, t_block, entries) {
                MatchResult::Unique(k) => t_block = k,
                _ => return None,
            }
        }
        match s.match_entries(history, s.phases(), t_block, &s.lists.final_entries) {
            MatchResult::Unique(k) => Some(k),
            _ => None,
        }
    }

    /// `f_G(history)`: 1 iff the history is the leader's.
    pub fn is_leader(&self, history: &History) -> bool {
        self.is_leader_view(history.view())
    }

    /// [`LeaderDecision::is_leader`] over a borrowed history view.
    pub fn is_leader_view(&self, history: HistoryView<'_>) -> bool {
        match self.schedule.lists.leader_class {
            Some(m_hat) => self.final_class_view(history) == Some(m_hat),
            None => false, // infeasible configuration: nobody is leader
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::CanonicalFactory;
    use crate::schedule::CanonicalSchedule;
    use radio_graph::families;
    use radio_sim::{Executor, RunOpts};
    use std::sync::Arc;

    fn setup(
        c: &radio_graph::Configuration,
    ) -> (radio_sim::Execution, LeaderDecision, Option<u32>) {
        let (out, schedule) = CanonicalSchedule::build(c);
        let shared = Arc::new(schedule);
        let factory = CanonicalFactory::new(shared.clone());
        let ex = Executor::run(c, &factory, RunOpts::default()).unwrap();
        let leader_class = out.leader_class();
        (ex, LeaderDecision::new(shared), leader_class)
    }

    #[test]
    fn exactly_one_leader_on_h_m() {
        for m in [1u64, 2, 6] {
            let c = families::h_m(m);
            let (ex, f, _) = setup(&c);
            let leaders: Vec<u32> = (0..4).filter(|&v| f.is_leader(ex.history(v))).collect();
            assert_eq!(leaders.len(), 1, "H_{m}");
            assert_eq!(leaders[0], 0, "H_{m}: node a (smallest class) leads");
        }
    }

    #[test]
    fn final_class_reproduces_classifier_partition() {
        let c = families::g_m(2);
        let (out, schedule) = CanonicalSchedule::build(&c);
        let shared = Arc::new(schedule);
        let factory = CanonicalFactory::new(shared.clone());
        let ex = Executor::run(&c, &factory, RunOpts::default()).unwrap();
        let f = LeaderDecision::new(shared);
        let p = out.final_partition();
        for v in 0..c.size() as u32 {
            assert_eq!(
                f.final_class(ex.history(v)),
                Some(p.class_of(v)),
                "node {v}"
            );
        }
    }

    #[test]
    fn decision_from_streamed_schedule_matches_eager_build() {
        // The decision function compiled via the workspace/ListsSink path
        // must classify every canonical history exactly like the one from
        // the eager records path.
        let c = families::g_m(2);
        let mut ws = radio_classifier::ClassifierWorkspace::new();
        let (_, streamed) = CanonicalSchedule::build_in(&mut ws, &c);
        let (_, eager) = CanonicalSchedule::build(&c);
        let f_streamed = LeaderDecision::new(Arc::new(streamed));
        let f_eager = LeaderDecision::new(Arc::new(eager));
        let factory = CanonicalFactory::new(Arc::new(CanonicalSchedule::build(&c).1));
        let ex = Executor::run(&c, &factory, RunOpts::default()).unwrap();
        for v in 0..c.size() as u32 {
            assert_eq!(
                f_streamed.final_class(ex.history(v)),
                f_eager.final_class(ex.history(v)),
                "node {v}"
            );
            assert_eq!(
                f_streamed.is_leader(ex.history(v)),
                f_eager.is_leader(ex.history(v)),
                "node {v}"
            );
        }
    }

    #[test]
    fn nobody_leads_on_infeasible_configs() {
        let c = families::s_m(3);
        let (ex, f, leader_class) = setup(&c);
        assert!(leader_class.is_none());
        for v in 0..4u32 {
            assert!(!f.is_leader(ex.history(v)));
        }
    }

    #[test]
    fn off_schedule_history_is_never_leader() {
        let c = families::h_m(2);
        let (_, f, _) = setup(&c);
        let silent = radio_sim::History::from_entries(vec![radio_sim::Obs::Silence; 11]);
        assert_eq!(f.final_class(&silent), None);
        assert!(!f.is_leader(&silent));
    }
}
