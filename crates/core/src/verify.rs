//! Executable validators for the paper's structural lemmas.
//!
//! These functions take an actual (traced) execution of the canonical DRIP
//! and check the paper's claims on it, returning a descriptive error on the
//! first violation. The integration suite runs them across configuration
//! corpora; experiment E2/E3 summarize them over sweeps.

use radio_classifier::Outcome;
use radio_graph::{Configuration, NodeId};
use radio_sim::Execution;

use crate::schedule::CanonicalSchedule;

/// Lemma 3.6: the canonical DRIP is patient — nobody transmits in global
/// rounds `0..=σ`, hence every node wakes spontaneously at its tag.
pub fn check_patient(config: &Configuration, execution: &Execution) -> Result<(), String> {
    let sigma = config.span();
    let trace = execution
        .trace
        .as_ref()
        .ok_or_else(|| "check_patient requires a traced execution".to_string())?;
    for event in &trace.events {
        if !event.transmitters.is_empty() && event.round <= sigma {
            return Err(format!(
                "Lemma 3.6 violated: transmission at global round {} ≤ σ = {sigma}",
                event.round
            ));
        }
    }
    for v in 0..config.size() as NodeId {
        if !execution.woke_spontaneously(v) {
            return Err(format!(
                "Lemma 3.6 violated: node {v} was woken by a message"
            ));
        }
        if execution.wake_round[v as usize] != config.tag(v) {
            return Err(format!(
                "Lemma 3.6 violated: node {v} woke at {} instead of its tag {}",
                execution.wake_round[v as usize],
                config.tag(v)
            ));
        }
    }
    Ok(())
}

/// Lemma 3.8(2): node `v` transmits in block `k` of phase `j` iff
/// `v`'s class at the start of phase `j` is `k`. Checked as exact equality
/// between the traced transmitter sets and the classifier-predicted
/// schedule, round by round.
pub fn check_block_structure(
    config: &Configuration,
    outcome: &Outcome,
    schedule: &CanonicalSchedule,
    execution: &Execution,
) -> Result<(), String> {
    let trace = execution
        .trace
        .as_ref()
        .ok_or_else(|| "check_block_structure requires a traced execution".to_string())?;
    let n = config.size() as NodeId;

    // Predicted transmission rounds: per phase j and node v, global round
    // tag(v) + r_{j-1} + (class_j(v) − 1)(2σ+1) + σ + 1.
    let mut predicted: std::collections::BTreeMap<u64, Vec<NodeId>> = Default::default();
    for j in 1..=schedule.phases() {
        for v in 0..n {
            let class = if j == 1 {
                1
            } else {
                outcome.records[j - 2].partition.class_of(v)
            };
            let local = schedule.transmit_round(j, class);
            predicted.entry(config.tag(v) + local).or_default().push(v);
        }
    }

    // Observed transmission rounds from the trace.
    let mut observed: std::collections::BTreeMap<u64, Vec<NodeId>> = Default::default();
    for event in &trace.events {
        for &(v, _) in &event.transmitters {
            observed.entry(event.round).or_default().push(v);
        }
    }
    for txs in observed.values_mut() {
        txs.sort_unstable();
    }
    for txs in predicted.values_mut() {
        txs.sort_unstable();
    }

    if predicted != observed {
        for (round, pred) in &predicted {
            let obs = observed.get(round).cloned().unwrap_or_default();
            if *pred != obs {
                return Err(format!(
                    "Lemma 3.8(2) violated at global round {round}: predicted transmitters \
                     {pred:?}, observed {obs:?}"
                ));
            }
        }
        let extra: Vec<&u64> = observed
            .keys()
            .filter(|r| !predicted.contains_key(*r))
            .collect();
        return Err(format!(
            "Lemma 3.8(2) violated: unpredicted transmission rounds {extra:?}"
        ));
    }
    Ok(())
}

/// Lemma 3.9: after every iteration `j`, two nodes share a class iff their
/// histories agree through local round `r_j`.
pub fn check_history_partition(
    config: &Configuration,
    outcome: &Outcome,
    schedule: &CanonicalSchedule,
    execution: &Execution,
) -> Result<(), String> {
    let n = config.size() as NodeId;
    for j in 1..=schedule.phases() {
        let r_j = schedule.phase_end(j) as usize;
        let partition = &outcome.records[j - 1].partition;
        for v in 0..n {
            for w in (v + 1)..n {
                let same_class = partition.class_of(v) == partition.class_of(w);
                let hv = &execution.history(v).as_slice()[..=r_j];
                let hw = &execution.history(w).as_slice()[..=r_j];
                let same_hist = hv == hw;
                if same_class != same_hist {
                    return Err(format!(
                        "Lemma 3.9 violated at iteration {j} for nodes {v},{w}: same_class = \
                         {same_class}, same_history = {same_hist}"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Runs all canonical-DRIP validators on one configuration. Returns the
/// classifier outcome for further inspection.
pub fn verify_canonical_execution(config: &Configuration) -> Result<Outcome, String> {
    let (outcome, schedule) = CanonicalSchedule::build(config);
    let factory = crate::canonical::CanonicalFactory::new(std::sync::Arc::new(schedule.clone()));
    let execution =
        radio_sim::Executor::run(config, &factory, radio_sim::RunOpts::default().traced())
            .map_err(|e| e.to_string())?;
    check_patient(config, &execution)?;
    check_block_structure(config, &outcome, &schedule, &execution)?;
    check_history_partition(config, &outcome, &schedule, &execution)?;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::{families, generators, tags};

    #[test]
    fn paper_families_pass_all_validators() {
        for c in [
            families::h_m(1),
            families::h_m(4),
            families::s_m(2),
            families::g_m(2),
            families::g_m(3),
        ] {
            verify_canonical_execution(&c).unwrap_or_else(|e| panic!("{c}: {e}"));
        }
    }

    #[test]
    fn random_configs_pass_all_validators() {
        let mut rng = radio_util::rng::rng_from(99);
        for _ in 0..15 {
            let g = generators::gnp_connected(9, 0.3, &mut rng);
            let c = tags::random_in_span(g, 3, &mut rng);
            verify_canonical_execution(&c).unwrap_or_else(|e| panic!("{c}: {e}"));
        }
    }

    #[test]
    fn validators_require_traces() {
        let c = families::h_m(1);
        let (outcome, schedule) = CanonicalSchedule::build(&c);
        let factory =
            crate::canonical::CanonicalFactory::new(std::sync::Arc::new(schedule.clone()));
        let ex = radio_sim::Executor::run(&c, &factory, radio_sim::RunOpts::default()).unwrap();
        assert!(check_patient(&c, &ex).is_err());
        assert!(check_block_structure(&c, &outcome, &schedule, &ex).is_err());
    }
}
