//! Proposition 4.4: no universal distributed leader-election algorithm
//! exists, even for 4-node feasible configurations — made executable.
//!
//! The paper's argument is constructive given *any* candidate: every
//! anonymous DRIP has a characteristic round `t` — the first local round in
//! which a node whose history is pure silence transmits (if no such round
//! exists, the DRIP never breaks silence and fails everywhere). On the
//! feasible configuration `H_{t+1}` (tags `a = t+1`, `b = c = 0`,
//! `d = t+2`), nodes `b` and `c` march in lock-step to their first
//! transmission at global round `t`, which *force-wakes* `a` and `d`
//! simultaneously — one round before either tag would have fired. From
//! then on the execution is mirror-symmetric (`a↔d`, `b↔c`): the history
//! pairs stay equal forever, so any decision function marks 0, 2 or 4
//! leaders — never exactly one.
//!
//! [`refute_universal`] runs this construction against a candidate and
//! returns the full evidence; [`gallery`] provides a spread of plausible
//! universal candidates (including the paper's own dedicated algorithm for
//! `H_1`, misused universally) that the experiments table E6 refutes one by
//! one.

use radio_graph::{families, Configuration, NodeId};
use radio_sim::{
    run_election, run_election_model, Action, DripFactory, History, HistoryView, LeaderAlgorithm,
    Msg, PureFactory, RadioModel, RunOpts,
};

/// A candidate universal leader-election algorithm: a DRIP plus a decision
/// function, both configuration-independent.
pub struct UniversalCandidate {
    /// Display name for tables.
    pub name: String,
    /// The protocol.
    pub factory: Box<dyn DripFactory + Send>,
    /// The decision function.
    pub decide: Box<dyn Fn(&History) -> bool + Send + Sync>,
}

/// The evidence refuting one candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Refutation {
    /// The DRIP never transmits on an all-silent history: it cannot break
    /// symmetry anywhere (no node ever hears anything on any `H_m`).
    NeverTransmits {
        /// How many silent rounds were probed before giving up.
        probed_rounds: u64,
    },
    /// The constructed counterexample: `H_{t+1}` with the evidence of
    /// failure.
    FailsOn {
        /// The candidate's characteristic silence-breaking round.
        t: u64,
        /// The failing configuration's index `m = t+1` (i.e. `H_m`).
        m: u64,
        /// Nodes the candidate's decision function marked as leaders on
        /// `H_m` — by symmetry never exactly one.
        leaders: Vec<NodeId>,
        /// Whether histories of `a`/`d` were equal, and of `b`/`c`.
        symmetric_pairs: [bool; 2],
    },
}

impl Refutation {
    /// True when the refutation evidence is complete: either the DRIP is
    /// silent forever, or the leader count is not 1 *and* the symmetric
    /// history pairs coincide.
    pub fn is_conclusive(&self) -> bool {
        match self {
            Refutation::NeverTransmits { .. } => true,
            Refutation::FailsOn {
                leaders,
                symmetric_pairs,
                ..
            } => leaders.len() != 1 && symmetric_pairs.iter().all(|&b| b),
        }
    }
}

/// Finds the candidate's characteristic round `t`: the first local round in
/// which a node with an all-silent history transmits. Returns `None` if the
/// node terminates first or `probe_limit` rounds pass.
pub fn silence_breaking_round(factory: &dyn DripFactory, probe_limit: u64) -> Option<u64> {
    let mut node = factory.spawn();
    let mut history = History::from_entries(vec![radio_sim::Obs::Silence]); // spontaneous wake
    for i in 1..=probe_limit {
        match node.decide(history.view()) {
            Action::Transmit(_) => return Some(i),
            Action::Terminate => return None,
            Action::Listen => history.push(radio_sim::Obs::Silence),
        }
    }
    None
}

/// Runs the Proposition 4.4 construction against a candidate.
///
/// `probe_limit` bounds the search for `t` (a candidate that stays silent
/// longer is refuted as [`Refutation::NeverTransmits`], which is sound: its
/// election time on any `H_m` would exceed the probe limit anyway, and a
/// DRIP that *never* transmits fails on every `H_m`).
pub fn refute_universal(candidate: &UniversalCandidate, probe_limit: u64) -> Refutation {
    refute_universal_model::<radio_sim::NoCollisionDetection>(candidate, probe_limit)
}

/// [`refute_universal`] under an explicit channel model.
///
/// The mirror-symmetry argument is channel-agnostic: whatever the model
/// delivers to `a` it delivers to `d` (and to `b` what it delivers to
/// `c`), so the symmetric-pair evidence survives any [`RadioModel`].
pub fn refute_universal_model<M: RadioModel>(
    candidate: &UniversalCandidate,
    probe_limit: u64,
) -> Refutation {
    let t = match silence_breaking_round(candidate.factory.as_ref(), probe_limit) {
        Some(t) => t,
        None => {
            return Refutation::NeverTransmits {
                probed_rounds: probe_limit,
            }
        }
    };
    let m = t + 1;
    let config = families::h_m(m);
    debug_assert!(
        radio_classifier::summarize(&config).feasible,
        "H_m is feasible (Lemma 4.2)"
    );

    let algorithm = LeaderAlgorithm {
        drip: candidate.factory.as_ref(),
        decide: &|h: &History| (candidate.decide)(h),
    };
    // Generous limit: the candidate terminated its probe node within
    // probe_limit rounds of silence; give the real run ample room.
    let opts = RunOpts::with_max_rounds(8 * (probe_limit + m) + 64);
    let outcome = run_election_model::<M>(&config, &algorithm, opts)
        .expect("candidate DRIPs must terminate within the probe-derived bound");

    let ex = &outcome.execution;
    let symmetric_pairs = [
        ex.history(0) == ex.history(3),
        ex.history(1) == ex.history(2),
    ];
    Refutation::FailsOn {
        t,
        m,
        leaders: outcome.leaders,
        symmetric_pairs,
    }
}

/// A spread of natural universal candidates, each of which solves leader
/// election on *some* configurations — and each of which Proposition 4.4's
/// construction defeats.
pub fn gallery() -> Vec<UniversalCandidate> {
    let mut candidates: Vec<UniversalCandidate> = Vec::new();

    // 1. Claim-by-silence(k): listen k−1 rounds; if still all-silent,
    //    transmit in round k; leader iff the first k entries are silent.
    for k in [1u64, 5] {
        let lifetime = k + 8;
        candidates.push(UniversalCandidate {
            name: format!("claim-by-silence({k})"),
            factory: Box::new(PureFactory::new(
                format!("claim-by-silence({k})"),
                move |h: HistoryView| {
                    let i = h.len() as u64;
                    if i >= lifetime {
                        Action::Terminate
                    } else if i == k && h.all_silent() {
                        Action::Transmit(Msg::ONE)
                    } else {
                        Action::Listen
                    }
                },
            )),
            decide: Box::new(move |h: &History| {
                h.as_slice()
                    .iter()
                    .take(k as usize + 1)
                    .all(|o| o.is_silence())
            }),
        });
    }

    // 2. First-voice: spontaneous wakers shout immediately; forced wakers
    //    stay silent. Leader iff you woke spontaneously and never heard a
    //    message afterwards.
    candidates.push(UniversalCandidate {
        name: "first-voice".into(),
        factory: Box::new(PureFactory::new("first-voice", |h: HistoryView| {
            let i = h.len() as u64;
            if i >= 10 {
                Action::Terminate
            } else if i == 1 && h[0].is_silence() {
                Action::Transmit(Msg::ONE)
            } else {
                Action::Listen
            }
        })),
        decide: Box::new(|h: &History| h[0].is_silence() && h.first_message().is_none()),
    });

    // 3. Binary backoff: transmit at rounds 1, 2, 4, 8 while all-silent;
    //    leader iff still all-silent at round 12.
    candidates.push(UniversalCandidate {
        name: "binary-backoff".into(),
        factory: Box::new(PureFactory::new("binary-backoff", |h: HistoryView| {
            let i = h.len() as u64;
            if i >= 12 {
                Action::Terminate
            } else if h.all_silent() && i.is_power_of_two() && i <= 8 {
                Action::Transmit(Msg::ONE)
            } else {
                Action::Listen
            }
        })),
        decide: Box::new(|h: &History| h.all_silent()),
    });

    // 4. Relay-flood: everyone transmits once in their first round (be it
    //    after spontaneous or forced wake-up); leader iff woken
    //    spontaneously — "the sources claim".
    candidates.push(UniversalCandidate {
        name: "relay-flood".into(),
        factory: Box::new(PureFactory::new("relay-flood", |h: HistoryView| {
            let i = h.len() as u64;
            if i >= 8 {
                Action::Terminate
            } else if i == 1 {
                Action::Transmit(Msg::ONE)
            } else {
                Action::Listen
            }
        })),
        decide: Box::new(|h: &History| h[0].is_silence()),
    });

    // 5. The paper's own dedicated algorithm for H_1, misused as if it
    //    were universal: dedicated ≠ universal.
    let h1 = families::h_m(1);
    let dedicated = crate::dedicated::DedicatedElection::solve(&h1).expect("H_1 is feasible");
    let decision = dedicated.decision();
    candidates.push(UniversalCandidate {
        name: "dedicated-H1-misused".into(),
        factory: Box::new(dedicated.factory()),
        decide: Box::new(move |h: &History| decision.is_leader(h)),
    });

    candidates
}

/// Convenience wrapper: refute every gallery candidate. Used by the E6
/// experiment and the negative-result integration tests.
pub fn refute_gallery(probe_limit: u64) -> Vec<(String, Refutation)> {
    gallery()
        .into_iter()
        .map(|c| {
            let r = refute_universal(&c, probe_limit);
            (c.name, r)
        })
        .collect()
}

/// Checks that a candidate does solve leader election on a specific
/// configuration (sanity: gallery members are not strawmen — each works
/// somewhere).
pub fn works_on(candidate: &UniversalCandidate, config: &Configuration) -> bool {
    let algorithm = LeaderAlgorithm {
        drip: candidate.factory.as_ref(),
        decide: &|h: &History| (candidate.decide)(h),
    };
    match run_election(config, &algorithm, RunOpts::with_max_rounds(100_000)) {
        Ok(outcome) => outcome.is_valid(),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::generators;

    #[test]
    fn probe_finds_silence_breaking_round() {
        let gallery = gallery();
        // claim-by-silence(1) transmits at local round 1
        assert_eq!(
            silence_breaking_round(gallery[0].factory.as_ref(), 100),
            Some(1)
        );
        // claim-by-silence(5) at round 5
        assert_eq!(
            silence_breaking_round(gallery[1].factory.as_ref(), 100),
            Some(5)
        );
        // dedicated-H1 (σ=2): first transmission at σ+1 = 3
        let dedicated = gallery
            .iter()
            .find(|c| c.name == "dedicated-H1-misused")
            .unwrap();
        assert_eq!(
            silence_breaking_round(dedicated.factory.as_ref(), 100),
            Some(3)
        );
    }

    #[test]
    fn probe_detects_silent_drips() {
        let silent = radio_sim::drip::SilentFactory { lifetime: 5 };
        assert_eq!(silence_breaking_round(&silent, 100), None);
    }

    #[test]
    fn every_gallery_candidate_is_refuted() {
        for (name, refutation) in refute_gallery(1_000) {
            assert!(refutation.is_conclusive(), "{name}: {refutation:?}");
            match refutation {
                Refutation::FailsOn {
                    leaders,
                    symmetric_pairs,
                    m,
                    ..
                } => {
                    assert_ne!(
                        leaders.len(),
                        1,
                        "{name} must not elect exactly one on H_{m}"
                    );
                    assert!(symmetric_pairs[0], "{name}: H_a must equal H_d");
                    assert!(symmetric_pairs[1], "{name}: H_b must equal H_c");
                }
                Refutation::NeverTransmits { .. } => {
                    panic!("{name}: gallery candidates all transmit eventually")
                }
            }
        }
    }

    #[test]
    fn candidates_are_not_strawmen() {
        // Each candidate genuinely elects a leader on some configuration:
        // the generic ones on a strongly asymmetric 2-path, the misused
        // dedicated algorithm on its own configuration H_1.
        let asym = Configuration::new(generators::path(2), vec![0, 7]).unwrap();
        for c in gallery() {
            let works_somewhere = if c.name == "dedicated-H1-misused" {
                works_on(&c, &families::h_m(1))
            } else {
                works_on(&c, &asym)
            };
            assert!(
                works_somewhere,
                "{} should solve election somewhere",
                c.name
            );
        }
    }

    #[test]
    fn refutation_counterexample_is_feasible() {
        // The failing configuration must itself be feasible — that is the
        // point of Proposition 4.4.
        let gallery = gallery();
        for c in &gallery {
            if let Refutation::FailsOn { m, .. } = refute_universal(c, 1_000) {
                assert!(crate::api::is_feasible(&families::h_m(m)));
            }
        }
    }
}
