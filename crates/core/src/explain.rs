//! Infeasibility explanation: *why* can no leader be elected?
//!
//! `Classifier` answers "No" by reaching a stable partition with no
//! singleton class. This module turns that verdict into evidence a human
//! can check:
//!
//! * the **stable partition** itself — every class of ≥ 2 nodes is a set
//!   of mutual "history twins" that no algorithm can split;
//! * a **witness pair** per class — two concrete nodes whose canonical
//!   histories are verified equal by simulation;
//! * when one exists (search is exhaustive, so small `n` only), an
//!   **automorphism certificate**: a non-trivial symmetry of the tagged
//!   configuration mapping one witness to the other, which proves the
//!   twins indistinguishable under *every* algorithm, not just the
//!   canonical one. Not every infeasible configuration has such a
//!   certificate — history equivalence is coarser than orbit equivalence —
//!   so the certificate is optional by design.

use radio_classifier::{
    ClassifierWorkspace, Engine, FinalOnly, IterationView, ListsSink, RecordSink,
};
use radio_graph::{Configuration, NodeId};
use radio_sim::{Executor, RunOpts};

use crate::schedule::CanonicalSchedule;

/// The explainer's composite sink: streams the canonical-list entries
/// (for the verifying simulation's schedule) *and* keeps the final stable
/// partition (the twin classes) — one classifier run, no per-node
/// iteration records.
#[derive(Default)]
struct ListsAndFinal {
    lists: ListsSink,
    finale: FinalOnly,
}

impl RecordSink for ListsAndFinal {
    fn record(&mut self, iteration: usize, view: IterationView<'_>) {
        self.lists.record(iteration, view);
        self.finale.record(iteration, view);
    }
}

/// Evidence for one non-singleton class of the stable partition.
#[derive(Debug, Clone)]
pub struct TwinClass {
    /// Class id in the stable partition.
    pub class: u32,
    /// All members.
    pub members: Vec<NodeId>,
    /// A verified witness pair (first two members).
    pub witness: (NodeId, NodeId),
    /// Whether the canonical execution confirms equal histories for the
    /// witness pair (always true; kept explicit for reporting).
    pub histories_equal: bool,
    /// A non-trivial configuration automorphism mapping `witness.0` to
    /// `witness.1`, when one exists and the search was attempted (n ≤ 8).
    pub automorphism: Option<Vec<NodeId>>,
}

/// The full infeasibility report.
#[derive(Debug, Clone)]
pub struct InfeasibilityReport {
    /// Iterations until the partition stabilized.
    pub iterations: usize,
    /// Number of classes in the stable partition.
    pub classes: u32,
    /// One entry per non-singleton class.
    pub twins: Vec<TwinClass>,
}

impl InfeasibilityReport {
    /// Renders the report as human-readable text.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "INFEASIBLE: partition stabilized after {} iteration(s) into {} class(es), \
             none a singleton",
            self.iterations, self.classes
        );
        for twin in &self.twins {
            let _ = writeln!(
                out,
                "  class {}: nodes {:?} are mutual history twins (witness v{} ≡ v{})",
                twin.class, twin.members, twin.witness.0, twin.witness.1
            );
            match &twin.automorphism {
                Some(perm) => {
                    let _ = writeln!(
                        out,
                        "    certificate: automorphism {:?} maps v{} ↦ v{} — \
                         indistinguishable under every algorithm",
                        perm, twin.witness.0, perm[twin.witness.0 as usize]
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "    no automorphism certificate (twins by execution dynamics, \
                         not graph symmetry)"
                    );
                }
            }
        }
        out
    }
}

/// Errors from [`explain_infeasibility`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExplainError {
    /// The configuration is feasible — nothing to explain.
    Feasible {
        /// The node that would be elected.
        leader: NodeId,
    },
}

impl std::fmt::Display for ExplainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExplainError::Feasible { leader } => {
                write!(
                    f,
                    "configuration is feasible (leader v{leader}); nothing to explain"
                )
            }
        }
    }
}

impl std::error::Error for ExplainError {}

/// Builds the infeasibility report for `config`.
///
/// Automorphism certificates are searched exhaustively when `n ≤ 8`
/// (skipped above, where the factorial search would not terminate in
/// reasonable time).
pub fn explain_infeasibility(config: &Configuration) -> Result<InfeasibilityReport, ExplainError> {
    let mut workspace = ClassifierWorkspace::new();
    let mut sink = ListsAndFinal::default();
    let summary = workspace.classify_with_sink(config, Engine::Fast, &mut sink);
    if summary.feasible {
        return Err(ExplainError::Feasible {
            leader: summary.leader.expect("feasible ⇒ leader"),
        });
    }
    let schedule =
        CanonicalSchedule::from_lists(sink.lists.into_lists(config.span(), summary.leader_class));
    let partition = sink
        .finale
        .into_partition()
        .expect("at least one iteration ran");

    // Verify witness histories by actually running the canonical DRIP.
    let factory = crate::canonical::CanonicalFactory::new(std::sync::Arc::new(schedule));
    let execution =
        Executor::run(config, &factory, RunOpts::default()).expect("canonical DRIP terminates");

    let mut twins = Vec::new();
    for class in 1..=partition.num_classes() {
        let members = partition.members(class);
        if members.len() < 2 {
            continue;
        }
        let witness = (members[0], members[1]);
        let histories_equal = execution.history(witness.0) == execution.history(witness.1);
        debug_assert!(
            histories_equal,
            "stable same-class nodes must be history twins"
        );
        let automorphism = if config.size() <= 8 {
            find_mapping_automorphism(config, witness.0, witness.1)
        } else {
            None
        };
        twins.push(TwinClass {
            class,
            members,
            witness,
            histories_equal,
            automorphism,
        });
    }

    Ok(InfeasibilityReport {
        iterations: summary.iterations,
        classes: partition.num_classes(),
        twins,
    })
}

/// Exhaustive DFS for an automorphism with `perm[from] == to`, with
/// tag/adjacency pruning at every placement. Returns the permutation found.
fn find_mapping_automorphism(
    config: &Configuration,
    from: NodeId,
    to: NodeId,
) -> Option<Vec<NodeId>> {
    fn search(
        config: &Configuration,
        perm: &mut Vec<NodeId>,
        k: usize,
        from: NodeId,
        to: NodeId,
        out: &mut Option<Vec<NodeId>>,
    ) -> bool {
        let n = config.size();
        if k == n {
            if perm[from as usize] == to && config.is_automorphism(perm) {
                *out = Some(perm.clone());
                return true;
            }
            return false;
        }
        for i in k..n {
            perm.swap(k, i);
            let tags = config.tags();
            let ok_tag = tags[k] == tags[perm[k] as usize];
            let ok_pin = k != from as usize || perm[k] == to;
            let ok_adj = (0..k).all(|u| {
                config.csr().has_edge(u as NodeId, k as NodeId)
                    == config.csr().has_edge(perm[u], perm[k])
            });
            if ok_tag && ok_pin && ok_adj && search(config, perm, k + 1, from, to, out) {
                perm.swap(k, i);
                return true;
            }
            perm.swap(k, i);
        }
        false
    }

    let mut perm: Vec<NodeId> = (0..config.size() as NodeId).collect();
    let mut out = None;
    search(config, &mut perm, 0, from, to, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::{families, generators};

    #[test]
    fn s_m_explained_with_mirror_certificates() {
        let config = families::s_m(2);
        let report = explain_infeasibility(&config).unwrap();
        assert_eq!(report.classes, 2);
        assert_eq!(report.twins.len(), 2);
        for twin in &report.twins {
            assert!(twin.histories_equal);
            let perm = twin.automorphism.as_ref().expect("mirror symmetry exists");
            assert!(config.is_automorphism(perm));
            assert_eq!(perm[twin.witness.0 as usize], twin.witness.1);
        }
        let text = report.render();
        assert!(text.contains("INFEASIBLE"));
        assert!(text.contains("certificate"));
    }

    #[test]
    fn feasible_configs_are_rejected() {
        let err = explain_infeasibility(&families::h_m(2)).unwrap_err();
        assert_eq!(err, ExplainError::Feasible { leader: 0 });
        assert!(err.to_string().contains("v0"));
    }

    #[test]
    fn uniform_cycle_certificate() {
        let config = Configuration::with_uniform_tags(generators::cycle(5), 0).unwrap();
        let report = explain_infeasibility(&config).unwrap();
        assert_eq!(report.classes, 1);
        assert_eq!(report.twins.len(), 1);
        assert_eq!(report.twins[0].members.len(), 5);
        assert!(
            report.twins[0].automorphism.is_some(),
            "rotations certify the cycle"
        );
    }

    #[test]
    fn uniform_path_center_class_is_singleton_but_still_infeasible() {
        // P_5 uniform: classes {ends}, {2nd ring}, {centre}. The centre is
        // a WL/structural singleton, yet the configuration is infeasible —
        // the *stable partition* has no singleton because Classifier's
        // refinement stalls instantly (nothing is ever heard).
        let config = Configuration::with_uniform_tags(generators::path(5), 0).unwrap();
        let report = explain_infeasibility(&config).unwrap();
        assert_eq!(report.classes, 1, "no refinement is possible at all");
        assert_eq!(report.twins[0].members.len(), 5);
        // witness pair (0, 1): an end and an interior node — no
        // automorphism maps them (degrees differ), so no certificate.
        assert!(report.twins[0].automorphism.is_none());
    }

    #[test]
    fn large_configs_skip_certificate_search() {
        let config = Configuration::with_uniform_tags(generators::cycle(12), 0).unwrap();
        let report = explain_infeasibility(&config).unwrap();
        assert!(
            report.twins[0].automorphism.is_none(),
            "n > 8: search skipped"
        );
        assert!(report.render().contains("no automorphism certificate"));
    }
}
