//! `anon-radio` — command-line front end for the library.
//!
//! ```sh
//! anon-radio family h 3                # print the H_3 configuration file
//! anon-radio family h 3 | anon-radio check -     # decide feasibility
//! anon-radio family g 4 | anon-radio trace -     # refinement trace
//! anon-radio family h 3 | anon-radio elect -     # run the election
//! anon-radio family h 3 | anon-radio elect --model cd -   # … under collision detection
//! anon-radio family s 2 | anon-radio dot -       # Graphviz export
//! ```
//!
//! `--model <no-cd|cd|beep>` selects the channel semantics for `elect`
//! (default: `no-cd`, the paper's model). `--no-leap` disables the
//! engine's time-leap scheduler and executes every global round one by
//! one — the result is bit-identical, only slower; useful as an escape
//! hatch and for timing comparisons.
//!
//! Configuration files use the `radio-graph` text format:
//!
//! ```text
//! config <n> <m>
//! tags <t_0> … <t_{n-1}>
//! edge <u> <v>   (m lines)
//! ```

#![forbid(unsafe_code)]

use std::io::Read;

use radio_graph::{families, io, Configuration};
use radio_sim::ModelKind;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `campaign` owns its flag grammar (grid lists, shard/thread counts):
    // hand it the raw arguments before the shared --model/--no-leap
    // extraction below can reject them.
    if args.first().map(String::as_str) == Some("campaign") {
        std::process::exit(campaign_command(&args[1..]));
    }
    // `rows` is the offline row-format toolbox (JSONL ↔ binary).
    if args.first().map(String::as_str) == Some("rows") {
        std::process::exit(rows_command(&args[1..]));
    }
    // `serve` owns its flag grammar too (transport, pool sizing).
    if args.first().map(String::as_str) == Some("serve") {
        std::process::exit(serve_command(&args[1..]));
    }
    let model = match extract_model(&mut args) {
        Ok(model) => model,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    let no_leap = extract_flag(&mut args, "--no-leap");
    // Only `elect` runs a simulation; silently ignoring --model or
    // --no-leap elsewhere would let a sweep produce identical results
    // without warning.
    if (model.is_some() || no_leap) && args.first().map(String::as_str) != Some("elect") {
        eprintln!("error: --model/--no-leap only apply to the `elect` subcommand");
        std::process::exit(2);
    }
    let model = model.unwrap_or_default();
    let opts = if no_leap {
        radio_sim::RunOpts::default().no_leap()
    } else {
        radio_sim::RunOpts::default()
    };
    let code = match args.first().map(String::as_str) {
        Some("check") => with_config(&args, |config| {
            // Pure decision: the record-free classifier path — nothing but
            // the summary is materialized.
            let summary = radio_classifier::summarize(config);
            println!("{config}");
            if summary.feasible {
                println!(
                    "FEASIBLE — leader class {} after {} iteration(s)",
                    summary.leader_class.expect("feasible"),
                    summary.iterations
                );
            } else {
                println!(
                    "INFEASIBLE — partition stabilized after {} iteration(s)",
                    summary.iterations
                );
            }
            0
        }),
        Some("trace") => with_config(&args, |config| {
            let outcome = radio_classifier::classify(config);
            print!("{}", radio_classifier::trace::render(config, &outcome));
            0
        }),
        // `elect --family …` builds the configuration CSR-direct from a
        // scenario spec instead of parsing a text file — the only route
        // that scales to millions of nodes (a config file for n = 10⁶
        // would be tens of MB of edge lines).
        Some("elect") if args.iter().any(|a| a == "--family") => {
            elect_family_command(&args[1..], model, opts)
        }
        Some("elect") => with_config(&args, |config| {
            match anon_radio::elect_leader_with(config, model, opts) {
                Ok(report) => {
                    println!("{config}");
                    println!(
                        "model: {model} | leader: v{} | phases: {} | local rounds: {} | \
                         done by global round {} | transmissions: {} | \
                         engine: {} stepped + {} leapt",
                        report.leader,
                        report.phases,
                        report.rounds_local,
                        report.completion_round,
                        report.transmissions,
                        report.rounds_stepped,
                        report.rounds_leapt
                    );
                    0
                }
                Err(e) => {
                    eprintln!("election failed under model {model}: {e}");
                    1
                }
            }
        }),
        Some("dot") => with_config(&args, |config| {
            print!("{}", io::to_dot(config, "configuration"));
            0
        }),
        Some("compile") => with_config(&args, |config| {
            let (outcome, schedule) = anon_radio::CanonicalSchedule::build(config);
            println!("{config}");
            println!(
                "classifier: {} after {} iteration(s)",
                if outcome.feasible {
                    "FEASIBLE"
                } else {
                    "INFEASIBLE"
                },
                outcome.iterations
            );
            print!("{}", schedule.render());
            0
        }),
        Some("explain") => {
            with_config(
                &args,
                |config| match anon_radio::explain::explain_infeasibility(config) {
                    Ok(report) => {
                        println!("{config}");
                        print!("{}", report.render());
                        0
                    }
                    Err(e) => {
                        println!("{config}");
                        println!("{e}");
                        0
                    }
                },
            )
        }
        Some("family") => family_command(&args),
        _ => usage(),
    };
    std::process::exit(code);
}

/// Strips a `--model <name>` (or `--model=<name>`) flag from `args`,
/// returning the selected channel model (`None` when the flag is absent).
fn extract_model(args: &mut Vec<String>) -> Result<Option<ModelKind>, String> {
    let mut model = None;
    let mut i = 0;
    while i < args.len() {
        if let Some(value) = args[i].strip_prefix("--model=") {
            model = Some(value.parse()?);
            args.remove(i);
        } else if args[i] == "--model" {
            let value = args
                .get(i + 1)
                .cloned()
                .ok_or_else(|| "--model needs a value (no-cd, cd, or beep)".to_string())?;
            model = Some(value.parse()?);
            args.drain(i..=i + 1);
        } else {
            i += 1;
        }
    }
    Ok(model)
}

/// Strips a boolean `flag` from `args`, returning whether it was present.
fn extract_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != flag);
    args.len() != before
}

/// `anon-radio campaign` — execute a declarative election campaign grid
/// shard by shard and emit one JSONL aggregate row per cell.
fn campaign_command(args: &[String]) -> i32 {
    use anon_radio::campaign::{CampaignRunner, CampaignSpec, FamilySpec, Phase, TagStrategy};

    fn parse_list<T: std::str::FromStr>(value: &str, what: &str) -> Result<Vec<T>, String>
    where
        T::Err: std::fmt::Display,
    {
        let items: Result<Vec<T>, _> = value.split(',').map(str::parse::<T>).collect();
        items.map_err(|e| format!("bad {what} list `{value}`: {e}"))
    }

    let mut phase = Phase::Elect;
    let mut families: Vec<FamilySpec> = vec![FamilySpec::Path, FamilySpec::Star];
    let mut tag_strategies: Vec<TagStrategy> = vec![TagStrategy::Uniform];
    let mut sizes: Vec<usize> = vec![8];
    let mut spans: Vec<u64> = vec![4];
    let mut models: Option<Vec<ModelKind>> = None;
    let mut reps = 3usize;
    let mut shards = 8usize;
    let mut threads = radio_sim::parallel::default_threads();
    let mut seed = radio_util::rng::DEFAULT_ROOT_SEED;
    let mut resume_from = 0usize;
    let mut no_leap = false;
    let mut no_cache = false;
    let mut cache_capacity: Option<usize> = None;
    let mut no_batch = false;
    let mut batch_size: Option<usize> = None;
    let mut out: Option<String> = None;
    let mut binary_rows = false;

    let parsed: Result<(), String> = (|| {
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |flag: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match arg.as_str() {
                "--phase" => phase = value("--phase")?.parse()?,
                "--families" => families = parse_list(&value("--families")?, "family")?,
                "--tags" => tag_strategies = parse_list(&value("--tags")?, "tag strategy")?,
                "--sizes" => sizes = parse_list(&value("--sizes")?, "size")?,
                "--spans" => spans = parse_list(&value("--spans")?, "span")?,
                "--models" => models = Some(parse_list(&value("--models")?, "model")?),
                "--reps" => {
                    reps = value("--reps")?
                        .parse()
                        .map_err(|e| format!("--reps: {e}"))?
                }
                "--shards" => {
                    shards = value("--shards")?
                        .parse()
                        .map_err(|e| format!("--shards: {e}"))?
                }
                "--threads" => {
                    threads = value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?
                }
                "--seed" => {
                    seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?
                }
                "--resume-from" => {
                    resume_from = value("--resume-from")?
                        .parse()
                        .map_err(|e| format!("--resume-from: {e}"))?
                }
                "--no-leap" => no_leap = true,
                "--no-cache" => no_cache = true,
                "--cache-capacity" => {
                    cache_capacity = Some(
                        value("--cache-capacity")?
                            .parse()
                            .map_err(|e| format!("--cache-capacity: {e}"))?,
                    )
                }
                "--no-batch" => no_batch = true,
                "--batch-size" => {
                    batch_size = Some(
                        value("--batch-size")?
                            .parse()
                            .map_err(|e| format!("--batch-size: {e}"))?,
                    )
                }
                "--out" => out = Some(value("--out")?),
                "--row-format" => {
                    binary_rows = match value("--row-format")?.as_str() {
                        "binary" => true,
                        "jsonl" => false,
                        other => {
                            return Err(format!(
                                "--row-format must be `jsonl` or `binary`, got `{other}`"
                            ))
                        }
                    }
                }
                other => return Err(format!("unknown campaign argument `{other}`")),
            }
        }
        Ok(())
    })();
    if let Err(msg) = parsed {
        eprintln!("error: {msg}");
        return 2;
    }
    // The classify phase runs no simulation: its grid is family × n ×
    // span, and a model axis would silently multiply identical rows.
    let models = match (phase, models) {
        (Phase::Classify, Some(_)) => {
            eprintln!(
                "error: --models does not apply to --phase classify (no simulation runs; \
                 the grid is family × n × span)"
            );
            return 2;
        }
        (Phase::Classify, None) => vec![ModelKind::NoCollisionDetection],
        (Phase::Elect, models) => models.unwrap_or_else(|| ModelKind::ALL.to_vec()),
    };
    // Binary output is a file format, not a stream format: stdout would
    // interleave raw bytes with a terminal.
    if binary_rows && out.is_none() {
        eprintln!("error: --row-format binary requires --out FILE");
        return 2;
    }
    if resume_from > 0 {
        if let Some(path) = &out {
            if std::path::Path::new(path).exists() {
                eprintln!(
                    "error: {path} already exists — a resumed campaign emits rows for the \
                     remaining shards only, and writing them here would destroy the \
                     interrupted run's checkpoint; pass a fresh --out path and combine \
                     the two files afterwards"
                );
                return 2;
            }
        }
    }

    let opts = if no_leap {
        radio_sim::RunOpts::default().no_leap()
    } else {
        radio_sim::RunOpts::default()
    };
    let cache = match (no_cache, cache_capacity) {
        (true, Some(_)) => {
            eprintln!("error: --cache-capacity conflicts with --no-cache");
            return 2;
        }
        (true, None) => anon_radio::cache::CacheConfig::disabled(),
        (false, Some(0)) => {
            eprintln!("error: --cache-capacity must be at least 1 (or pass --no-cache)");
            return 2;
        }
        (false, Some(capacity)) => anon_radio::cache::CacheConfig::with_capacity(capacity),
        (false, None) => anon_radio::cache::CacheConfig::default(),
    };
    let batch = match (no_batch, batch_size) {
        (true, Some(_)) => {
            eprintln!("error: --batch-size conflicts with --no-batch");
            return 2;
        }
        (true, None) => anon_radio::campaign::BatchConfig::disabled(),
        (false, Some(0)) => {
            eprintln!("error: --batch-size must be at least 1 (or pass --no-batch)");
            return 2;
        }
        (false, Some(size)) => anon_radio::campaign::BatchConfig::with_size(size),
        (false, None) => anon_radio::campaign::BatchConfig::default(),
    };
    let spec = CampaignSpec {
        phase,
        families,
        tags: tag_strategies,
        sizes,
        spans,
        models,
        reps,
        seed,
        opts,
        cache,
        batch,
    };
    // Whole-grid validation: every family × size cell must be realizable
    // as-is — unrealizable combinations (cycle below 3 nodes, a pinned
    // grid:16x4 crossed with a foreign size) are an error, never a clamp,
    // so no row's "n" can disagree with its simulated graph.
    if let Err(msg) = spec.validate() {
        eprintln!("error: {msg}");
        return 2;
    }
    let total = spec.total_runs();
    let mut runner = CampaignRunner::new(spec, shards);
    // An out-of-range cursor is a usage error, not a no-op: silently
    // clamping used to exit 0 with a garbled resume note and an all-null
    // `runs:0` row per cell — rows that poison a merged checkpoint.
    if resume_from >= runner.shard_count() {
        eprintln!(
            "error: --resume-from {resume_from} is out of range — this campaign has {} \
             shard(s), so valid resume cursors are 0..{} (the cursor is the shard number \
             printed by the interrupted run's last checkpoint line)",
            runner.shard_count(),
            runner.shard_count()
        );
        return 2;
    }
    runner.skip_to(resume_from);
    eprintln!(
        "campaign ({phase} phase): {} cells × {reps} rep(s) = {total} runs over {} shard(s), \
         {threads} thread(s)",
        total / reps,
        runner.shard_count()
    );
    let mut executed = 0usize;
    while let Some(report) = runner.run_next_shard(threads) {
        executed += report.runs;
        eprintln!(
            "  shard {}/{}: {} run(s) in {:.3}s ({executed}/{total} done)",
            report.shard + 1,
            runner.shard_count(),
            report.runs,
            report.wall_s
        );
        // Checkpoint after every shard: if the process dies mid-campaign,
        // the file holds the rows aggregated so far and the stderr log
        // names the shard to pass to --resume-from.
        if let Some(path) = &out {
            if let Err(e) = write_rows_as(path, &runner, binary_rows) {
                eprintln!("error: could not checkpoint {path}: {e}");
                return 1;
            }
        }
    }

    // End-of-run cache summary: hit/miss/eviction totals surface key
    // stability regressions without parsing JSONL. (The split between
    // exact and canonical hits tells repeated-configuration reuse apart
    // from cross-configuration trace sharing.)
    match runner.cache_stats() {
        Some(stats) => eprintln!(
            "cache: {} hit(s) ({} exact, {} canonical), {} miss(es), {} eviction(s)",
            stats.hits,
            stats.exact_hits,
            stats.canonical_hits(),
            stats.misses,
            stats.evictions
        ),
        None if phase == Phase::Elect => eprintln!("cache: disabled"),
        None => {}
    }

    if resume_from > 0 {
        eprintln!(
            "note: resumed at shard {resume_from} — the emitted rows aggregate shards \
             {resume_from}..{} only (runs {}..{total} of the campaign); per cell, the \
             counters add across the two files and min/max/count-weighted mean combine \
             directly; for exact merged std-dev/quantiles drive CampaignRunner + \
             CellAggregate::merge programmatically, or rerun without --resume-from",
            runner.shard_count(),
            runner.shard_range(resume_from).0,
        );
    }
    // Peak RSS is process-wide observability (the per-run workspace
    // high-water lives in the rows' mem_hw column); it lands on stderr so
    // the scale-smoke CI job and humans can eyeball regressions.
    if let Some(peak) = radio_util::mem::peak_rss_bytes() {
        eprintln!("peak rss: {:.1} MiB", peak as f64 / (1 << 20) as f64);
    }
    match &out {
        Some(path) => {
            // Already checkpointed after the final shard; rewrite once
            // more to cover the zero-shard (fully skipped) case.
            if let Err(e) = write_rows_as(path, &runner, binary_rows) {
                eprintln!("error: could not write {path}: {e}");
                return 1;
            }
            eprintln!(
                "wrote {} {} row(s) to {path}",
                runner.aggregates().count(),
                if binary_rows { "binary" } else { "JSONL" }
            );
        }
        None => {
            use std::io::Write as _;
            let mut stdout = std::io::stdout().lock();
            for row in &runner.jsonl_rows() {
                if writeln!(stdout, "{row}").is_err() {
                    return 0; // closed pipe: clean stop, like `family`
                }
            }
        }
    }
    0
}

/// `anon-radio serve` — the resident election service: long-lived workers
/// with warm workspaces and a shared schedule cache answering
/// `elect`/`classify`/`campaign-cell` jobs over line-delimited JSON.
/// Protocol and supervision semantics live in [`anon_radio::serve`].
fn serve_command(args: &[String]) -> i32 {
    use anon_radio::serve::{serve_session, serve_tcp, ServeOptions};

    let mut stdin_stdout = false;
    let mut tcp: Option<String> = None;
    let mut unix_path: Option<String> = None;
    let mut threads = radio_sim::parallel::default_threads();
    let mut queue = 16usize;
    let mut no_cache = false;
    let mut cache_capacity: Option<usize> = None;
    let parsed: Result<(), String> = (|| {
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |flag: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match arg.as_str() {
                "--stdin-stdout" => stdin_stdout = true,
                "--tcp" => tcp = Some(value("--tcp")?),
                "--unix" => unix_path = Some(value("--unix")?),
                "--threads" => {
                    threads = value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?
                }
                "--queue" => {
                    queue = value("--queue")?
                        .parse()
                        .map_err(|e| format!("--queue: {e}"))?
                }
                "--no-cache" => no_cache = true,
                "--cache-capacity" => {
                    cache_capacity = Some(
                        value("--cache-capacity")?
                            .parse()
                            .map_err(|e| format!("--cache-capacity: {e}"))?,
                    )
                }
                other => return Err(format!("unknown serve argument `{other}`")),
            }
        }
        Ok(())
    })();
    if let Err(msg) = parsed {
        eprintln!("error: {msg}");
        return 2;
    }
    let transports =
        usize::from(stdin_stdout) + usize::from(tcp.is_some()) + usize::from(unix_path.is_some());
    if transports != 1 {
        eprintln!("error: pass exactly one transport: --stdin-stdout, --tcp ADDR, or --unix PATH");
        return 2;
    }
    if threads == 0 || queue == 0 {
        eprintln!("error: --threads and --queue must be at least 1");
        return 2;
    }
    let cache = match (no_cache, cache_capacity) {
        (true, Some(_)) => {
            eprintln!("error: --cache-capacity conflicts with --no-cache");
            return 2;
        }
        (true, None) => anon_radio::cache::CacheConfig::disabled(),
        (false, Some(0)) => {
            eprintln!("error: --cache-capacity must be at least 1 (or pass --no-cache)");
            return 2;
        }
        (false, Some(capacity)) => anon_radio::cache::CacheConfig::with_capacity(capacity),
        (false, None) => anon_radio::cache::CacheConfig::default(),
    };
    let opts = ServeOptions {
        threads,
        queue,
        cache,
    };
    if stdin_stdout {
        // `Stdout` (not the lock) goes to the writer thread: the handle is
        // Send and line-buffers exactly like the campaign row stream.
        let mut out = std::io::stdout();
        let summary = serve_session(std::io::stdin().lock(), &mut out, &opts);
        eprintln!(
            "serve: {} reply line(s), {} written, {} dropped ({})",
            summary.jobs,
            summary.answered,
            summary.dropped,
            if summary.shutdown {
                "shutdown job"
            } else {
                "input closed"
            }
        );
        return 0;
    }
    if let Some(addr) = tcp {
        let listener = match std::net::TcpListener::bind(&addr) {
            Ok(listener) => listener,
            Err(e) => {
                eprintln!("error: cannot bind tcp {addr}: {e}");
                return 2;
            }
        };
        if let Ok(local) = listener.local_addr() {
            eprintln!("serve: listening on tcp {local} ({threads} worker(s), queue {queue})");
        }
        return match serve_tcp(listener, &opts) {
            Ok(()) => {
                eprintln!("serve: shut down");
                0
            }
            Err(e) => {
                eprintln!("error: serve failed: {e}");
                1
            }
        };
    }
    let path = unix_path.expect("transport count was checked");
    serve_unix_at(&path, &opts)
}

#[cfg(unix)]
fn serve_unix_at(path: &str, opts: &anon_radio::serve::ServeOptions) -> i32 {
    // A stale socket file from a previous run would make bind fail; a
    // *live* one should. Only remove paths that are sockets.
    if let Ok(meta) = std::fs::symlink_metadata(path) {
        use std::os::unix::fs::FileTypeExt as _;
        if !meta.file_type().is_socket() {
            eprintln!("error: {path} exists and is not a socket");
            return 2;
        }
    }
    let listener = match std::os::unix::net::UnixListener::bind(path) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!(
                "error: cannot bind unix socket {path}: {e} (remove the file if it is stale)"
            );
            return 2;
        }
    };
    eprintln!(
        "serve: listening on unix {path} ({} worker(s), queue {})",
        opts.threads, opts.queue
    );
    let result = anon_radio::serve::serve_unix(listener, opts);
    let _ = std::fs::remove_file(path);
    match result {
        Ok(()) => {
            eprintln!("serve: shut down");
            0
        }
        Err(e) => {
            eprintln!("error: serve failed: {e}");
            1
        }
    }
}

#[cfg(not(unix))]
fn serve_unix_at(_path: &str, _opts: &anon_radio::serve::ServeOptions) -> i32 {
    eprintln!("error: --unix sockets are only available on unix platforms (use --tcp)");
    2
}

/// Writes the campaign's rows to `path` in the selected format (whole-file
/// rewrite — rows are running aggregates, so each checkpoint supersedes
/// the previous one).
fn write_rows_as(
    path: &str,
    runner: &anon_radio::campaign::CampaignRunner,
    binary: bool,
) -> std::io::Result<()> {
    if binary {
        std::fs::write(path, anon_radio::row::write_binary(&runner.rows()))
    } else {
        write_rows(path, &runner.jsonl_rows())
    }
}

/// `anon-radio rows convert <in> <out>` — flip a row file between the
/// JSONL and compact binary encodings (the direction is sniffed from the
/// input's magic bytes). The conversion is lossless in both directions.
fn rows_command(args: &[String]) -> i32 {
    let (input, output) = match (
        args.first().map(String::as_str),
        args.get(1),
        args.get(2),
        args.len(),
    ) {
        (Some("convert"), Some(input), Some(output), 3) => (input, output),
        _ => {
            eprintln!("usage: anon-radio rows convert <in> <out>");
            return 2;
        }
    };
    let bytes = match std::fs::read(input) {
        Ok(bytes) => bytes,
        Err(e) => {
            eprintln!("error: could not read {input}: {e}");
            return 2;
        }
    };
    let converted: Result<Vec<u8>, anon_radio::row::RowError> =
        if anon_radio::row::is_binary(&bytes) {
            anon_radio::row::binary_to_jsonl(&bytes).map(String::into_bytes)
        } else {
            match String::from_utf8(bytes) {
                Ok(text) => anon_radio::row::jsonl_to_binary(&text),
                Err(e) => {
                    eprintln!("error: {input} is neither binary rows nor UTF-8 JSONL: {e}");
                    return 2;
                }
            }
        };
    match converted {
        Ok(data) => {
            if let Err(e) = std::fs::write(output, data) {
                eprintln!("error: could not write {output}: {e}");
                return 1;
            }
            0
        }
        Err(e) => {
            eprintln!("error: {input}: {e}");
            1
        }
    }
}

/// `anon-radio elect --family <spec> --size N --span S [--tags STRAT]
/// [--seed N]` — build one configuration CSR-direct and run the election
/// on it. This is the million-node entry point: generation streams into
/// the CSR with no intermediate adjacency-list graph.
fn elect_family_command(args: &[String], model: ModelKind, opts: radio_sim::RunOpts) -> i32 {
    use anon_radio::campaign::{FamilySpec, TagStrategy};
    use radio_util::rng::{derive, rng_from};

    let mut family: Option<FamilySpec> = None;
    let mut n = 8usize;
    let mut span = 4u64;
    let mut tags = TagStrategy::Uniform;
    let mut seed = radio_util::rng::DEFAULT_ROOT_SEED;
    let parsed: Result<(), String> = (|| {
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |flag: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs a value"))
            };
            match arg.as_str() {
                "--family" => family = Some(value("--family")?.parse()?),
                "--size" => {
                    n = value("--size")?
                        .parse()
                        .map_err(|e| format!("--size: {e}"))?
                }
                "--span" => {
                    span = value("--span")?
                        .parse()
                        .map_err(|e| format!("--span: {e}"))?
                }
                "--tags" => tags = value("--tags")?.parse()?,
                "--seed" => {
                    seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?
                }
                other => return Err(format!("unknown elect --family argument `{other}`")),
            }
        }
        Ok(())
    })();
    if let Err(msg) = parsed {
        eprintln!("error: {msg}");
        return 2;
    }
    let family = family.expect("dispatched on --family");
    let csr = match family.build_csr(n, derive(seed, "graph")) {
        Ok(csr) => csr,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    // Raw data footprint: u32 offsets (n+1) + u32 target slots (2m) +
    // u64 tags (n). The acceptance bar for the scale path is peak RSS
    // within a small constant of this number.
    let footprint = 4 * (csr.node_count() as u64 + 1)
        + 8 * csr.edge_count() as u64
        + 8 * csr.node_count() as u64;
    let tag_values = tags.draw(n, span, &mut rng_from(derive(seed, "tags")));
    let config = match Configuration::from_csr(csr, tag_values) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("error: {family} with {tags} tags is not a valid configuration: {e}");
            return 2;
        }
    };
    eprintln!(
        "{family} n={} m={} span={span} tags={tags} | csr+tags footprint: {:.1} MiB",
        config.size(),
        config.csr().edge_count(),
        footprint as f64 / (1 << 20) as f64
    );
    // Staged peak-RSS probes: peak RSS is monotonic, so the deltas
    // attribute memory to build/classify/simulate phases.
    let stage_peak = |stage: &str| {
        if let Some(peak) = radio_util::mem::peak_rss_bytes() {
            eprintln!(
                "peak rss after {stage}: {:.1} MiB",
                peak as f64 / (1 << 20) as f64
            );
        }
    };
    stage_peak("graph build");
    let dedicated = match anon_radio::solve(&config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("election failed under model {model}: {e}");
            return 1;
        }
    };
    stage_peak("classify+compile");
    let mut sim = radio_sim::SimWorkspace::new();
    let outcome = dedicated.run_in(&mut sim, model, opts);
    eprintln!(
        "sim workspace high-water: {:.1} MiB",
        sim.mem_bytes() as f64 / (1 << 20) as f64
    );
    let code = match outcome {
        Ok(report) => {
            println!(
                "model: {model} | leader: v{} | phases: {} | local rounds: {} | \
                 done by global round {} | transmissions: {} | \
                 engine: {} stepped + {} leapt",
                report.leader,
                report.phases,
                report.rounds_local,
                report.completion_round,
                report.transmissions,
                report.rounds_stepped,
                report.rounds_leapt
            );
            0
        }
        Err(e) => {
            eprintln!("election failed under model {model}: {e}");
            1
        }
    };
    if let Some(peak) = radio_util::mem::peak_rss_bytes() {
        eprintln!(
            "peak rss: {:.1} MiB ({:.2}× the csr+tags footprint)",
            peak as f64 / (1 << 20) as f64,
            peak as f64 / footprint as f64
        );
    }
    code
}

/// Writes the JSONL rows to `path` (whole-file rewrite — rows are
/// running aggregates, so each checkpoint supersedes the previous one).
fn write_rows(path: &str, rows: &[String]) -> std::io::Result<()> {
    let mut body = rows.join("\n");
    body.push('\n');
    std::fs::write(path, body)
}

fn family_command(args: &[String]) -> i32 {
    let (kind, m) = match (args.get(1), args.get(2).and_then(|s| s.parse::<u64>().ok())) {
        (Some(kind), Some(m)) => (kind.as_str(), m),
        _ => return usage(),
    };
    let config = match kind {
        "g" if m >= 2 => families::g_m(m as usize),
        "h" if m >= 1 => families::h_m(m),
        "s" if m >= 1 => families::s_m(m),
        _ => return usage(),
    };
    // `family` is the designed producer end of shell pipelines; a consumer
    // that exits early (e.g. on a bad flag) closes the pipe, and `print!`
    // would panic on the resulting EPIPE. Write directly: a closed pipe is
    // a clean stop, any other write failure is a real error.
    use std::io::Write as _;
    match std::io::stdout().write_all(io::to_text(&config).as_bytes()) {
        Ok(()) => 0,
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => 0,
        Err(e) => {
            eprintln!("error: could not write configuration: {e}");
            1
        }
    }
}

/// Loads the configuration named by `args[1]` (`-` = stdin) and applies
/// `f`.
fn with_config(args: &[String], f: impl FnOnce(&Configuration) -> i32) -> i32 {
    let Some(path) = args.get(1) else {
        eprintln!("error: missing <config-file> (use `-` for stdin)");
        return 2;
    };
    let text = if path == "-" {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("error: could not read stdin");
            return 2;
        }
        buf
    } else {
        match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: could not read {path}: {e}");
                return 2;
            }
        }
    };
    match io::from_text(&text) {
        Ok(config) => f(&config),
        Err(e) => {
            eprintln!("error: invalid configuration: {e}");
            2
        }
    }
}

fn usage() -> i32 {
    eprintln!(
        "anon-radio — deterministic leader election in anonymous radio networks\n\
         \n\
         usage:\n\
         \u{20}  anon-radio check   <file|->    decide feasibility (Thm 3.17)\n\
         \u{20}  anon-radio trace   <file|->    show the Classifier refinement trace\n\
         \u{20}  anon-radio elect   <file|->    compile and run the dedicated election\n\
         \u{20}                                 (--model no-cd|cd|beep selects the channel;\n\
         \u{20}                                 --no-leap executes every round one by one\n\
         \u{20}                                 instead of time-leaping quiet stretches)\n\
         \u{20}  anon-radio elect --family SPEC --size N --span S [--tags STRAT] [--seed K]\n\
         \u{20}                                 build the configuration CSR-direct (no\n\
         \u{20}                                 intermediate graph — the million-node route)\n\
         \u{20}                                 and run the election on it; reports the raw\n\
         \u{20}                                 csr+tags footprint and peak RSS on stderr\n\
         \u{20}  anon-radio compile <file|->    print the compiled dedicated algorithm\n\
         \u{20}  anon-radio explain <file|->    explain infeasibility (twins + certificates)\n\
         \u{20}  anon-radio dot     <file|->    export Graphviz DOT\n\
         \u{20}  anon-radio family g|h|s <m>    print a paper family configuration\n\
         \u{20}  anon-radio campaign [flags]    run a campaign grid, one JSONL aggregate\n\
         \u{20}                                 row per cell\n\
         \u{20}      --phase elect|classify (elect = full election pipeline per run;\n\
         \u{20}                              classify = decision phase only, no simulation)\n\
         \u{20}      --families a,b   scenario specs: path, cycle, star, complete, wheel,\n\
         \u{20}                       ladder, binary-tree, tree:K, random-tree, gnp, gnp:P,\n\
         \u{20}                       random-connected:E, grid:RxC, torus:RxC, hypercube:D,\n\
         \u{20}                       caterpillar:SxL, random-caterpillar:S+L, spider:LxK,\n\
         \u{20}                       barbell:K+B, lollipop:K+T, double-star:A+B,\n\
         \u{20}                       bipartite:AxB (size-pinned specs override --sizes)\n\
         \u{20}      --tags t,…       tag strategies: uniform, clustered, extremes, arith:K\n\
         \u{20}      --sizes n,…  --spans s,…  --models m,…  --reps k\n\
         \u{20}      --shards K --threads T --seed N --resume-from S --no-leap --out FILE\n\
         \u{20}      --no-cache       disable the canonical schedule cache (elect phase\n\
         \u{20}                       memoizes classify+compile across repeated shapes by\n\
         \u{20}                       default; rows are bit-identical either way)\n\
         \u{20}      --cache-capacity N  bound the cache at ~N entries (default 4096)\n\
         \u{20}      --no-batch       run elect-phase simulations one at a time (batches of\n\
         \u{20}                       runs execute through one fused engine pass by default;\n\
         \u{20}                       rows are bit-identical either way up to the measured\n\
         \u{20}                       tail from \"wall_ns\" on)\n\
         \u{20}      --batch-size B   member runs per fused batch (default 16)\n\
         \u{20}      --row-format jsonl|binary  row encoding for --out (binary is the\n\
         \u{20}                       compact length-prefixed format; `rows convert` maps\n\
         \u{20}                       it back to identical JSONL)\n\
         \u{20}  anon-radio rows convert <in> <out>  flip a row file between JSONL and the\n\
         \u{20}                                 compact binary encoding (direction sniffed\n\
         \u{20}                                 from the magic bytes; lossless both ways)\n\
         \u{20}  anon-radio serve [flags]       resident election service: long-lived\n\
         \u{20}                                 workers with warm workspaces + shared\n\
         \u{20}                                 schedule cache answer line-delimited JSON\n\
         \u{20}                                 jobs (elect, classify, campaign-cell,\n\
         \u{20}                                 shutdown); replies stream in submission\n\
         \u{20}                                 order, one line each\n\
         \u{20}      --stdin-stdout   serve one session over stdin/stdout (CI mode)\n\
         \u{20}      --tcp ADDR       listen on a TCP address (e.g. 127.0.0.1:7878)\n\
         \u{20}      --unix PATH      listen on a Unix-domain socket\n\
         \u{20}      --threads T --queue Q  worker pool size and bounded job-queue depth\n\
         \u{20}      --no-cache / --cache-capacity N  shared schedule-cache policy\n\
         \n\
         configuration file format: see `radio-graph::io` docs"
    );
    2
}
