//! `anon-radio` — command-line front end for the library.
//!
//! ```sh
//! anon-radio family h 3                # print the H_3 configuration file
//! anon-radio family h 3 | anon-radio check -     # decide feasibility
//! anon-radio family g 4 | anon-radio trace -     # refinement trace
//! anon-radio family h 3 | anon-radio elect -     # run the election
//! anon-radio family h 3 | anon-radio elect --model cd -   # … under collision detection
//! anon-radio family s 2 | anon-radio dot -       # Graphviz export
//! ```
//!
//! `--model <no-cd|cd|beep>` selects the channel semantics for `elect`
//! (default: `no-cd`, the paper's model). `--no-leap` disables the
//! engine's time-leap scheduler and executes every global round one by
//! one — the result is bit-identical, only slower; useful as an escape
//! hatch and for timing comparisons.
//!
//! Configuration files use the `radio-graph` text format:
//!
//! ```text
//! config <n> <m>
//! tags <t_0> … <t_{n-1}>
//! edge <u> <v>   (m lines)
//! ```

use std::io::Read;

use radio_graph::{families, io, Configuration};
use radio_sim::ModelKind;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let model = match extract_model(&mut args) {
        Ok(model) => model,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    let no_leap = extract_flag(&mut args, "--no-leap");
    // Only `elect` runs a simulation; silently ignoring --model or
    // --no-leap elsewhere would let a sweep produce identical results
    // without warning.
    if (model.is_some() || no_leap) && args.first().map(String::as_str) != Some("elect") {
        eprintln!("error: --model/--no-leap only apply to the `elect` subcommand");
        std::process::exit(2);
    }
    let model = model.unwrap_or_default();
    let opts = if no_leap {
        radio_sim::RunOpts::default().no_leap()
    } else {
        radio_sim::RunOpts::default()
    };
    let code = match args.first().map(String::as_str) {
        Some("check") => with_config(&args, |config| {
            let outcome = radio_classifier::classify(config);
            println!("{config}");
            if outcome.feasible {
                println!(
                    "FEASIBLE — leader class {} after {} iteration(s)",
                    outcome.leader_class().expect("feasible"),
                    outcome.iterations
                );
            } else {
                println!(
                    "INFEASIBLE — partition stabilized after {} iteration(s)",
                    outcome.iterations
                );
            }
            0
        }),
        Some("trace") => with_config(&args, |config| {
            let outcome = radio_classifier::classify(config);
            print!("{}", radio_classifier::trace::render(config, &outcome));
            0
        }),
        Some("elect") => with_config(&args, |config| {
            match anon_radio::elect_leader_with(config, model, opts) {
                Ok(report) => {
                    println!("{config}");
                    println!(
                        "model: {model} | leader: v{} | phases: {} | local rounds: {} | \
                         done by global round {} | transmissions: {} | \
                         engine: {} stepped + {} leapt",
                        report.leader,
                        report.phases,
                        report.rounds_local,
                        report.completion_round,
                        report.transmissions,
                        report.rounds_stepped,
                        report.rounds_leapt
                    );
                    0
                }
                Err(e) => {
                    eprintln!("election failed under model {model}: {e}");
                    1
                }
            }
        }),
        Some("dot") => with_config(&args, |config| {
            print!("{}", io::to_dot(config, "configuration"));
            0
        }),
        Some("compile") => with_config(&args, |config| {
            let (outcome, schedule) = anon_radio::CanonicalSchedule::build(config);
            println!("{config}");
            println!(
                "classifier: {} after {} iteration(s)",
                if outcome.feasible {
                    "FEASIBLE"
                } else {
                    "INFEASIBLE"
                },
                outcome.iterations
            );
            print!("{}", schedule.render());
            0
        }),
        Some("explain") => {
            with_config(
                &args,
                |config| match anon_radio::explain::explain_infeasibility(config) {
                    Ok(report) => {
                        println!("{config}");
                        print!("{}", report.render());
                        0
                    }
                    Err(e) => {
                        println!("{config}");
                        println!("{e}");
                        0
                    }
                },
            )
        }
        Some("family") => family_command(&args),
        _ => usage(),
    };
    std::process::exit(code);
}

/// Strips a `--model <name>` (or `--model=<name>`) flag from `args`,
/// returning the selected channel model (`None` when the flag is absent).
fn extract_model(args: &mut Vec<String>) -> Result<Option<ModelKind>, String> {
    let mut model = None;
    let mut i = 0;
    while i < args.len() {
        if let Some(value) = args[i].strip_prefix("--model=") {
            model = Some(value.parse()?);
            args.remove(i);
        } else if args[i] == "--model" {
            let value = args
                .get(i + 1)
                .cloned()
                .ok_or_else(|| "--model needs a value (no-cd, cd, or beep)".to_string())?;
            model = Some(value.parse()?);
            args.drain(i..=i + 1);
        } else {
            i += 1;
        }
    }
    Ok(model)
}

/// Strips a boolean `flag` from `args`, returning whether it was present.
fn extract_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != flag);
    args.len() != before
}

fn family_command(args: &[String]) -> i32 {
    let (kind, m) = match (args.get(1), args.get(2).and_then(|s| s.parse::<u64>().ok())) {
        (Some(kind), Some(m)) => (kind.as_str(), m),
        _ => return usage(),
    };
    let config = match kind {
        "g" if m >= 2 => families::g_m(m as usize),
        "h" if m >= 1 => families::h_m(m),
        "s" if m >= 1 => families::s_m(m),
        _ => return usage(),
    };
    // `family` is the designed producer end of shell pipelines; a consumer
    // that exits early (e.g. on a bad flag) closes the pipe, and `print!`
    // would panic on the resulting EPIPE. Write directly: a closed pipe is
    // a clean stop, any other write failure is a real error.
    use std::io::Write as _;
    match std::io::stdout().write_all(io::to_text(&config).as_bytes()) {
        Ok(()) => 0,
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => 0,
        Err(e) => {
            eprintln!("error: could not write configuration: {e}");
            1
        }
    }
}

/// Loads the configuration named by `args[1]` (`-` = stdin) and applies
/// `f`.
fn with_config(args: &[String], f: impl FnOnce(&Configuration) -> i32) -> i32 {
    let Some(path) = args.get(1) else {
        eprintln!("error: missing <config-file> (use `-` for stdin)");
        return 2;
    };
    let text = if path == "-" {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("error: could not read stdin");
            return 2;
        }
        buf
    } else {
        match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: could not read {path}: {e}");
                return 2;
            }
        }
    };
    match io::from_text(&text) {
        Ok(config) => f(&config),
        Err(e) => {
            eprintln!("error: invalid configuration: {e}");
            2
        }
    }
}

fn usage() -> i32 {
    eprintln!(
        "anon-radio — deterministic leader election in anonymous radio networks\n\
         \n\
         usage:\n\
         \u{20}  anon-radio check   <file|->    decide feasibility (Thm 3.17)\n\
         \u{20}  anon-radio trace   <file|->    show the Classifier refinement trace\n\
         \u{20}  anon-radio elect   <file|->    compile and run the dedicated election\n\
         \u{20}                                 (--model no-cd|cd|beep selects the channel;\n\
         \u{20}                                 --no-leap executes every round one by one\n\
         \u{20}                                 instead of time-leaping quiet stretches)\n\
         \u{20}  anon-radio compile <file|->    print the compiled dedicated algorithm\n\
         \u{20}  anon-radio explain <file|->    explain infeasibility (twins + certificates)\n\
         \u{20}  anon-radio dot     <file|->    export Graphviz DOT\n\
         \u{20}  anon-radio family g|h|s <m>    print a paper family configuration\n\
         \n\
         configuration file format: see `radio-graph::io` docs"
    );
    2
}
