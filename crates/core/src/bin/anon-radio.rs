//! `anon-radio` — command-line front end for the library.
//!
//! ```sh
//! anon-radio family h 3                # print the H_3 configuration file
//! anon-radio family h 3 | anon-radio check -     # decide feasibility
//! anon-radio family g 4 | anon-radio trace -     # refinement trace
//! anon-radio family h 3 | anon-radio elect -     # run the election
//! anon-radio family s 2 | anon-radio dot -       # Graphviz export
//! ```
//!
//! Configuration files use the `radio-graph` text format:
//!
//! ```text
//! config <n> <m>
//! tags <t_0> … <t_{n-1}>
//! edge <u> <v>   (m lines)
//! ```

use std::io::Read;

use radio_graph::{families, io, Configuration};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("check") => with_config(&args, |config| {
            let outcome = radio_classifier::classify(config);
            println!("{config}");
            if outcome.feasible {
                println!(
                    "FEASIBLE — leader class {} after {} iteration(s)",
                    outcome.leader_class().expect("feasible"),
                    outcome.iterations
                );
            } else {
                println!(
                    "INFEASIBLE — partition stabilized after {} iteration(s)",
                    outcome.iterations
                );
            }
            0
        }),
        Some("trace") => with_config(&args, |config| {
            let outcome = radio_classifier::classify(config);
            print!("{}", radio_classifier::trace::render(config, &outcome));
            0
        }),
        Some("elect") => with_config(&args, |config| match anon_radio::elect_leader(config) {
            Ok(report) => {
                println!("{config}");
                println!(
                    "leader: v{} | phases: {} | local rounds: {} | done by global round {} | \
                     transmissions: {}",
                    report.leader,
                    report.phases,
                    report.rounds_local,
                    report.completion_round,
                    report.transmissions
                );
                0
            }
            Err(e) => {
                eprintln!("election failed: {e}");
                1
            }
        }),
        Some("dot") => with_config(&args, |config| {
            print!("{}", io::to_dot(config, "configuration"));
            0
        }),
        Some("compile") => with_config(&args, |config| {
            let (outcome, schedule) = anon_radio::CanonicalSchedule::build(config);
            println!("{config}");
            println!(
                "classifier: {} after {} iteration(s)",
                if outcome.feasible {
                    "FEASIBLE"
                } else {
                    "INFEASIBLE"
                },
                outcome.iterations
            );
            print!("{}", schedule.render());
            0
        }),
        Some("explain") => {
            with_config(
                &args,
                |config| match anon_radio::explain::explain_infeasibility(config) {
                    Ok(report) => {
                        println!("{config}");
                        print!("{}", report.render());
                        0
                    }
                    Err(e) => {
                        println!("{config}");
                        println!("{e}");
                        0
                    }
                },
            )
        }
        Some("family") => family_command(&args),
        _ => usage(),
    };
    std::process::exit(code);
}

fn family_command(args: &[String]) -> i32 {
    let (kind, m) = match (args.get(1), args.get(2).and_then(|s| s.parse::<u64>().ok())) {
        (Some(kind), Some(m)) => (kind.as_str(), m),
        _ => return usage(),
    };
    let config = match kind {
        "g" if m >= 2 => families::g_m(m as usize),
        "h" if m >= 1 => families::h_m(m),
        "s" if m >= 1 => families::s_m(m),
        _ => return usage(),
    };
    print!("{}", io::to_text(&config));
    0
}

/// Loads the configuration named by `args[1]` (`-` = stdin) and applies
/// `f`.
fn with_config(args: &[String], f: impl FnOnce(&Configuration) -> i32) -> i32 {
    let Some(path) = args.get(1) else {
        eprintln!("error: missing <config-file> (use `-` for stdin)");
        return 2;
    };
    let text = if path == "-" {
        let mut buf = String::new();
        if std::io::stdin().read_to_string(&mut buf).is_err() {
            eprintln!("error: could not read stdin");
            return 2;
        }
        buf
    } else {
        match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: could not read {path}: {e}");
                return 2;
            }
        }
    };
    match io::from_text(&text) {
        Ok(config) => f(&config),
        Err(e) => {
            eprintln!("error: invalid configuration: {e}");
            2
        }
    }
}

fn usage() -> i32 {
    eprintln!(
        "anon-radio — deterministic leader election in anonymous radio networks\n\
         \n\
         usage:\n\
         \u{20}  anon-radio check   <file|->    decide feasibility (Thm 3.17)\n\
         \u{20}  anon-radio trace   <file|->    show the Classifier refinement trace\n\
         \u{20}  anon-radio elect   <file|->    compile and run the dedicated election\n\
         \u{20}  anon-radio compile <file|->    print the compiled dedicated algorithm\n\
         \u{20}  anon-radio explain <file|->    explain infeasibility (twins + certificates)\n\
         \u{20}  anon-radio dot     <file|->    export Graphviz DOT\n\
         \u{20}  anon-radio family g|h|s <m>    print a paper family configuration\n\
         \n\
         configuration file format: see `radio-graph::io` docs"
    );
    2
}
