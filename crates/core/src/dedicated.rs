//! The dedicated leader-election algorithm `(D_G, f_G)` for a feasible
//! configuration, bundled.

use std::sync::Arc;

use radio_graph::{Configuration, NodeId};
use radio_sim::{run_election_resident, ModelKind, RunOpts, SimError, SimWorkspace};

use crate::api::{ElectError, ElectionReport, Infeasible};
use crate::cache::ScheduleCache;
use crate::canonical::CanonicalFactory;
use crate::decision::LeaderDecision;
use crate::schedule::{CanonicalSchedule, SharedSchedule};
use radio_classifier::{ClassifierWorkspace, ClassifySummary};

/// The configuration-free half of a dedicated election: the classifier's
/// lean summary plus the compiled schedule behind its shared [`Arc`].
///
/// This is what the classify + compile pipeline actually *produces* — and
/// therefore what the [`ScheduleCache`] stores and shares: cloning a
/// `CompiledElection` copies a `Copy` summary and bumps one `Arc` count,
/// never the canonical lists. The campaign's per-run path works entirely
/// on this type against a borrowed configuration, so even uncached solves
/// shed the per-run deep `Configuration` clone the old
/// [`DedicatedElection::solve_in`] paid just to store an owned copy.
///
/// Unlike [`DedicatedElection`], a `CompiledElection` exists for
/// infeasible configurations too (the canonical DRIP is well-defined
/// there; only the leader is absent) — check [`CompiledElection::feasible`]
/// before asking for the leader.
#[derive(Debug, Clone)]
pub struct CompiledElection {
    summary: ClassifySummary,
    schedule: SharedSchedule,
}

impl CompiledElection {
    /// Classifies `config` through a caller-provided workspace and
    /// compiles its schedule — the canonical lists stream out of the run
    /// (see [`CanonicalSchedule::build_in`]); nothing is cloned.
    pub fn compile_in(
        workspace: &mut ClassifierWorkspace,
        config: &Configuration,
    ) -> CompiledElection {
        let (summary, schedule) = CanonicalSchedule::build_in(workspace, config);
        CompiledElection {
            summary,
            schedule: Arc::new(schedule),
        }
    }

    /// Rewraps an already-compiled pair (the cache's storage form).
    pub fn from_parts(summary: ClassifySummary, schedule: SharedSchedule) -> CompiledElection {
        CompiledElection { summary, schedule }
    }

    /// The classifier summary (feasibility, iterations, class count,
    /// leader class).
    pub fn summary(&self) -> ClassifySummary {
        self.summary
    }

    /// Whether the configuration admits leader election.
    pub fn feasible(&self) -> bool {
        self.summary.feasible
    }

    /// The compiled schedule (σ, lists, phase geometry).
    pub fn schedule(&self) -> &CanonicalSchedule {
        &self.schedule
    }

    /// The schedule's shared handle (one `Arc` bump, no list copy).
    pub fn shared_schedule(&self) -> SharedSchedule {
        self.schedule.clone()
    }

    /// The DRIP factory (`D_G`) — install at every node.
    pub fn factory(&self) -> CanonicalFactory {
        CanonicalFactory::new(self.schedule.clone())
    }

    /// The decision function (`f_G`).
    pub fn decision(&self) -> LeaderDecision {
        LeaderDecision::new(self.schedule.clone())
    }

    /// The leader `Classifier` predicts: the representative of the
    /// singleton leader class.
    ///
    /// # Panics
    /// Panics when the configuration is infeasible (no leader class).
    pub fn predicted_leader(&self) -> NodeId {
        self.summary.leader.expect("feasible ⇒ leader class rep")
    }

    /// The number of local rounds until every node terminates
    /// (`r_T + 1` — the `O(n²σ)` bound of Lemma 3.10 applies).
    pub fn rounds_bound(&self) -> u64 {
        self.schedule.done_local()
    }

    /// Simulates `(D_G, f_G)` on `config` — which must be the
    /// configuration this algorithm was compiled for — through a
    /// caller-provided [`SimWorkspace`], and returns a validated report.
    pub fn run_in(
        &self,
        workspace: &mut SimWorkspace,
        config: &Configuration,
        model: ModelKind,
        opts: RunOpts,
    ) -> Result<ElectionReport, ElectError> {
        // Resident run over *length-only* histories: the streaming
        // canonical DRIP folds every observation into a per-node match
        // cursor as it lands and resolves the leader verdict itself at
        // termination, so the arena stores no observation content at all —
        // only per-node virtual lengths. This removes the dominant memory
        // term of dense-neighbourhood elections (each stored heard-event
        // costs 24 B; a 10⁶-node bipartite run stores ~10⁸ of them) and
        // keeps peak RSS within a small multiple of the configuration
        // footprint. Leaders are bit-identical to the view-reading
        // decision function (`LeaderDecision`): the cursor walks the same
        // trie of list entries the decision replay compares against.
        let factory = CanonicalFactory::streaming(self.shared_schedule());
        let decision = self.decision();
        let decide = move |h: radio_sim::HistoryView<'_>| decision.is_leader_view(h);
        let opts = opts.len_only();
        let outcome = run_election_resident(workspace, model, config, &factory, &decide, opts)
            .map_err(|e: SimError| match e {
                SimError::RoundLimit {
                    max_rounds,
                    still_running,
                } => ElectError::RoundLimit {
                    max_rounds,
                    still_running,
                },
            })?;
        let leader = outcome.elected().ok_or_else(|| ElectError::Contract {
            leaders: outcome.leaders.clone(),
        })?;
        let predicted = self.predicted_leader();
        if leader != predicted {
            return Err(ElectError::PredictionMismatch {
                elected: leader,
                predicted,
            });
        }
        Ok(ElectionReport {
            leader,
            n: config.size(),
            sigma: config.span(),
            phases: self.schedule.phases(),
            rounds_local: self.schedule.done_local(),
            completion_round: outcome.run.completion_round,
            transmissions: outcome.run.stats.transmissions,
            rounds_stepped: outcome.run.rounds_stepped,
            rounds_leapt: outcome.run.rounds_leapt,
        })
    }
}

/// The dedicated leader-election algorithm compiled for one feasible
/// configuration: the canonical DRIP `D_G` plus the decision function
/// `f_G` (Theorem 3.15).
///
/// The classifier's by-products are kept in compiled form only — the
/// canonical lists inside the schedule plus the lean [`ClassifySummary`]
/// — never as eager per-iteration records; compiling through
/// [`DedicatedElection::solve_in`] recycles a caller-held
/// [`ClassifierWorkspace`]. This owned convenience type stores one
/// `Configuration` clone so `run()` is a single call; the campaign layers
/// instead work on the borrowing [`CompiledElection`] (optionally through
/// a [`ScheduleCache`]) and never pay that clone per run.
#[derive(Debug)]
pub struct DedicatedElection {
    config: Configuration,
    compiled: CompiledElection,
}

impl DedicatedElection {
    /// Runs `Classifier` on `config`; returns the dedicated algorithm when
    /// feasible, [`Infeasible`] otherwise.
    pub fn solve(config: &Configuration) -> Result<DedicatedElection, Infeasible> {
        DedicatedElection::solve_in(&mut ClassifierWorkspace::new(), config)
    }

    /// [`DedicatedElection::solve`] through a caller-provided
    /// [`ClassifierWorkspace`] — classification runs incrementally on
    /// recycled buffers and the canonical lists stream out of the run
    /// (see [`CanonicalSchedule::build_in`]).
    pub fn solve_in(
        workspace: &mut ClassifierWorkspace,
        config: &Configuration,
    ) -> Result<DedicatedElection, Infeasible> {
        DedicatedElection::from_compiled(config, CompiledElection::compile_in(workspace, config))
    }

    /// [`DedicatedElection::solve_in`] through a [`ScheduleCache`]: a key
    /// hit returns the cached summary + schedule (sharing the schedule
    /// `Arc`, skipping classification entirely on an exact hit); a miss
    /// classifies once and populates the cache. Results are bit-identical
    /// to the uncached path.
    pub fn solve_cached(
        workspace: &mut ClassifierWorkspace,
        config: &Configuration,
        cache: &ScheduleCache,
    ) -> Result<DedicatedElection, Infeasible> {
        let (compiled, _) = cache.compile_in(workspace, config);
        DedicatedElection::from_compiled(config, compiled)
    }

    fn from_compiled(
        config: &Configuration,
        compiled: CompiledElection,
    ) -> Result<DedicatedElection, Infeasible> {
        if !compiled.feasible() {
            return Err(Infeasible {
                iterations: compiled.summary().iterations,
            });
        }
        Ok(DedicatedElection {
            config: config.clone(),
            compiled,
        })
    }

    /// The configuration-free compiled half (summary + shared schedule).
    pub fn compiled(&self) -> &CompiledElection {
        &self.compiled
    }

    /// The classifier summary backing this algorithm (feasibility,
    /// iterations, class count, leader class).
    pub fn summary(&self) -> ClassifySummary {
        self.compiled.summary()
    }

    /// The compiled schedule (σ, lists, phase geometry).
    pub fn schedule(&self) -> &CanonicalSchedule {
        self.compiled.schedule()
    }

    /// The DRIP factory (`D_G`) — install at every node.
    pub fn factory(&self) -> CanonicalFactory {
        self.compiled.factory()
    }

    /// The decision function (`f_G`).
    pub fn decision(&self) -> LeaderDecision {
        self.compiled.decision()
    }

    /// The leader `Classifier` predicts: the representative of the
    /// singleton leader class. The simulation must elect exactly this node.
    pub fn predicted_leader(&self) -> NodeId {
        self.compiled.predicted_leader()
    }

    /// The number of local rounds until every node terminates
    /// (`r_T + 1` — the `O(n²σ)` bound of Lemma 3.10 applies).
    pub fn rounds_bound(&self) -> u64 {
        self.compiled.rounds_bound()
    }

    /// Simulates `(D_G, f_G)` on the configuration and returns a validated
    /// report.
    pub fn run(&self) -> Result<ElectionReport, ElectError> {
        self.run_with(RunOpts::default())
    }

    /// [`DedicatedElection::run`] with explicit executor options.
    pub fn run_with(&self, opts: RunOpts) -> Result<ElectionReport, ElectError> {
        self.run_under(ModelKind::default(), opts)
    }

    /// [`DedicatedElection::run`] under an explicit channel model.
    ///
    /// The canonical DRIP's correctness proof (Theorem 3.15) only covers
    /// the paper's model — the default [`ModelKind::NoCollisionDetection`].
    /// Under a foreign channel the run is still deterministic and total,
    /// but the exactly-one-leader contract may fail, surfacing as
    /// [`ElectError::Contract`] or [`ElectError::PredictionMismatch`].
    ///
    /// By default the engine time-leaps the schedule's silent stretches
    /// (the canonical DRIP advertises its transmission timetable via
    /// `quiet_until`), which makes high-σ elections run in time
    /// proportional to their *events* rather than their rounds. The
    /// report's `rounds_stepped` / `rounds_leapt` break this down; pass
    /// `opts.no_leap()` to force round-by-round execution.
    pub fn run_under(&self, model: ModelKind, opts: RunOpts) -> Result<ElectionReport, ElectError> {
        self.run_in(&mut SimWorkspace::new(), model, opts)
    }

    /// [`DedicatedElection::run_under`] through a caller-provided
    /// [`SimWorkspace`] — the campaign runner's per-worker path, which
    /// recycles all engine state across back-to-back elections.
    pub fn run_in(
        &self,
        workspace: &mut SimWorkspace,
        model: ModelKind,
        opts: RunOpts,
    ) -> Result<ElectionReport, ElectError> {
        self.compiled.run_in(workspace, &self.config, model, opts)
    }

    /// Convenience: run the canonical DRIP and return the raw execution
    /// (used by validators and experiments).
    pub fn execute(&self, opts: RunOpts) -> Result<radio_sim::Execution, SimError> {
        self.execute_under(ModelKind::default(), opts)
    }

    /// [`DedicatedElection::execute`] under an explicit channel model.
    pub fn execute_under(
        &self,
        model: ModelKind,
        opts: RunOpts,
    ) -> Result<radio_sim::Execution, SimError> {
        let factory = self.factory();
        model.run(&self.config, &factory, opts)
    }

    /// [`DedicatedElection::execute_under`] through a caller-provided
    /// [`SimWorkspace`].
    pub fn execute_in(
        &self,
        workspace: &mut SimWorkspace,
        model: ModelKind,
        opts: RunOpts,
    ) -> Result<radio_sim::Execution, SimError> {
        let factory = self.factory();
        workspace.run_kind(model, &self.config, &factory, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::{families, generators, tags, Configuration};

    #[test]
    fn solve_rejects_infeasible() {
        let err = DedicatedElection::solve(&families::s_m(2)).unwrap_err();
        assert_eq!(err.iterations, 2);
    }

    #[test]
    fn h_m_elects_node_a() {
        for m in [1u64, 3, 10] {
            let d = DedicatedElection::solve(&families::h_m(m)).unwrap();
            assert_eq!(d.predicted_leader(), 0);
            let report = d.run().unwrap();
            assert_eq!(report.leader, 0, "H_{m}");
            assert_eq!(report.n, 4);
            assert_eq!(report.phases, 1);
        }
    }

    #[test]
    fn g_m_elects_some_unique_node() {
        for m in [2usize, 3] {
            let d = DedicatedElection::solve(&families::g_m(m)).unwrap();
            let report = d.run().unwrap();
            // Classifier's singleton class contains the centre... the
            // smallest singleton may be another separated node; what the
            // contract guarantees is *uniqueness* and prediction agreement.
            assert_eq!(report.leader, d.predicted_leader());
            assert_eq!(report.phases, m);
        }
    }

    #[test]
    fn rounds_respect_the_n2_sigma_bound() {
        let mut rng = radio_util::rng::rng_from(5);
        for _ in 0..10 {
            let g = generators::gnp_connected(8, 0.3, &mut rng);
            let c = tags::distinct_shuffled(g, &mut rng);
            let d = DedicatedElection::solve(&c).expect("distinct tags are feasible");
            let report = d.run().unwrap();
            let n = report.n as u64;
            let sigma = report.sigma.max(1);
            // Lemma 3.10: ⌈n/2⌉ phases × (n blocks × (2σ+1) + σ) rounds.
            let bound = n.div_ceil(2) * (n * (2 * sigma + 1) + sigma) + 1;
            assert!(
                report.rounds_local <= bound,
                "rounds {} exceed bound {bound}",
                report.rounds_local
            );
        }
    }

    #[test]
    fn solve_in_matches_solve_across_reuse() {
        let mut ws = radio_classifier::ClassifierWorkspace::new();
        for config in [families::h_m(3), families::g_m(3), families::h_m(1)] {
            let fresh = DedicatedElection::solve(&config).unwrap();
            let reused = DedicatedElection::solve_in(&mut ws, &config).unwrap();
            assert_eq!(reused.summary(), fresh.summary());
            assert_eq!(reused.predicted_leader(), fresh.predicted_leader());
            assert_eq!(reused.schedule().lists, fresh.schedule().lists);
            assert_eq!(reused.schedule().phase_end, fresh.schedule().phase_end);
            let a = reused.run().unwrap();
            let b = fresh.run().unwrap();
            assert_eq!(a, b);
        }
        // infeasible through the workspace too
        let err = DedicatedElection::solve_in(&mut ws, &families::s_m(2)).unwrap_err();
        assert_eq!(err.iterations, 2);
    }

    #[test]
    fn compiled_election_exists_for_infeasible_configurations() {
        let mut ws = radio_classifier::ClassifierWorkspace::new();
        let compiled = CompiledElection::compile_in(&mut ws, &families::s_m(2));
        assert!(!compiled.feasible());
        assert_eq!(compiled.summary().iterations, 2);
        // the schedule is well-defined; only the leader class is absent
        assert!(compiled.schedule().lists.leader_class.is_none());
        assert!(compiled.rounds_bound() >= 1);
    }

    #[test]
    fn compiled_run_in_matches_the_owned_path() {
        let mut ws = radio_classifier::ClassifierWorkspace::new();
        let mut sim = SimWorkspace::new();
        for config in [families::h_m(2), families::g_m(3)] {
            let compiled = CompiledElection::compile_in(&mut ws, &config);
            let borrowed = compiled
                .run_in(
                    &mut sim,
                    &config,
                    ModelKind::NoCollisionDetection,
                    RunOpts::default(),
                )
                .unwrap();
            let owned = DedicatedElection::solve(&config).unwrap().run().unwrap();
            assert_eq!(borrowed, owned, "{config}");
        }
    }

    #[test]
    fn shared_schedule_is_shared_not_copied() {
        let mut ws = radio_classifier::ClassifierWorkspace::new();
        let compiled = CompiledElection::compile_in(&mut ws, &families::h_m(2));
        let a = compiled.shared_schedule();
        let clone = compiled.clone();
        let b = clone.shared_schedule();
        assert!(Arc::ptr_eq(&a, &b), "clones share one schedule allocation");
    }

    #[test]
    fn singleton_graph_elects_its_node() {
        let c = Configuration::new(generators::path(1), vec![0]).unwrap();
        let d = DedicatedElection::solve(&c).unwrap();
        let report = d.run().unwrap();
        assert_eq!(report.leader, 0);
        assert_eq!(report.n, 1);
    }
}
