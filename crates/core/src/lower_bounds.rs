//! Measurement helpers for the lower-bound experiments
//! (Propositions 4.1 and 4.3).
//!
//! The negative results say: certain symmetric pairs of nodes keep
//! identical histories for provably many rounds, under *any* algorithm.
//! For the canonical DRIP (and any other concrete DRIP) we can observe
//! exactly when a pair's histories first diverge — the **symmetry
//! horizon** — and check it obeys the proofs' inequalities, as well as how
//! long the dedicated algorithm actually takes, for the `Ω(n)`/`Ω(σ)`
//! tables of E4/E5.

use radio_graph::{Configuration, NodeId};
use radio_sim::{Execution, Executor, RunOpts};

/// First *global* round at which the histories of `v` and `w` diverge, or
/// `None` if they remain equal to the end of the execution. Histories are
/// aligned on global time (entry `i` of a node's history happened in
/// global round `wake + i`), so the comparison is meaningful for any pair.
pub fn divergence_round(execution: &Execution, v: NodeId, w: NodeId) -> Option<u64> {
    let wv = execution.wake_round[v as usize];
    let ww = execution.wake_round[w as usize];
    if wv != ww {
        // One woke while the other slept: they diverge at the earlier wake
        // (the paper compares awake histories; a sleeping node has none).
        return Some(wv.min(ww));
    }
    let hv = execution.history(v).as_slice();
    let hw = execution.history(w).as_slice();
    for (i, (a, b)) in hv.iter().zip(hw.iter()).enumerate() {
        if a != b {
            return Some(wv + i as u64);
        }
    }
    if hv.len() != hw.len() {
        return Some(wv + hv.len().min(hw.len()) as u64);
    }
    None
}

/// Runs the dedicated canonical DRIP of `config` and reports, for the node
/// pairs in `pairs`, the global rounds at which their histories diverge.
pub fn canonical_divergences(
    config: &Configuration,
    pairs: &[(NodeId, NodeId)],
) -> (Execution, Vec<Option<u64>>) {
    let (_, schedule) = crate::schedule::CanonicalSchedule::build(config);
    let factory = crate::canonical::CanonicalFactory::new(std::sync::Arc::new(schedule));
    let execution =
        Executor::run(config, &factory, RunOpts::default()).expect("canonical DRIP terminates");
    let divs = pairs
        .iter()
        .map(|&(v, w)| divergence_round(&execution, v, w))
        .collect();
    (execution, divs)
}

/// The three central `b`-nodes of `G_m` whose histories Proposition 4.1
/// proves equal through round `m − 2`: `(b_m, b_{m+1})` and
/// `(b_{m+1}, b_{m+2})` as node indices.
pub fn g_m_central_pairs(m: usize) -> [(NodeId, NodeId); 2] {
    let center = radio_graph::families::g_m_center(m);
    [(center - 1, center), (center, center + 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::families;

    #[test]
    fn g_m_centre_stays_symmetric_for_m_minus_2_rounds() {
        // Prop 4.1: histories of b_m, b_{m+1}, b_{m+2} coincide in all
        // rounds t < m−1, so divergence can happen at global round ≥ m−1.
        for m in [2usize, 3, 4, 6] {
            let c = families::g_m(m);
            let pairs = g_m_central_pairs(m);
            let (_, divs) = canonical_divergences(&c, &pairs);
            for (pair, div) in pairs.iter().zip(&divs) {
                let d = div.expect("feasible: histories must eventually diverge");
                assert!(
                    d >= (m as u64) - 1,
                    "G_{m}: pair {pair:?} diverged at {d} < m−1 = {}",
                    m - 1
                );
            }
        }
    }

    #[test]
    fn h_m_first_divergence_respects_sigma_bound() {
        // Lemma 4.2: any algorithm needs ≥ m rounds; under the canonical
        // DRIP, b and c diverge only after hearing from a or d, which
        // cannot happen before round m (nothing transmits before σ+1 > m).
        for m in [1u64, 3, 8] {
            let c = families::h_m(m);
            let (_, divs) = canonical_divergences(&c, &[(1, 2)]);
            let d = divs[0].expect("H_m is feasible");
            assert!(d >= m, "H_{m}: b,c diverged at {d} < m");
        }
    }

    #[test]
    fn s_m_pairs_never_diverge() {
        let c = families::s_m(3);
        let (_, divs) = canonical_divergences(&c, &[(0, 3), (1, 2)]);
        assert_eq!(
            divs,
            vec![None, None],
            "S_m's mirror pairs stay symmetric forever"
        );
    }

    #[test]
    fn divergence_detects_wake_offsets() {
        // On H_2, node a (tag 2... woken at global... canonical is patient
        // so a wakes at its tag 2) and node b (tag 0) have different wake
        // rounds → diverge at round 0.
        let c = families::h_m(2);
        let (ex, divs) = canonical_divergences(&c, &[(0, 1)]);
        assert_eq!(ex.wake_round[0], 2);
        assert_eq!(ex.wake_round[1], 0);
        assert_eq!(divs[0], Some(0));
    }
}
