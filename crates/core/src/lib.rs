//! # anon-radio — deterministic leader election in anonymous radio networks
//!
//! This crate is the primary contribution of the SPAA 2020 paper
//! *Deterministic Leader Election in Anonymous Radio Networks* (Miller,
//! Pelc, Yadav), made executable:
//!
//! * **Feasibility decision** — [`is_feasible`] wraps the polynomial-time
//!   centralized `Classifier` (Theorem 3.17).
//! * **Dedicated election** — [`solve`] compiles, for any feasible
//!   configuration `G`, the canonical DRIP `D_G` and its decision function
//!   `f_G` (Theorem 3.15, `O(n²σ)` rounds); [`elect_leader`] additionally
//!   simulates the algorithm and returns a validated [`ElectionReport`].
//! * **Impossibility machinery** — [`universal`] refutes any candidate
//!   *universal* election algorithm by constructing the failing
//!   configuration `H_{t+1}` (Proposition 4.4), and [`distributed`] shows
//!   per-node histories on feasible `H_{t+1}` and infeasible `S_{t+1}`
//!   coincide, killing distributed feasibility decision (Proposition 4.5).
//! * **Validators** — [`verify`] checks the paper's structural lemmas
//!   (3.6–3.9) on actual executions; [`lower_bounds`] measures the symmetry
//!   horizons behind the `Ω(n)`/`Ω(σ)` bounds (Propositions 4.1/4.3).
//!
//! ## Quickstart
//!
//! ```
//! use radio_graph::{families, Configuration, generators};
//!
//! // The paper's H_3: path a–b–c–d with tags 3,0,0,4 — feasible.
//! let config = families::h_m(3);
//! assert!(anon_radio::is_feasible(&config));
//!
//! let report = anon_radio::elect_leader(&config).expect("feasible");
//! assert_eq!(report.leader, 0); // node a is the unique leader
//!
//! // Uniform tags leave no symmetry to break: infeasible.
//! let symmetric = Configuration::with_uniform_tags(generators::cycle(4), 0).unwrap();
//! assert!(!anon_radio::is_feasible(&symmetric));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod campaign;
pub mod canonical;
pub mod decision;
pub mod dedicated;
pub mod distributed;
pub mod explain;
pub mod lower_bounds;
pub mod row;
pub mod schedule;
pub mod serve;
pub mod universal;
pub mod verify;

pub use api::{
    elect_leader, elect_leader_in, elect_leader_under, elect_leader_with, is_feasible,
    is_feasible_cached, is_feasible_in, solve, ElectError, ElectionReport, Infeasible,
};
pub use cache::{CacheConfig, CacheLookup, CacheStats, ScheduleCache};
pub use campaign::{
    CampaignRunner, CampaignSpec, CampaignWorkspace, CellKey, FamilyError, FamilyKind, FamilySpec,
    Phase, TagStrategy,
};
pub use canonical::CanonicalFactory;
pub use dedicated::{CompiledElection, DedicatedElection};
pub use row::{CampaignRow, RowError, RowStats};
pub use schedule::CanonicalSchedule;
pub use serve::{serve_session, serve_tcp, JobRequest, ServeOptions, SessionSummary};

#[cfg(test)]
mod proptests;
