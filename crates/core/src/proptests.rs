//! Property-based tests of the canonical schedule, the decision function,
//! and off-schedule robustness (failure injection).

use proptest::prelude::*;

use radio_graph::{generators, Configuration};
use radio_sim::{Executor, RunOpts};

use crate::canonical::CanonicalFactory;
use crate::decision::LeaderDecision;
use crate::schedule::CanonicalSchedule;

fn build_config(n: usize, extra: usize, span: u64, seed: u64) -> Configuration {
    let mut rng = radio_util::rng::rng_from(seed);
    let max_extra = n * (n - 1) / 2 - n.saturating_sub(1);
    let g = generators::random_connected(n, extra.min(max_extra), &mut rng);
    radio_graph::tags::random_in_span(g, span, &mut rng)
}

fn config_strategy() -> impl Strategy<Value = Configuration> {
    (1usize..10, 0usize..6, 0u64..5, any::<u64>())
        .prop_map(|(n, extra, span, seed)| build_config(n, extra, span, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn schedule_geometry_invariants(config in config_strategy()) {
        let (outcome, schedule) = CanonicalSchedule::build(&config);
        let sigma = config.span();
        prop_assert_eq!(schedule.sigma, sigma);
        prop_assert_eq!(schedule.phases(), outcome.iterations);
        prop_assert_eq!(schedule.phase_end(0), 0);
        for j in 1..=schedule.phases() {
            // phase j spans blocks_j·(2σ+1)+σ rounds
            let width = schedule.blocks(j) * (2 * sigma + 1) + sigma;
            prop_assert_eq!(schedule.phase_end(j), schedule.phase_end(j - 1) + width);
            // transmit rounds lie strictly inside the block region
            for k in 1..=schedule.blocks(j) as u32 {
                let t = schedule.transmit_round(j, k);
                prop_assert!(t > schedule.phase_end(j - 1));
                prop_assert!(t <= schedule.phase_end(j - 1) + schedule.blocks(j) * (2 * sigma + 1));
            }
        }
        prop_assert_eq!(schedule.done_local(), schedule.phase_end(schedule.phases()) + 1);
    }

    #[test]
    fn decision_replay_matches_classifier_classes(config in config_strategy()) {
        let (outcome, schedule) = CanonicalSchedule::build(&config);
        let shared = std::sync::Arc::new(schedule);
        let factory = CanonicalFactory::new(shared.clone());
        let ex = Executor::run(&config, &factory, RunOpts::default()).unwrap();
        let decision = LeaderDecision::new(shared);
        let partition = outcome.final_partition();
        for v in 0..config.size() as u32 {
            prop_assert_eq!(
                decision.final_class(ex.history(v)),
                Some(partition.class_of(v)),
                "node {} of {}", v, config
            );
        }
    }

    #[test]
    fn foreign_schedules_never_panic_and_terminate(
        config_a in config_strategy(),
        config_b in config_strategy(),
    ) {
        // Failure injection: install A's dedicated DRIP on configuration B.
        // Nodes may go off-schedule (silent-observer mode) but every node
        // must terminate at A's done_local, and the decision function must
        // mark at most... anything — but never panic.
        let (_, schedule) = CanonicalSchedule::build(&config_a);
        let done = schedule.done_local();
        let shared = std::sync::Arc::new(schedule);
        let factory = CanonicalFactory::new(shared.clone());
        let ex = Executor::run(&config_b, &factory, RunOpts::default()).unwrap();
        let decision = LeaderDecision::new(shared);
        for v in 0..config_b.size() as u32 {
            prop_assert_eq!(ex.done_local(v), done);
            let _ = decision.is_leader(ex.history(v)); // must not panic
        }
    }

    #[test]
    fn canonical_transmission_budget_is_phases_times_n(config in config_strategy()) {
        // Every node transmits exactly once per phase on its own
        // configuration (Lemma 3.7 consequence).
        let (outcome, schedule) = CanonicalSchedule::build(&config);
        let factory = CanonicalFactory::new(std::sync::Arc::new(schedule));
        let ex = Executor::run(&config, &factory, RunOpts::default()).unwrap();
        prop_assert_eq!(
            ex.stats.transmissions,
            (config.size() * outcome.iterations) as u64
        );
    }
}
