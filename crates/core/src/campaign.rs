//! Declarative election campaigns: graph-family × size × tag-span ×
//! channel-model grids executed shard by shard with streaming aggregation.
//!
//! The paper's experimental claims — and the regime maps of the
//! neighbouring literature (knowledge-vs-time sweeps, the *Four Shades*
//! feasibility landscapes) — are statements about *fleets* of executions,
//! not single runs. This module makes such fleets a first-class workload:
//!
//! * [`CampaignSpec`] names the grid declaratively (families — any
//!   [`FamilySpec`] the scenario grammar can express, from `path` to
//!   `torus:8x8` — tag-placement strategies, sizes, spans, models,
//!   repetitions per cell) plus a root seed and engine options. Every run's configuration is derived deterministically from
//!   `(cell, repetition)` alone — independent of execution order, thread
//!   count, and shard geometry — so a campaign is reproducible
//!   bit-for-bit and resumable mid-way.
//! * [`CampaignRunner`] executes the grid *shard by shard*: each shard is
//!   a contiguous slice of the run sequence, dispatched over worker
//!   threads that each own one long-lived
//!   [`SimWorkspace`](radio_sim::SimWorkspace) (see
//!   [`radio_sim::parallel::par_map_init`]). As a shard completes, its
//!   per-run metrics are folded into per-cell
//!   [`StreamingStats`](radio_util::stats::StreamingStats) — count, mean,
//!   min, max, p50, p95 in constant memory — instead of materializing
//!   every [`Execution`](radio_sim::Execution). A million-run campaign
//!   holds one shard's worth of 48-byte metric records at a time.
//! * The shard cursor ([`CampaignRunner::cursor`], [`CampaignRunner::skip_to`])
//!   makes interrupted campaigns resumable: because run seeds are
//!   positional, re-running shards `k..` in a fresh process reproduces
//!   exactly the rows the interrupted process would have produced.
//! * [`CampaignRunner::jsonl_rows`] renders one JSON object per grid cell
//!   — the `anon-radio campaign` subcommand's output format.
//!
//! The default per-run workload is the full election pipeline (classify →
//! compile → simulate → validate, via [`election_metrics`]); the bench
//! harness supplies custom runners for engine-comparison campaigns
//! through [`CampaignRunner::run_next_shard_with`].

use std::sync::Arc;
use std::time::Instant;

use radio_classifier::ClassifierWorkspace;
use radio_graph::{Configuration, Graph};
use radio_sim::parallel::par_map_init;
use radio_sim::{BatchRun, BatchWorkspace, ModelKind, RunOpts, SimWorkspace};
use radio_util::fxhash::FxHashMap;
use radio_util::rng::{derive, derive_index, rng_from};
use radio_util::stats::StreamingStats;

pub use radio_graph::family::{FamilyError, FamilySpec};
pub use radio_graph::tags::TagStrategy;

use crate::cache::{config_fingerprint, CacheConfig, CacheStats, ScheduleCache};
use crate::canonical::CanonicalFactory;
use crate::dedicated::CompiledElection;

/// Which pipeline stage a campaign sweeps.
///
/// * [`Phase::Elect`] — the full election pipeline per run: classify,
///   compile, simulate, validate. The original campaign workload.
/// * [`Phase::Classify`] — the decision phase alone, through the
///   worker's recycled
///   [`ClassifierWorkspace`](radio_classifier::ClassifierWorkspace): per
///   run only the classifier's verdict and shape metrics (iterations,
///   final class count, incremental relabel work) are folded. This is the
///   phase the paper's open problem #1 is about, and the one the
///   simulation-side campaigns could not sweep at scale before.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Phase {
    /// Classify → compile → simulate → validate.
    #[default]
    Elect,
    /// Classify only (record-free, workspace-recycled).
    Classify,
}

impl Phase {
    /// Canonical name (JSONL rows, CLI values).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Elect => "elect",
            Phase::Classify => "classify",
        }
    }
}

impl std::str::FromStr for Phase {
    type Err = String;

    fn from_str(s: &str) -> Result<Phase, String> {
        match s {
            "elect" => Ok(Phase::Elect),
            "classify" => Ok(Phase::Classify),
            other => Err(format!(
                "unknown campaign phase `{other}` (expected elect or classify)"
            )),
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The per-worker state of a campaign: one simulation workspace *and* one
/// classifier workspace, both long-lived for the worker's whole share of
/// a shard. The elect phase uses both (classification feeds compilation,
/// simulation recycles the engine buffers); the classify phase touches
/// only the classifier side.
#[derive(Debug, Default)]
pub struct CampaignWorkspace {
    /// Recycled engine state for simulations.
    pub sim: SimWorkspace,
    /// Recycled fused-batch engine state — the default elect-phase path
    /// ([`election_metrics_batched`]) runs each batch of member runs
    /// through one engine pass instead of one [`SimWorkspace`] run each.
    pub batch: BatchWorkspace,
    /// Recycled classifier state (label interner, refine buffers,
    /// worklist).
    pub classifier: ClassifierWorkspace,
    /// Shared schedule cache — one process-wide
    /// [`ScheduleCache`](crate::cache::ScheduleCache) handle cloned into
    /// every worker of a cached elect campaign; `None` runs the uncached
    /// pipeline ([`CacheConfig::disabled`], classify campaigns).
    pub cache: Option<Arc<ScheduleCache>>,
}

impl CampaignWorkspace {
    /// An empty pair of workspaces; buffers warm up over the first runs.
    pub fn new() -> CampaignWorkspace {
        CampaignWorkspace::default()
    }

    /// A workspace routing elect runs through `cache` (when `Some`) — the
    /// init the campaign runner hands to
    /// [`par_map_init`](radio_sim::parallel::par_map_init) so every worker
    /// shares one cache.
    pub fn with_cache(cache: Option<Arc<ScheduleCache>>) -> CampaignWorkspace {
        CampaignWorkspace {
            cache,
            ..CampaignWorkspace::default()
        }
    }
}

/// Batched-execution policy for elect campaigns (`--no-batch`,
/// `--batch-size`). Batching is on by default: runs are grouped into
/// contiguous batches (never crossing a cell boundary — pure position
/// arithmetic, invariant under threads and shard geometry) and each batch
/// executes as one fused [`BatchWorkspace`] pass. Rows are bit-identical
/// to the unbatched path up to the measured tail (`wall_ns` onward).
/// Ignored by the classify phase, which runs no simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Whether the elect phase batches at all (`--no-batch` clears it).
    pub enabled: bool,
    /// Maximum member runs per fused batch (`--batch-size N`, ≥ 1).
    pub size: usize,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            enabled: true,
            size: BatchConfig::DEFAULT_SIZE,
        }
    }
}

impl BatchConfig {
    /// Default batch size: large enough that engine dispatch and the
    /// per-batch compile dedupe amortize over many members, small enough
    /// that dynamic work-stealing still balances skewed cells.
    pub const DEFAULT_SIZE: usize = 16;

    /// The `--no-batch` configuration.
    pub fn disabled() -> BatchConfig {
        BatchConfig {
            enabled: false,
            ..BatchConfig::default()
        }
    }

    /// Enabled with an explicit batch size (`--batch-size N`).
    pub fn with_size(size: usize) -> BatchConfig {
        BatchConfig {
            enabled: true,
            size,
        }
    }
}

/// The six legacy grid families, kept as a thin alias layer over
/// [`FamilySpec`] so pre-scenario-grammar JSONL rows,
/// `radio_bench::workloads::scaling_families`, and the E-experiment
/// tables keep their names, their seed-derivation streams, and therefore
/// their exact draws.
///
/// New code should use [`FamilySpec`] directly — it reaches the whole
/// generator zoo (`grid:16x4`, `torus:8x8`, `hypercube:6`, …), not just
/// these six shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FamilyKind {
    /// Path `P_n` (degree ≤ 2).
    Path,
    /// Cycle `C_n` (requires `n ≥ 3`).
    Cycle,
    /// Star `K_{1,n-1}` (centre degree `n − 1`).
    Star,
    /// Balanced binary tree.
    BalancedTree,
    /// Uniform random tree (seed-deterministic).
    RandomTree,
    /// Connected `G(n, 8/n)` (seed-deterministic).
    Gnp,
}

impl FamilyKind {
    /// All families, in declaration order.
    pub const ALL: [FamilyKind; 6] = [
        FamilyKind::Path,
        FamilyKind::Cycle,
        FamilyKind::Star,
        FamilyKind::BalancedTree,
        FamilyKind::RandomTree,
        FamilyKind::Gnp,
    ];

    /// Canonical name (JSONL rows, CLI values, table labels). Always
    /// equal to `self.spec().to_string()`.
    pub fn name(self) -> &'static str {
        match self {
            FamilyKind::Path => "path",
            FamilyKind::Cycle => "cycle",
            FamilyKind::Star => "star",
            FamilyKind::BalancedTree => "binary-tree",
            FamilyKind::RandomTree => "random-tree",
            FamilyKind::Gnp => "gnp",
        }
    }

    /// The [`FamilySpec`] this legacy name aliases.
    pub fn spec(self) -> FamilySpec {
        match self {
            FamilyKind::Path => FamilySpec::Path,
            FamilyKind::Cycle => FamilySpec::Cycle,
            FamilyKind::Star => FamilySpec::Star,
            FamilyKind::BalancedTree => FamilySpec::Tree { arity: 2 },
            FamilyKind::RandomTree => FamilySpec::RandomTree,
            FamilyKind::Gnp => FamilySpec::Gnp { ppm: None },
        }
    }

    /// Builds the family member on exactly `n` nodes, delegating to
    /// [`FamilySpec::build`]. Deterministic families ignore the seed; the
    /// randomized ones derive their RNG from it with the same stream
    /// labels the bench workloads use.
    ///
    /// Unrealizable sizes are an `Err`, never a clamp: a `Cycle` at
    /// `n < 3` used to be silently built on 3 nodes, which let library
    /// callers label a cell `n=2` while simulating a triangle.
    pub fn build(self, n: usize, seed: u64) -> Result<Graph, FamilyError> {
        self.spec().build(n, seed)
    }
}

impl From<FamilyKind> for FamilySpec {
    fn from(kind: FamilyKind) -> FamilySpec {
        kind.spec()
    }
}

impl std::str::FromStr for FamilyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<FamilyKind, String> {
        match s {
            "path" => Ok(FamilyKind::Path),
            "cycle" => Ok(FamilyKind::Cycle),
            "star" => Ok(FamilyKind::Star),
            "binary-tree" | "btree" => Ok(FamilyKind::BalancedTree),
            "random-tree" | "rtree" => Ok(FamilyKind::RandomTree),
            "gnp" => Ok(FamilyKind::Gnp),
            other => Err(format!(
                "unknown graph family `{other}` (expected path, cycle, star, binary-tree, \
                 random-tree, or gnp)"
            )),
        }
    }
}

impl std::fmt::Display for FamilyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A declarative campaign: the full cross product of the axes, `reps`
/// runs per cell, deterministic per-run seeds derived from `seed`.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Which pipeline stage each run executes.
    pub phase: Phase,
    /// Graph families to cross — any [`FamilySpec`] the scenario grammar
    /// can name (legacy [`FamilyKind`] values convert via
    /// [`FamilyKind::spec`]).
    pub families: Vec<FamilySpec>,
    /// Tag-placement strategies to cross (see [`TagStrategy`]).
    pub tags: Vec<TagStrategy>,
    /// Node counts to cross. Size-pinned families (`grid:16x4`,
    /// `hypercube:6`, …) ignore this axis and contribute exactly their
    /// own node count (see [`FamilySpec::sizes_for`]).
    pub sizes: Vec<usize>,
    /// Tag spans to cross (tags are drawn uniformly from `0..=span`).
    pub spans: Vec<u64>,
    /// Channel models to cross. The same `(family, n, span, rep)`
    /// configuration is used for every model, so model columns are
    /// directly comparable. The classify phase runs no simulation — give
    /// it a single (ignored) model so the grid is `family × n × span`.
    pub models: Vec<ModelKind>,
    /// Runs per grid cell.
    pub reps: usize,
    /// Root seed; every run seed is derived from it positionally.
    pub seed: u64,
    /// Engine options applied to every run (round limit, leap mode).
    pub opts: RunOpts,
    /// Schedule-cache policy for elect campaigns (`--no-cache`,
    /// `--cache-capacity`). Ignored by the classify phase, which never
    /// compiles a schedule. Cached and uncached campaigns produce
    /// bit-identical rows up to the cache counters themselves.
    pub cache: CacheConfig,
    /// Batched-execution policy for elect campaigns (`--no-batch`,
    /// `--batch-size`). Batched and unbatched campaigns produce
    /// bit-identical rows up to the measured tail.
    pub batch: BatchConfig,
}

impl CampaignSpec {
    /// A spec with every model, uniform tagging, `reps` = 1, default
    /// engine options, elect phase.
    pub fn new(
        families: Vec<FamilySpec>,
        sizes: Vec<usize>,
        spans: Vec<u64>,
        seed: u64,
    ) -> CampaignSpec {
        CampaignSpec {
            phase: Phase::Elect,
            families,
            tags: vec![TagStrategy::Uniform],
            sizes,
            spans,
            models: ModelKind::ALL.to_vec(),
            reps: 1,
            seed,
            opts: RunOpts::default(),
            cache: CacheConfig::default(),
            batch: BatchConfig::default(),
        }
    }

    /// The grid cells, in row-major `family × tags × n × span × model`
    /// order. Size-pinned families contribute one size (their own node
    /// count) instead of the size axis.
    pub fn cells(&self) -> Vec<CellKey> {
        let mut cells = Vec::new();
        for &family in &self.families {
            for &tags in &self.tags {
                for n in family.sizes_for(&self.sizes) {
                    for &span in &self.spans {
                        for &model in &self.models {
                            cells.push(CellKey {
                                family,
                                tags,
                                n,
                                span,
                                model,
                            });
                        }
                    }
                }
            }
        }
        cells
    }

    /// Total number of runs (`cells × reps`) — computed from the axis
    /// lengths (pinned families contribute one size each), no grid
    /// enumeration or allocation.
    pub fn total_runs(&self) -> usize {
        let sizes: usize = self
            .families
            .iter()
            .map(|f| {
                if f.node_count().is_some() {
                    1
                } else {
                    self.sizes.len()
                }
            })
            .sum();
        sizes * self.tags.len() * self.spans.len() * self.models.len() * self.reps
    }

    /// Checks that every cell of the grid is buildable — the validation
    /// [`CampaignRunner::new`] and the CLI run up front, surfaced here so
    /// library callers get an `Err` (not a panic deep inside a shard) for
    /// unrealizable family/size combinations.
    pub fn validate(&self) -> Result<(), String> {
        if self.families.is_empty()
            || self.tags.is_empty()
            || self.sizes.is_empty()
            || self.spans.is_empty()
            || self.models.is_empty()
            || self.reps == 0
        {
            return Err(
                "every grid axis (families/tags/sizes/spans/models/reps) needs at least \
                 one value"
                    .to_string(),
            );
        }
        // The classify phase runs no simulation: a second model would
        // multiply identical rows (the model is outside the seed
        // derivation) while the classify row shape omits the axis.
        if self.phase == Phase::Classify && self.models.len() > 1 {
            return Err(
                "the classify phase takes a single (ignored) model — extra models would \
                 reclassify identical draws into indistinguishable rows"
                    .to_string(),
            );
        }
        for &family in &self.families {
            for n in family.sizes_for(&self.sizes) {
                family.check_size(n).map_err(|e| e.to_string())?;
                // CSR offsets are u32: a cell whose directed-edge count
                // (2m) cannot fit would only fail deep inside a shard
                // worker's builder. Reject it here with the arithmetic.
                let edges = family.edge_count_hint(n);
                if 2 * edges > u128::from(u32::MAX) {
                    return Err(format!(
                        "cell {family}/n={n} needs {edges} edges ≈ {} CSR target slots, \
                         which overflows the u32 offset space ({} max); shrink the size \
                         axis or the family's density",
                        2 * edges,
                        u32::MAX
                    ));
                }
            }
        }
        Ok(())
    }

    /// The configuration of repetition `rep` in `cell` — a pure function
    /// of `(seed, family, tags, n, span, rep)`. The channel model is
    /// *not* part of the derivation, so the same drawn configuration
    /// appears once per model and model columns compare like for like.
    /// Uniform-tag cells keep the exact pre-strategy-axis derivation, so
    /// legacy campaign rows stay reproducible.
    ///
    /// # Panics
    /// Panics if the cell is unrealizable — [`CampaignSpec::validate`]
    /// first ([`CampaignRunner::new`] and the CLI do, so runner-driven
    /// campaigns fail fast on the constructing thread, never inside a
    /// shard worker).
    pub fn configuration(&self, cell: &CellKey, rep: usize) -> Configuration {
        let base = derive_index(
            derive_index(derive(self.seed, &cell.family.to_string()), cell.n as u64),
            cell.span,
        );
        // CSR-direct: the family streams straight into CSR form (identical
        // bytes to the legacy Graph route — pinned by the csr_direct
        // property suite) and the tag strategy draws from the same
        // positional stream it always did, so rows are bit-for-bit
        // unchanged while no adjacency-list Graph is ever materialized.
        let csr = cell
            .family
            .build_csr(cell.n, derive_index(derive(base, "graph"), rep as u64))
            .expect("validated spec");
        // The uniform stream label predates the strategy axis and must
        // stay byte-identical; other strategies get their own streams.
        let tag_stream = match cell.tags {
            TagStrategy::Uniform => derive(base, "tags"),
            other => derive(base, &format!("tags/{other}")),
        };
        let tags = cell.tags.draw(
            cell.n,
            cell.span,
            &mut rng_from(derive_index(tag_stream, rep as u64)),
        );
        Configuration::from_csr(csr, tags).expect("families build connected graphs")
    }

    /// [`CampaignSpec::configuration`] through the legacy
    /// `Graph`→`Csr::from_graph` route — same derivation streams, same
    /// tags, an adjacency-list `Graph` in the middle. The campaign never
    /// runs this; it exists so the differential suites and `benches/scale`
    /// can pin that the CSR-direct route produces byte-identical
    /// configurations (and therefore bit-identical campaign rows).
    pub fn configuration_via_graph(&self, cell: &CellKey, rep: usize) -> Configuration {
        let base = derive_index(
            derive_index(derive(self.seed, &cell.family.to_string()), cell.n as u64),
            cell.span,
        );
        let graph = cell
            .family
            .build(cell.n, derive_index(derive(base, "graph"), rep as u64))
            .expect("validated spec");
        let tag_stream = match cell.tags {
            TagStrategy::Uniform => derive(base, "tags"),
            other => derive(base, &format!("tags/{other}")),
        };
        let tags = cell.tags.draw(
            cell.n,
            cell.span,
            &mut rng_from(derive_index(tag_stream, rep as u64)),
        );
        Configuration::new(graph, tags).expect("families build connected graphs")
    }
}

/// One grid cell: a point on the `family × tags × n × span × model`
/// lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// Graph family.
    pub family: FamilySpec,
    /// Tag-placement strategy.
    pub tags: TagStrategy,
    /// Node count.
    pub n: usize,
    /// Tag span σ.
    pub span: u64,
    /// Channel model.
    pub model: ModelKind,
}

impl std::fmt::Display for CellKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}/n{}/σ{}/{}",
            self.family, self.tags, self.n, self.span, self.model
        )
    }
}

/// The metrics one run contributes to its cell's aggregate — everything
/// the campaign keeps of an execution (the `Execution` itself is dropped
/// inside the worker).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunMetrics {
    /// The drawn configuration admits leader election.
    pub feasible: bool,
    /// The run elected exactly the predicted leader (always false for
    /// infeasible cells; may be false under foreign channel models, whose
    /// executions are still measured).
    pub elected: bool,
    /// The simulation aborted (round limit) — its zeroed shape metrics
    /// must not be folded into the per-cell statistics.
    pub aborted: bool,
    /// A simulation ran to completion — only then are the simulation
    /// shape metrics below meaningful (classify-phase runs never
    /// simulate, so their zeros must not be folded either).
    pub simulated: bool,
    /// Global rounds simulated (0 when infeasible/aborted).
    pub rounds: u64,
    /// Total transmissions.
    pub transmissions: u64,
    /// Rounds executed one by one.
    pub rounds_stepped: u64,
    /// Rounds skipped by the time-leap scheduler.
    pub rounds_leapt: u64,
    /// The run recorded the classifier's shape (classify-phase runs) —
    /// only then are the three classifier metrics below folded, the
    /// decision-side analogue of `simulated`.
    pub classified: bool,
    /// Classifier iterations until the verdict (classify phase; 0 for
    /// election runs, whose shape lives in the simulation metrics).
    pub iterations: u64,
    /// Classes in the final partition (classify phase).
    pub classes: u64,
    /// Label computations the incremental worklist performed (classify
    /// phase) — the work the `O(n³Δ)` open problem counts, as the fast
    /// engine actually spends it.
    pub relabels: u64,
    /// The run's classify+compile was answered from the schedule cache
    /// (exact or canonical hit). Always false when no cache is attached.
    pub cache_hit: bool,
    /// The run went through the schedule cache and missed (classified and
    /// compiled from scratch, populating the cache). Always false when no
    /// cache is attached — `!cache_hit` alone cannot distinguish "missed"
    /// from "uncached".
    pub cache_miss: bool,
    /// Wall-clock nanoseconds for the whole run (classify + compile +
    /// simulate for the election workload).
    pub wall_ns: u64,
    /// Workspace high-water mark in bytes after the run: the summed
    /// backing-buffer capacities of the engine state the run used (sim or
    /// batch planes + classifier interner). Like `wall_ns` it is a
    /// measured, environment-dependent observation, so it lives in the
    /// rows' measured tail.
    pub mem_hw: u64,
}

/// Streaming per-cell aggregate: counters plus constant-memory
/// [`StreamingStats`] per metric. Simulation-shape metrics (rounds,
/// transmissions, stepped/leapt) are folded for runs that actually
/// simulated (feasible draws); wall time is folded for every run.
#[derive(Debug, Clone, Default)]
pub struct CellAggregate {
    /// Runs folded so far.
    pub runs: u64,
    /// Runs whose drawn configuration was feasible.
    pub feasible: u64,
    /// Runs that elected the predicted leader.
    pub elected: u64,
    /// Feasible runs whose simulation aborted on the round limit — they
    /// contribute no shape statistics (their metrics would read as zero).
    pub aborted: u64,
    /// Global round counts of completed feasible runs.
    pub rounds: StreamingStats,
    /// Transmission counts of completed feasible runs.
    pub transmissions: StreamingStats,
    /// Stepped-round counts of completed feasible runs.
    pub stepped: StreamingStats,
    /// Leapt-round counts of completed feasible runs.
    pub leapt: StreamingStats,
    /// Classifier iteration counts (classify-phase runs; feasible and
    /// infeasible draws both classify, so both fold here).
    pub iterations: StreamingStats,
    /// Final class counts (classify-phase runs).
    pub classes: StreamingStats,
    /// Incremental relabel work (classify-phase runs).
    pub relabels: StreamingStats,
    /// Wall-clock nanoseconds of all runs.
    pub wall_ns: StreamingStats,
    /// Runs answered from the schedule cache. Note: the hit/miss *split*
    /// (unlike every other column) depends on worker interleaving — two
    /// workers can race to first-miss the same key — so these counters are
    /// reported after `wall_ns` in JSONL rows, outside the deterministic
    /// byte range golden comparisons cover.
    pub cache_hits: u64,
    /// Runs that went through the cache and missed (0 when uncached).
    pub cache_misses: u64,
    /// Workspace high-water marks (bytes) of all runs — like `wall_ns`, a
    /// measured column living in the rows' tail.
    pub mem_hw: StreamingStats,
}

impl CellAggregate {
    /// Merges another aggregate over the *same cell* into this one — how
    /// the halves of an interrupted-and-resumed campaign (each covering a
    /// disjoint shard range) combine into whole-campaign aggregates.
    /// Counters and moments merge exactly; quantile estimates merge at
    /// reservoir precision (see
    /// [`StreamingStats::merge`](radio_util::stats::StreamingStats::merge)).
    pub fn merge(&mut self, other: &CellAggregate) {
        self.runs += other.runs;
        self.feasible += other.feasible;
        self.elected += other.elected;
        self.aborted += other.aborted;
        self.rounds.merge(&other.rounds);
        self.transmissions.merge(&other.transmissions);
        self.stepped.merge(&other.stepped);
        self.leapt.merge(&other.leapt);
        self.iterations.merge(&other.iterations);
        self.classes.merge(&other.classes);
        self.relabels.merge(&other.relabels);
        self.wall_ns.merge(&other.wall_ns);
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.mem_hw.merge(&other.mem_hw);
    }

    /// Folds one run's metrics into the aggregate.
    pub fn fold(&mut self, m: &RunMetrics) {
        self.runs += 1;
        self.wall_ns.push(m.wall_ns as f64);
        self.mem_hw.push(m.mem_hw as f64);
        if m.feasible {
            self.feasible += 1;
            if m.aborted {
                // A round-limit abort carries no shape metrics; folding
                // its zeros would drag min/mean/p50 down invisibly.
                self.aborted += 1;
            } else if m.simulated {
                self.rounds.push(m.rounds as f64);
                self.transmissions.push(m.transmissions as f64);
                self.stepped.push(m.rounds_stepped as f64);
                self.leapt.push(m.rounds_leapt as f64);
            }
        }
        if m.elected {
            self.elected += 1;
        }
        if m.classified {
            self.iterations.push(m.iterations as f64);
            self.classes.push(m.classes as f64);
            self.relabels.push(m.relabels as f64);
        }
        if m.cache_hit {
            self.cache_hits += 1;
        }
        if m.cache_miss {
            self.cache_misses += 1;
        }
    }
}

/// The elect-phase per-run workload: the full election pipeline on the
/// drawn configuration — classify through the worker's recycled
/// [`ClassifierWorkspace`], compile, simulate through its
/// [`SimWorkspace`], validate the exactly-one-leader contract against the
/// classifier's prediction.
///
/// Infeasible draws are recorded as such (that *rate* is itself a
/// campaign-level result — the feasibility landscape); foreign-model runs
/// that break the election contract still contribute their execution
/// shape, with `elected = false`.
pub fn election_metrics(
    workspace: &mut CampaignWorkspace,
    config: &Configuration,
    model: ModelKind,
    opts: RunOpts,
) -> RunMetrics {
    // lint:allow(wall-clock): this is the designated timing site feeding the
    // wall_ns column, which lives in the measured row tail after the pinned
    // deterministic prefix
    let start = Instant::now();
    let mut metrics = RunMetrics::default();
    // Compile through the shared schedule cache when one is attached —
    // bit-identical to the uncached compile; only wall time and the cache
    // counters differ. Neither path clones the configuration.
    let compiled = match &workspace.cache {
        Some(cache) => {
            let (compiled, lookup) = cache.compile_in(&mut workspace.classifier, config);
            metrics.cache_hit = lookup.is_hit();
            metrics.cache_miss = !lookup.is_hit();
            compiled
        }
        None => CompiledElection::compile_in(&mut workspace.classifier, config),
    };
    if !compiled.feasible() {
        metrics.wall_ns = start.elapsed().as_nanos() as u64;
        metrics.mem_hw = workspace.classifier.mem_bytes();
        return metrics;
    }
    metrics.feasible = true;
    let factory = compiled.factory();
    match workspace.sim.run_kind(model, config, &factory, opts) {
        Ok(execution) => {
            let decision = compiled.decision();
            let leaders: Vec<_> = (0..config.size() as radio_graph::NodeId)
                .filter(|&v| decision.is_leader(execution.history(v)))
                .collect();
            metrics.elected = leaders == [compiled.predicted_leader()];
            metrics.simulated = true;
            metrics.rounds = execution.rounds;
            metrics.transmissions = execution.stats.transmissions;
            metrics.rounds_stepped = execution.rounds_stepped;
            metrics.rounds_leapt = execution.rounds_leapt;
        }
        Err(_) => metrics.aborted = true,
    }
    metrics.wall_ns = start.elapsed().as_nanos() as u64;
    metrics.mem_hw = workspace.sim.mem_bytes() + workspace.classifier.mem_bytes();
    metrics
}

/// The elect-phase workload for one *batch* of runs `lo..hi` (global run
/// indices, all inside `cell`): compile once per distinct configuration
/// fingerprint, execute every feasible member through the workspace's
/// fused [`BatchWorkspace`], and fold metrics straight off the engine's
/// borrowed [`MemberView`](radio_sim::MemberView)s — no per-run
/// [`Execution`](radio_sim::Execution) is ever materialized.
///
/// Every column up to the measured tail is bit-identical to running
/// [`election_metrics`] per member. The tail differs in the expected
/// ways: `wall_ns` is the batch's elapsed time attributed evenly across
/// its members (per-member timing inside a fused pass is not separable),
/// and the cache counters account the *batch-local* compile dedupe — the
/// first member of each distinct fingerprint records the real cache
/// lookup, and members sharing its compile record a hit (with a cache
/// attached; with `--no-cache` they record neither, since no cache was
/// consulted — the batch-local dedupe is pure memoization of a pure
/// function, not a cache policy).
pub fn election_metrics_batched(
    workspace: &mut CampaignWorkspace,
    spec: &CampaignSpec,
    cell: &CellKey,
    lo: usize,
    hi: usize,
) -> Vec<RunMetrics> {
    // lint:allow(wall-clock): designated timing site feeding the wall_ns
    // column, which lives in the measured row tail
    let start = Instant::now();
    let count = hi - lo;
    let mut metrics = vec![RunMetrics::default(); count];
    let configs: Vec<Configuration> = (lo..hi)
        .map(|idx| spec.configuration(cell, idx % spec.reps))
        .collect();

    // One compile per distinct fingerprint in the batch. The memo map is
    // only ever probed and inserted (never iterated), so member order
    // stays the batch's positional order.
    let mut uniq: Vec<CompiledElection> = Vec::new();
    let mut which: Vec<usize> = Vec::with_capacity(count);
    let mut seen: FxHashMap<u128, usize> = FxHashMap::default();
    for (k, config) in configs.iter().enumerate() {
        match seen.get(&config_fingerprint(config)) {
            Some(&slot) => {
                which.push(slot);
                if workspace.cache.is_some() {
                    metrics[k].cache_hit = true;
                }
            }
            None => {
                let compiled = match &workspace.cache {
                    Some(cache) => {
                        let (compiled, lookup) =
                            cache.compile_in(&mut workspace.classifier, config);
                        metrics[k].cache_hit = lookup.is_hit();
                        metrics[k].cache_miss = !lookup.is_hit();
                        compiled
                    }
                    None => CompiledElection::compile_in(&mut workspace.classifier, config),
                };
                seen.insert(config_fingerprint(config), uniq.len());
                which.push(uniq.len());
                uniq.push(compiled);
            }
        }
    }

    let factories: Vec<Option<CanonicalFactory>> = uniq
        .iter()
        .map(|c| c.feasible().then(|| c.factory()))
        .collect();
    // Within-batch execution sharing: equal fingerprints mean equal
    // configurations (the cache's `Key::Exact` identity), and equal
    // configurations under the same opts produce bit-identical
    // executions — so the engine simulates one representative per
    // distinct feasible config and duplicates copy its shape verbatim.
    let mut runs: Vec<BatchRun<'_>> = Vec::with_capacity(count);
    let mut run_members: Vec<usize> = Vec::with_capacity(count);
    let mut rep_of: Vec<Option<usize>> = vec![None; uniq.len()];
    for k in 0..count {
        if let Some(factory) = &factories[which[k]] {
            metrics[k].feasible = true;
            if rep_of[which[k]].is_none() {
                rep_of[which[k]] = Some(k);
                runs.push(BatchRun {
                    config: &configs[k],
                    factory,
                });
                run_members.push(k);
            }
        }
    }
    if !runs.is_empty() {
        let batch = &mut workspace.batch;
        batch.run_kind_with(cell.model, &runs, spec.opts, |i, outcome| {
            let k = run_members[i];
            let m = &mut metrics[k];
            match outcome {
                Ok(view) => {
                    let compiled = &uniq[which[k]];
                    let decision = compiled.decision();
                    let mut leaders = (0..configs[k].size() as radio_graph::NodeId)
                        .filter(|&v| decision.is_leader_view(view.history(v)));
                    m.elected = leaders.next() == Some(compiled.predicted_leader())
                        && leaders.next().is_none();
                    m.simulated = true;
                    m.rounds = view.rounds();
                    m.transmissions = view.stats().transmissions;
                    m.rounds_stepped = view.rounds_stepped();
                    m.rounds_leapt = view.rounds_leapt();
                }
                Err(_) => m.aborted = true,
            }
        });
    }
    // Fan the representative's simulated shape back out to its
    // duplicates (their cache accounting, set above, is their own).
    for k in 0..count {
        if !metrics[k].feasible {
            continue;
        }
        let rep = rep_of[which[k]].expect("feasible slot has a representative");
        if rep != k {
            let src = metrics[rep];
            let m = &mut metrics[k];
            m.elected = src.elected;
            m.simulated = src.simulated;
            m.aborted = src.aborted;
            m.rounds = src.rounds;
            m.transmissions = src.transmissions;
            m.rounds_stepped = src.rounds_stepped;
            m.rounds_leapt = src.rounds_leapt;
        }
    }
    let each = start.elapsed().as_nanos() as u64 / count as u64;
    let mem_hw = workspace.batch.mem_bytes() + workspace.classifier.mem_bytes();
    for m in &mut metrics {
        m.wall_ns = each;
        m.mem_hw = mem_hw;
    }
    metrics
}

/// The classify-phase per-run workload: the decision alone, record-free,
/// through the worker's recycled [`ClassifierWorkspace`]. No compilation,
/// no simulation — the folded shape is the classifier's: iterations until
/// the verdict, final class count, and the incremental worklist's actual
/// relabel work.
pub fn classify_metrics(
    workspace: &mut CampaignWorkspace,
    config: &Configuration,
    _model: ModelKind,
    _opts: RunOpts,
) -> RunMetrics {
    // lint:allow(wall-clock): designated timing site for the classify-row
    // wall_ns column, outside the deterministic prefix
    let start = Instant::now();
    let summary = workspace.classifier.summarize_in(config);
    RunMetrics {
        feasible: summary.feasible,
        classified: true,
        iterations: summary.iterations as u64,
        classes: summary.num_classes as u64,
        relabels: summary.relabels,
        wall_ns: start.elapsed().as_nanos() as u64,
        mem_hw: workspace.classifier.mem_bytes(),
        ..RunMetrics::default()
    }
}

/// Summary of one executed shard.
#[derive(Debug, Clone, Copy)]
pub struct ShardReport {
    /// Shard index (0-based).
    pub shard: usize,
    /// Runs executed in this shard.
    pub runs: usize,
    /// Wall-clock seconds for the shard.
    pub wall_s: f64,
}

/// Executes a [`CampaignSpec`] shard by shard, folding per-run metrics
/// into per-cell [`CellAggregate`]s as each shard completes.
#[derive(Debug)]
pub struct CampaignRunner {
    spec: CampaignSpec,
    cells: Vec<CellKey>,
    aggregates: Vec<CellAggregate>,
    shards: usize,
    next_shard: usize,
    /// One process-wide schedule cache shared by every worker of every
    /// shard (elect phase with `spec.cache.enabled` only).
    cache: Option<Arc<ScheduleCache>>,
}

impl CampaignRunner {
    /// Prepares a runner splitting the run sequence into `shards`
    /// contiguous shards (clamped to ≥ 1). Elect campaigns with
    /// `spec.cache.enabled` get a fresh [`ScheduleCache`] sized by
    /// `spec.cache.capacity`; classify campaigns never cache.
    ///
    /// # Panics
    /// Panics if the spec fails [`CampaignSpec::validate`] — better here,
    /// on the constructing thread with the validator's message, than as
    /// an opaque unwrap inside a shard worker. Callers that need an
    /// `Err` instead call [`CampaignSpec::validate`] themselves first
    /// (the CLI does).
    pub fn new(spec: CampaignSpec, shards: usize) -> CampaignRunner {
        let cache = (spec.phase == Phase::Elect && spec.cache.enabled)
            .then(|| Arc::new(ScheduleCache::new(spec.cache.capacity)));
        CampaignRunner::with_cache(spec, shards, cache)
    }

    /// [`CampaignRunner::new`] with an explicit (possibly pre-warmed,
    /// possibly shared across runners) cache handle — the warm-cache bench
    /// path. `None` forces the uncached pipeline regardless of
    /// `spec.cache`.
    pub fn with_cache(
        spec: CampaignSpec,
        shards: usize,
        cache: Option<Arc<ScheduleCache>>,
    ) -> CampaignRunner {
        if let Err(msg) = spec.validate() {
            panic!("invalid campaign spec: {msg}");
        }
        let cells = spec.cells();
        let aggregates = vec![CellAggregate::default(); cells.len()];
        CampaignRunner {
            spec,
            cells,
            aggregates,
            shards: shards.max(1),
            next_shard: 0,
            cache,
        }
    }

    /// The spec this runner executes.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// The shared schedule cache, when this campaign runs one.
    pub fn cache(&self) -> Option<&Arc<ScheduleCache>> {
        self.cache.as_ref()
    }

    /// Snapshot of the cache counters (`None` when uncached) — the CLI's
    /// end-of-run summary line reads hit/miss/eviction totals here instead
    /// of re-parsing JSONL.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.stats())
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The next shard to execute (== number of completed-or-skipped
    /// shards). Persist this to resume an interrupted campaign.
    pub fn cursor(&self) -> usize {
        self.next_shard
    }

    /// True once every shard has been executed (or skipped).
    pub fn is_done(&self) -> bool {
        self.next_shard >= self.shards
    }

    /// Advances the cursor without executing — the resume path: a fresh
    /// process skips the shards a previous run already reported.
    /// Run seeds are positional, so the remaining shards produce exactly
    /// what they would have in the original process.
    ///
    /// Returns the cursor actually installed. A `shard` beyond
    /// [`shard_count`](Self::shard_count) is clamped to it (the runner is
    /// then [`is_done`](Self::is_done) and will execute nothing), and the
    /// clamped value is returned so callers can *see* the adjustment
    /// instead of silently reporting a cursor the runner never adopted —
    /// the CLI rejects out-of-range resume cursors up front on this
    /// contract.
    pub fn skip_to(&mut self, shard: usize) -> usize {
        self.next_shard = shard.min(self.shards);
        self.next_shard
    }

    /// The run-index range `[start, end)` of shard `k` — the single
    /// source of the shard-splitting arithmetic shared by execution and
    /// the CLI's resume note. The note can still describe a shard that
    /// does not exist if its caller passes an unvalidated cursor: `k ≥`
    /// [`shard_count`](Self::shard_count) yields the empty range
    /// `(total, total)`, so validate resume cursors (see
    /// [`skip_to`](Self::skip_to)) before reporting ranges.
    pub fn shard_range(&self, k: usize) -> (usize, usize) {
        let total = self.cells.len() * self.spec.reps;
        let per = total.div_ceil(self.shards).max(1);
        let start = (k * per).min(total);
        (start, ((k + 1) * per).min(total))
    }

    /// Executes the next shard over `threads` workers with the spec's
    /// phase workload ([`election_metrics`] / [`classify_metrics`]).
    /// Returns `None` when the campaign is complete.
    pub fn run_next_shard(&mut self, threads: usize) -> Option<ShardReport> {
        match self.spec.phase {
            Phase::Elect if self.spec.batch.enabled => self.run_next_shard_batched(threads),
            Phase::Elect => self.run_next_shard_with(threads, &election_metrics),
            Phase::Classify => self.run_next_shard_with(threads, &classify_metrics),
        }
    }

    /// The batched elect-phase shard path: the shard's run range is split
    /// into contiguous batches (pure position arithmetic — each batch
    /// stays inside one cell and holds at most `spec.batch.size` runs, so
    /// the split is invariant under threads and shard geometry), workers
    /// claim whole batches, and every batch runs through the worker's
    /// [`BatchWorkspace`] as one fused engine pass
    /// ([`election_metrics_batched`]).
    fn run_next_shard_batched(&mut self, threads: usize) -> Option<ShardReport> {
        if self.is_done() {
            return None;
        }
        let shard = self.next_shard;
        self.next_shard += 1;
        let (start, end) = self.shard_range(shard);
        // lint:allow(wall-clock): shard wall time feeds the stderr progress
        // report only, never a result row
        let started = Instant::now();
        let reps = self.spec.reps;
        let size = self.spec.batch.size.max(1);
        let mut batches: Vec<(usize, usize)> = Vec::new();
        let mut i = start;
        while i < end {
            let cell_end = (i / reps + 1) * reps;
            let stop = cell_end.min(end).min(i + size);
            batches.push((i, stop));
            i = stop;
        }
        let spec = &self.spec;
        let cells = &self.cells;
        let cache = &self.cache;
        let results: Vec<(usize, Vec<RunMetrics>)> = par_map_init(
            &batches,
            threads,
            || CampaignWorkspace::with_cache(cache.clone()),
            |ws, &(lo, hi)| {
                let cell_idx = lo / spec.reps;
                (
                    cell_idx,
                    election_metrics_batched(ws, spec, &cells[cell_idx], lo, hi),
                )
            },
        );
        for (cell_idx, ms) in &results {
            for m in ms {
                self.aggregates[*cell_idx].fold(m);
            }
        }
        Some(ShardReport {
            shard,
            runs: end - start,
            wall_s: started.elapsed().as_secs_f64(),
        })
    }

    /// [`CampaignRunner::run_next_shard`] with a custom per-run workload
    /// (the bench harness passes engine-comparison runners).
    ///
    /// Each worker thread owns one [`CampaignWorkspace`] — a simulation
    /// workspace *and* a classifier workspace — for the whole shard; only
    /// the shard's `RunMetrics` are materialized, never its executions or
    /// records.
    pub fn run_next_shard_with<F>(&mut self, threads: usize, run: &F) -> Option<ShardReport>
    where
        F: Fn(&mut CampaignWorkspace, &Configuration, ModelKind, RunOpts) -> RunMetrics + Sync,
    {
        if self.is_done() {
            return None;
        }
        let shard = self.next_shard;
        self.next_shard += 1;
        let (start, end) = self.shard_range(shard);
        let indices: Vec<usize> = (start..end).collect();
        // lint:allow(wall-clock): shard wall time feeds the stderr progress
        // report only, never a result row
        let started = Instant::now();
        let spec = &self.spec;
        let cells = &self.cells;
        let cache = &self.cache;
        let metrics: Vec<(usize, RunMetrics)> = par_map_init(
            &indices,
            threads,
            || CampaignWorkspace::with_cache(cache.clone()),
            |ws, &idx| {
                let cell_idx = idx / spec.reps;
                let rep = idx % spec.reps;
                let cell = &cells[cell_idx];
                let config = spec.configuration(cell, rep);
                (cell_idx, run(ws, &config, cell.model, spec.opts))
            },
        );
        for (cell_idx, m) in &metrics {
            self.aggregates[*cell_idx].fold(m);
        }
        Some(ShardReport {
            shard,
            runs: indices.len(),
            wall_s: started.elapsed().as_secs_f64(),
        })
    }

    /// Runs every remaining shard with the default election workload.
    pub fn run_to_completion(&mut self, threads: usize) -> Vec<ShardReport> {
        let mut reports = Vec::new();
        while let Some(report) = self.run_next_shard(threads) {
            reports.push(report);
        }
        reports
    }

    /// The per-cell aggregates folded so far, in cell order.
    pub fn aggregates(&self) -> impl Iterator<Item = (&CellKey, &CellAggregate)> {
        self.cells.iter().zip(&self.aggregates)
    }

    /// One JSON object per grid cell — the campaign's machine-readable
    /// output. Fields: the phase, the cell key, the counters, and
    /// per-metric `{count, mean, min, max, p50, p95}` summaries. Elect
    /// rows carry the simulation shape (rounds/transmissions/stepped/
    /// leapt); classify rows carry the classifier shape (iterations/
    /// classes/relabels) and omit the model axis, which the phase never
    /// consults. `wall_ns` begins the measured tail in both shapes:
    /// everything from `,"wall_ns"` on — wall time plus, in elect rows,
    /// the `cache_hits`/`cache_misses` counters, whose split depends on
    /// worker interleaving — is execution-dependent, so deterministic
    /// consumers strip the row by splitting on it.
    pub fn jsonl_rows(&self) -> Vec<String> {
        self.rows()
            .iter()
            .map(crate::row::CampaignRow::to_jsonl)
            .collect()
    }

    /// The typed form of [`jsonl_rows`](Self::jsonl_rows): one
    /// [`CampaignRow`](crate::row::CampaignRow) per grid cell, with the
    /// full measured tail populated. Feed these to the binary codec in
    /// [`crate::row`] for the compact on-disk format.
    pub fn rows(&self) -> Vec<crate::row::CampaignRow> {
        self.aggregates()
            .map(|(cell, agg)| cell_row(self.spec.phase, cell, agg))
            .collect()
    }
}

/// Renders one cell's aggregate as its [`CampaignRow`](crate::row::CampaignRow)
/// — the single source of the row shape, shared by [`CampaignRunner::rows`]
/// (per-shard campaigns) and the serve layer's per-job dispatch
/// ([`crate::serve`]), so a served `campaign-cell` reply and a one-shot
/// `campaign` run render bit-identical deterministic prefixes from equal
/// aggregates.
pub fn cell_row(phase: Phase, cell: &CellKey, agg: &CellAggregate) -> crate::row::CampaignRow {
    use crate::row::{CampaignRow, ClassifyRow, ElectRow, RowStats};
    match phase {
        Phase::Elect => CampaignRow::Elect(ElectRow {
            family: cell.family.to_string(),
            tags: cell.tags.to_string(),
            n: cell.n as u64,
            span: cell.span,
            model: cell.model.to_string(),
            runs: agg.runs,
            feasible: agg.feasible,
            elected: agg.elected,
            aborted: agg.aborted,
            rounds: RowStats::from(&agg.rounds),
            transmissions: RowStats::from(&agg.transmissions),
            stepped: RowStats::from(&agg.stepped),
            leapt: RowStats::from(&agg.leapt),
            wall_ns: Some(RowStats::from(&agg.wall_ns)),
            cache_hits: Some(agg.cache_hits),
            cache_misses: Some(agg.cache_misses),
            mem_hw: Some(RowStats::from(&agg.mem_hw)),
        }),
        Phase::Classify => CampaignRow::Classify(ClassifyRow {
            family: cell.family.to_string(),
            tags: cell.tags.to_string(),
            n: cell.n as u64,
            span: cell.span,
            runs: agg.runs,
            feasible: agg.feasible,
            iterations: RowStats::from(&agg.iterations),
            classes: RowStats::from(&agg.classes),
            relabels: RowStats::from(&agg.relabels),
            wall_ns: Some(RowStats::from(&agg.wall_ns)),
            mem_hw: Some(RowStats::from(&agg.mem_hw)),
        }),
    }
}

/// Executes every repetition of one grid cell through `workspace`,
/// folding the per-run metrics into a fresh [`CellAggregate`] — the serve
/// layer's per-*job* unit of dispatch, where a whole [`CampaignRunner`]
/// per request would rebuild workspaces the resident worker already keeps
/// warm. Seeds come from [`CampaignSpec::configuration`], which is
/// positional, so the aggregate (and therefore the deterministic prefix
/// of [`cell_row`]) is bit-identical to a full campaign over the same
/// single-cell spec regardless of shard/thread geometry. Runs execute
/// one at a time ([`election_metrics`] / [`classify_metrics`]); batching
/// only changes the measured tail.
pub fn run_cell(
    workspace: &mut CampaignWorkspace,
    spec: &CampaignSpec,
    cell: &CellKey,
) -> CellAggregate {
    let mut agg = CellAggregate::default();
    for rep in 0..spec.reps {
        let config = spec.configuration(cell, rep);
        let metrics = match spec.phase {
            Phase::Elect => election_metrics(workspace, &config, cell.model, spec.opts),
            Phase::Classify => classify_metrics(workspace, &config, cell.model, spec.opts),
        };
        agg.fold(&metrics);
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            phase: Phase::Elect,
            families: vec![FamilySpec::Path, FamilySpec::Star],
            tags: vec![TagStrategy::Uniform],
            sizes: vec![5],
            spans: vec![2, 4],
            models: ModelKind::ALL.to_vec(),
            reps: 2,
            seed: 11,
            opts: RunOpts::default(),
            cache: CacheConfig::default(),
            batch: BatchConfig::default(),
        }
    }

    fn tiny_classify_spec() -> CampaignSpec {
        CampaignSpec {
            phase: Phase::Classify,
            families: vec![FamilySpec::Path, FamilySpec::Star],
            tags: vec![TagStrategy::Uniform],
            sizes: vec![5, 9],
            spans: vec![0, 4],
            models: vec![ModelKind::NoCollisionDetection],
            reps: 3,
            seed: 11,
            opts: RunOpts::default(),
            cache: CacheConfig::default(),
            batch: BatchConfig::default(),
        }
    }

    #[test]
    fn grid_enumeration_and_counts() {
        let spec = tiny_spec();
        let cells = spec.cells();
        assert_eq!(cells.len(), 12, "2 families × 1 size × 2 spans × 3 models");
        assert_eq!(spec.total_runs(), cells.len() * 2);
        // row-major order: model varies fastest, family slowest
        assert_eq!(cells[0].model, ModelKind::NoCollisionDetection);
        assert_eq!(cells[1].model, ModelKind::CollisionDetection);
        assert_eq!(cells[0].family, FamilySpec::Path);
        assert_eq!(cells.last().unwrap().family, FamilySpec::Star);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn tag_strategy_axis_multiplies_the_grid() {
        let mut spec = tiny_spec();
        spec.tags = vec![
            TagStrategy::Uniform,
            TagStrategy::Clustered,
            TagStrategy::Extremes,
            TagStrategy::Arith { stride: 2 },
        ];
        let cells = spec.cells();
        assert_eq!(
            cells.len(),
            48,
            "2 families × 4 strategies × 2 spans × 3 models"
        );
        // strategy varies outside sizes/spans/models, inside family
        assert_eq!(cells[0].tags, TagStrategy::Uniform);
        assert_eq!(cells[6].tags, TagStrategy::Clustered);
        // the drawn configuration differs per strategy (same cell otherwise)
        let uni = spec.configuration(&cells[0], 0);
        let arith = spec.configuration(&cells[18], 0);
        assert_eq!(cells[18].tags, TagStrategy::Arith { stride: 2 });
        assert_eq!(uni.graph().edges(), arith.graph().edges(), "same graph");
        assert_eq!(arith.tags(), &[0, 2, 1, 0, 2], "arith stride 2 mod σ+1");
    }

    #[test]
    fn pinned_families_override_the_size_axis() {
        let mut spec = tiny_spec();
        spec.families = vec![
            FamilySpec::Path,
            "grid:3x2".parse().unwrap(),
            "hypercube:3".parse().unwrap(),
        ];
        spec.models = vec![ModelKind::NoCollisionDetection];
        spec.sizes = vec![5, 7];
        assert!(spec.validate().is_ok());
        let cells = spec.cells();
        // path crosses both sizes; the pinned families contribute one each
        assert_eq!(cells.len(), (2 + 1 + 1) * 2);
        assert!(cells.iter().any(|c| c.n == 6), "grid:3x2 pins n=6");
        assert!(cells.iter().any(|c| c.n == 8), "hypercube:3 pins n=8");
        let grid_cell = cells.iter().find(|c| c.n == 6).unwrap();
        let config = spec.configuration(grid_cell, 0);
        assert_eq!(config.size(), 6, "cell label matches the simulated graph");
    }

    #[test]
    fn validate_rejects_unrealizable_grids() {
        let mut spec = tiny_spec();
        spec.families = vec![FamilySpec::Cycle];
        spec.sizes = vec![2];
        let err = spec.validate().unwrap_err();
        assert!(err.contains("cycle"), "{err}");
        spec.sizes = vec![3];
        assert!(spec.validate().is_ok());
        spec.tags = vec![];
        assert!(spec.validate().is_err(), "empty axis");
    }

    #[test]
    fn validate_rejects_multi_model_classify_grids() {
        // the classify phase never consults the model: extra models would
        // reclassify identical draws into indistinguishable rows
        let mut spec = tiny_classify_spec();
        assert!(spec.validate().is_ok());
        spec.models = ModelKind::ALL.to_vec();
        let err = spec.validate().unwrap_err();
        assert!(err.contains("classify"), "{err}");
    }

    #[test]
    #[should_panic(expected = "invalid campaign spec")]
    fn runner_construction_fails_fast_on_unrealizable_specs() {
        // the panic happens here, on the constructing thread with the
        // validator's message — not as an opaque unwrap inside a worker
        let mut spec = tiny_spec();
        spec.families = vec![FamilySpec::Cycle];
        spec.sizes = vec![2];
        let _ = CampaignRunner::new(spec, 2);
    }

    #[test]
    fn total_runs_matches_the_enumerated_grid() {
        // the O(1) arithmetic must agree with actual enumeration, pinned
        // sizes and all
        let mut spec = tiny_spec();
        spec.families = vec![
            FamilySpec::Path,
            "grid:3x2".parse().unwrap(),
            "hypercube:3".parse().unwrap(),
        ];
        spec.tags = vec![TagStrategy::Uniform, TagStrategy::Extremes];
        spec.sizes = vec![5, 7, 9];
        assert_eq!(spec.total_runs(), spec.cells().len() * spec.reps);
    }

    #[test]
    fn family_kind_is_a_faithful_spec_alias() {
        for kind in FamilyKind::ALL {
            assert_eq!(kind.name(), kind.spec().to_string(), "{kind}");
            let parsed: FamilySpec = kind.name().parse().unwrap();
            assert_eq!(parsed, kind.spec());
            // the alias draws the same graphs as the spec
            let a = kind.build(7, 3).unwrap();
            let b = kind.spec().build(7, 3).unwrap();
            assert_eq!(a.edges(), b.edges());
        }
    }

    #[test]
    fn family_kind_build_rejects_small_cycles() {
        // the pre-grammar axis silently clamped Cycle to n=3; library
        // callers must get an Err so a cell label can't disagree with the
        // simulated graph
        let err = FamilyKind::Cycle.build(2, 0).unwrap_err();
        assert_eq!(err.n, 2);
        assert!(err.to_string().contains("cycle"), "{err}");
        assert!(FamilyKind::Cycle.build(3, 0).is_ok());
    }

    #[test]
    fn configurations_are_positional_and_model_independent() {
        let spec = tiny_spec();
        let cells = spec.cells();
        // same (family, n, span, rep) across models → identical config
        let a = spec.configuration(&cells[0], 1);
        let b = spec.configuration(&cells[1], 1);
        assert_eq!(a, b, "model must not perturb the drawn configuration");
        // different rep → (overwhelmingly) different tags, same graph shape
        let c = spec.configuration(&cells[0], 0);
        assert_eq!(a.graph().node_count(), c.graph().node_count());
        // derivation is stable across calls
        assert_eq!(a, spec.configuration(&cells[0], 1));
    }

    #[test]
    fn family_kind_round_trips_names() {
        for kind in FamilyKind::ALL {
            let parsed: FamilyKind = kind.name().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert_eq!("btree".parse::<FamilyKind>(), Ok(FamilyKind::BalancedTree));
        assert!("kagome-lattice".parse::<FamilyKind>().is_err());
        for kind in FamilyKind::ALL {
            let g = kind.build(7, 3).unwrap();
            assert!(radio_graph::algo::is_connected(&g), "{kind}");
        }
    }

    #[test]
    fn sharded_run_aggregates_every_run_exactly_once() {
        let spec = tiny_spec();
        let total = spec.total_runs();
        let mut runner = CampaignRunner::new(spec, 5);
        let mut seen = 0usize;
        while let Some(report) = runner.run_next_shard(2) {
            seen += report.runs;
        }
        assert_eq!(seen, total);
        let folded: u64 = runner.aggregates().map(|(_, a)| a.runs).sum();
        assert_eq!(folded as usize, total);
        for (_, agg) in runner.aggregates() {
            assert_eq!(agg.runs, 2, "reps per cell");
        }
        assert!(runner.is_done());
        assert!(runner.run_next_shard(2).is_none());
    }

    #[test]
    fn shard_geometry_does_not_change_results() {
        // Rows are deterministic up to the wall-clock summary (the only
        // measured, non-derived field): strip it before comparing.
        let rows_with = |shards: usize, threads: usize| -> Vec<String> {
            let mut runner = CampaignRunner::new(tiny_spec(), shards);
            runner.run_to_completion(threads);
            runner
                .jsonl_rows()
                .into_iter()
                .map(|row| row.split(",\"wall_ns\"").next().unwrap().to_string())
                .collect()
        };
        let one = rows_with(1, 1);
        assert_eq!(one, rows_with(4, 2), "sharding must not perturb rows");
        assert_eq!(one, rows_with(100, 3), "even empty shards");
    }

    #[test]
    fn resume_reproduces_the_remaining_shards() {
        // Process A runs shards 0..2 then dies; process B skips to shard 2
        // and finishes. B's aggregates must equal a full run minus A's
        // shards — checked cell-wise via the run counters and by
        // re-merging row counts.
        let spec = tiny_spec();
        let mut full = CampaignRunner::new(spec.clone(), 4);
        full.run_to_completion(2);

        let mut a = CampaignRunner::new(spec.clone(), 4);
        a.run_next_shard(2);
        a.run_next_shard(2);
        assert_eq!(a.cursor(), 2);

        let mut b = CampaignRunner::new(spec, 4);
        b.skip_to(a.cursor());
        b.run_to_completion(2);

        for (((_, f), (_, ra)), (_, rb)) in
            full.aggregates().zip(a.aggregates()).zip(b.aggregates())
        {
            assert_eq!(f.runs, ra.runs + rb.runs);
            assert_eq!(f.feasible, ra.feasible + rb.feasible);
            assert_eq!(f.elected, ra.elected + rb.elected);
        }
    }

    #[test]
    fn skip_to_returns_the_installed_cursor_and_clamps() {
        let mut runner = CampaignRunner::new(tiny_spec(), 4);
        assert_eq!(runner.skip_to(2), 2);
        assert_eq!(runner.cursor(), 2);
        // Out-of-range cursors clamp to the shard count (done, nothing to
        // run) and the clamp is visible in the return value.
        assert_eq!(runner.skip_to(99), 4);
        assert!(runner.is_done());
        assert!(runner.run_next_shard(1).is_none());
        // A nonexistent shard's range is empty — callers reporting ranges
        // must validate cursors first.
        let (start, end) = runner.shard_range(99);
        assert_eq!(start, end);
    }

    #[test]
    fn run_cell_matches_a_single_cell_campaign() {
        for phase in [Phase::Elect, Phase::Classify] {
            let spec = CampaignSpec {
                phase,
                families: vec![FamilySpec::Path],
                tags: vec![TagStrategy::Uniform],
                sizes: vec![6],
                spans: vec![3],
                models: vec![ModelKind::NoCollisionDetection],
                reps: 3,
                seed: 17,
                opts: RunOpts::default(),
                cache: CacheConfig::default(),
                batch: BatchConfig::default(),
            };
            let cells = spec.cells();
            assert_eq!(cells.len(), 1);
            let mut ws = CampaignWorkspace::new();
            let agg = run_cell(&mut ws, &spec, &cells[0]);
            let served = cell_row(phase, &cells[0], &agg).to_jsonl();

            let mut runner = CampaignRunner::new(spec, 2);
            runner.run_to_completion(2);
            let campaign = runner.jsonl_rows().remove(0);

            let strip = |row: &str| row.split(",\"wall_ns\"").next().unwrap().to_string();
            assert_eq!(
                strip(&served),
                strip(&campaign),
                "{phase}: per-job dispatch must render the same deterministic prefix"
            );
        }
    }

    #[test]
    fn jsonl_rows_have_stable_shape() {
        let mut runner = CampaignRunner::new(tiny_spec(), 2);
        runner.run_to_completion(2);
        let rows = runner.jsonl_rows();
        assert_eq!(rows.len(), 12);
        for row in &rows {
            assert!(row.starts_with('{') && row.ends_with('}'));
            assert!(row.contains("\"family\":\""));
            assert!(row.contains("\"tags\":\"uniform\""));
            assert!(row.contains("\"runs\":2"));
            assert!(row.contains("\"wall_ns\":{\"count\":2"));
        }
        // the paper's model on a feasible-leaning grid elects leaders
        let elected: u64 = runner
            .aggregates()
            .filter(|(c, _)| c.model == ModelKind::NoCollisionDetection)
            .map(|(_, a)| a.elected)
            .sum();
        assert!(elected > 0, "default-model cells must elect");
    }

    #[test]
    fn aborted_runs_are_counted_but_not_folded_into_shape_stats() {
        // A feasible configuration with a round limit far below its
        // election time: the run aborts, and its zeroed metrics must not
        // contaminate the cell's rounds/transmissions statistics.
        let config = radio_graph::families::h_m(9); // needs well over 2 rounds
        let mut ws = CampaignWorkspace::new();
        let m = election_metrics(
            &mut ws,
            &config,
            ModelKind::NoCollisionDetection,
            radio_sim::RunOpts::with_max_rounds(2),
        );
        assert!(m.feasible && m.aborted && !m.elected);
        let mut agg = CellAggregate::default();
        agg.fold(&m);
        assert_eq!((agg.runs, agg.feasible, agg.aborted), (1, 1, 1));
        assert!(agg.rounds.is_empty(), "no zero sample folded");
        // a completed run folds normally alongside it
        let ok = election_metrics(
            &mut ws,
            &config,
            ModelKind::NoCollisionDetection,
            radio_sim::RunOpts::default(),
        );
        agg.fold(&ok);
        assert_eq!(agg.rounds.count(), 1);
        assert!(agg.rounds.min().unwrap() > 2.0);
    }

    #[test]
    fn election_metrics_reports_infeasible_draws() {
        // A uniform-tag cycle is maximally symmetric: infeasible.
        let config =
            Configuration::with_uniform_tags(radio_graph::generators::cycle(4), 0).unwrap();
        let mut ws = CampaignWorkspace::new();
        let m = election_metrics(
            &mut ws,
            &config,
            ModelKind::NoCollisionDetection,
            RunOpts::default(),
        );
        assert!(!m.feasible);
        assert!(!m.elected);
        assert_eq!(m.rounds, 0);
    }

    #[test]
    fn classify_metrics_reports_the_classifier_shape() {
        let mut ws = CampaignWorkspace::new();
        let feasible = radio_graph::families::h_m(3);
        let m = classify_metrics(
            &mut ws,
            &feasible,
            ModelKind::NoCollisionDetection,
            RunOpts::default(),
        );
        assert!(m.feasible);
        assert_eq!(m.iterations, 1);
        assert_eq!(m.classes, 4);
        assert!(m.relabels >= 4, "iteration 1 relabels everyone");
        assert_eq!((m.rounds, m.transmissions, m.elected as u64), (0, 0, 0));

        let infeasible = radio_graph::families::s_m(2);
        let m = classify_metrics(
            &mut ws,
            &infeasible,
            ModelKind::NoCollisionDetection,
            RunOpts::default(),
        );
        assert!(!m.feasible);
        assert_eq!(m.iterations, 2);
        assert_eq!(m.classes, 2);
    }

    #[test]
    fn classify_campaign_folds_classifier_stats_per_cell() {
        let spec = tiny_classify_spec();
        let cells = spec.cells().len();
        assert_eq!(cells, 8, "2 families × 2 sizes × 2 spans × 1 model");
        let mut runner = CampaignRunner::new(spec, 3);
        runner.run_to_completion(2);
        for (cell, agg) in runner.aggregates() {
            assert_eq!(agg.runs, 3, "{cell}");
            // every classify run folds the classifier shape
            assert_eq!(agg.iterations.count(), 3, "{cell}");
            assert_eq!(agg.classes.count(), 3, "{cell}");
            assert_eq!(agg.relabels.count(), 3, "{cell}");
            assert!(agg.iterations.min().unwrap() >= 1.0, "{cell}");
            // span-0 draws are uniform-tag: never feasible
            if cell.span == 0 {
                assert_eq!(agg.feasible, 0, "{cell}");
            }
            // no simulation shape in a classify campaign
            assert!(agg.rounds.is_empty(), "{cell}");
            assert_eq!(agg.aborted, 0, "{cell}");
        }
    }

    #[test]
    fn classify_rows_have_the_classify_shape() {
        let mut runner = CampaignRunner::new(tiny_classify_spec(), 2);
        runner.run_to_completion(2);
        let rows = runner.jsonl_rows();
        assert_eq!(rows.len(), 8);
        for row in &rows {
            assert!(row.starts_with("{\"phase\":\"classify\""), "{row}");
            assert!(row.contains("\"iterations\":{\"count\":3"), "{row}");
            assert!(row.contains("\"classes\":{"), "{row}");
            assert!(row.contains("\"relabels\":{"), "{row}");
            assert!(!row.contains("\"model\""), "{row}");
            assert!(!row.contains("\"rounds\""), "{row}");
            assert!(row.contains(",\"wall_ns\":{"), "{row}");
        }
    }

    #[test]
    fn cached_and_uncached_campaigns_produce_identical_rows() {
        // The cache must be invisible in every deterministic field — only
        // the measured tail (wall time, cache counters) may differ.
        let rows_with = |cache: CacheConfig| -> Vec<String> {
            let mut spec = tiny_spec();
            spec.cache = cache;
            let mut runner = CampaignRunner::new(spec, 3);
            runner.run_to_completion(2);
            runner
                .jsonl_rows()
                .into_iter()
                .map(|row| row.split(",\"wall_ns\"").next().unwrap().to_string())
                .collect()
        };
        assert_eq!(
            rows_with(CacheConfig::default()),
            rows_with(CacheConfig::disabled())
        );
        // a tiny capacity thrashes the LRU but never changes results
        assert_eq!(
            rows_with(CacheConfig::default()),
            rows_with(CacheConfig::with_capacity(1))
        );
    }

    #[test]
    fn cached_campaign_reports_hits_in_rows_and_stats() {
        // The one-lookup-per-run accounting asserted below is the
        // *sequential* path's contract; the batched path dedupes compiles
        // within a batch, so its lookup count can be below total_runs
        // (pinned by batched_dedupe_accounts_hits_without_extra_lookups).
        let mut spec = tiny_spec();
        spec.batch = BatchConfig::disabled();
        let mut runner = CampaignRunner::new(spec, 2);
        runner.run_to_completion(2);
        let stats = runner
            .cache_stats()
            .expect("elect campaigns cache by default");
        assert_eq!(stats.lookups(), runner.spec().total_runs() as u64);
        // 3 models share each (family, n, span, rep) draw, so at least
        // two-thirds of the lookups hit even with racing workers
        assert!(stats.hits > 0, "{stats:?}");
        let folded: u64 = runner.aggregates().map(|(_, a)| a.cache_hits).sum();
        assert_eq!(folded, stats.hits, "per-cell counters fold every hit");
        let rows = runner.jsonl_rows();
        assert!(
            rows.iter().all(|r| r.contains(",\"cache_hits\":")),
            "elect rows carry counters"
        );
        assert!(
            rows.iter().any(|r| !r.contains("\"cache_hits\":0")),
            "some cell must record a hit"
        );
        // counters sit after wall_ns, in the stripped tail
        for row in &rows {
            let tail = row.split(",\"wall_ns\"").nth(1).unwrap();
            assert!(tail.contains("\"cache_hits\""), "{row}");
        }
    }

    #[test]
    fn batched_dedupe_accounts_hits_without_extra_lookups() {
        // Arith tags redraw the same tag vector every rep, so every batch
        // holds duplicate fingerprints: the batch-local memo answers them
        // without consulting the shared cache, while their metrics still
        // record hits. Rows stay bit-identical to the unbatched campaign
        // up to the measured tail.
        let mut spec = tiny_spec();
        spec.tags = vec![TagStrategy::Arith { stride: 1 }];
        spec.reps = 6;
        spec.batch = BatchConfig::with_size(4);
        let mut runner = CampaignRunner::new(spec.clone(), 1);
        runner.run_to_completion(1);
        let stats = runner.cache_stats().unwrap();
        assert!(
            stats.lookups() < spec.total_runs() as u64,
            "batch-local dedupe must skip shared-cache lookups: {stats:?}"
        );
        let folded: u64 = runner.aggregates().map(|(_, a)| a.cache_hits).sum();
        assert!(folded >= stats.hits, "{folded} vs {stats:?}");
        assert!(folded > 0, "deduped members still record hits");
        let mut seq_spec = spec;
        seq_spec.batch = BatchConfig::disabled();
        let mut seq = CampaignRunner::new(seq_spec, 2);
        seq.run_to_completion(2);
        let strip = |rows: Vec<String>| -> Vec<String> {
            rows.into_iter()
                .map(|r| r.split(",\"wall_ns\"").next().unwrap().to_string())
                .collect()
        };
        assert_eq!(strip(runner.jsonl_rows()), strip(seq.jsonl_rows()));
    }

    #[test]
    fn disabled_cache_reports_no_stats_and_zero_counters() {
        let mut spec = tiny_spec();
        spec.cache = CacheConfig::disabled();
        let mut runner = CampaignRunner::new(spec, 2);
        runner.run_to_completion(2);
        assert!(runner.cache_stats().is_none());
        for (_, agg) in runner.aggregates() {
            assert_eq!((agg.cache_hits, agg.cache_misses), (0, 0));
        }
        for row in runner.jsonl_rows() {
            assert!(
                row.contains("\"cache_hits\":0,\"cache_misses\":0,\"mem_hw\":"),
                "{row}"
            );
        }
    }

    #[test]
    fn classify_campaigns_never_attach_a_cache() {
        let mut runner = CampaignRunner::new(tiny_classify_spec(), 2);
        assert!(runner.cache_stats().is_none(), "classify compiles nothing");
        runner.run_to_completion(2);
        for row in runner.jsonl_rows() {
            assert!(!row.contains("cache"), "{row}");
        }
    }

    #[test]
    fn classify_campaign_is_shard_and_thread_invariant() {
        let rows_with = |shards: usize, threads: usize| -> Vec<String> {
            let mut runner = CampaignRunner::new(tiny_classify_spec(), shards);
            runner.run_to_completion(threads);
            runner
                .jsonl_rows()
                .into_iter()
                .map(|row| row.split(",\"wall_ns\"").next().unwrap().to_string())
                .collect()
        };
        let one = rows_with(1, 1);
        assert_eq!(one, rows_with(4, 3));
        assert_eq!(one, rows_with(16, 2));
    }

    /// The scale-path row contract: the CSR-direct configuration route
    /// (what the campaign runs) and the legacy `Graph` route draw
    /// identical configurations and produce identical deterministic row
    /// fields — so switching the campaign to CSR-direct changed no row.
    #[test]
    fn csr_direct_rows_are_bit_for_bit_with_the_graph_route() {
        let spec = tiny_spec();
        let mut ws_direct = CampaignWorkspace::new();
        let mut ws_legacy = CampaignWorkspace::new();
        for cell in spec.cells() {
            for rep in 0..spec.reps {
                let direct = spec.configuration(&cell, rep);
                let legacy = spec.configuration_via_graph(&cell, rep);
                assert_eq!(direct, legacy, "{cell} rep {rep}: configurations diverge");
                let a = election_metrics(&mut ws_direct, &direct, cell.model, spec.opts);
                let b = election_metrics(&mut ws_legacy, &legacy, cell.model, spec.opts);
                // Everything except the measured tail (wall_ns, mem_hw).
                assert_eq!(
                    (a.feasible, a.elected, a.simulated, a.aborted, a.rounds),
                    (b.feasible, b.elected, b.simulated, b.aborted, b.rounds),
                    "{cell} rep {rep}: outcome fields diverge"
                );
                assert_eq!(
                    (
                        a.transmissions,
                        a.rounds_stepped,
                        a.rounds_leapt,
                        a.cache_hit,
                        a.cache_miss
                    ),
                    (
                        b.transmissions,
                        b.rounds_stepped,
                        b.rounds_leapt,
                        b.cache_hit,
                        b.cache_miss
                    ),
                    "{cell} rep {rep}: shape fields diverge"
                );
            }
        }
    }
}
