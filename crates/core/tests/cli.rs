//! Integration tests for the `anon-radio` command-line binary.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_anon-radio"))
}

fn run_with_stdin(args: &[&str], stdin: &str) -> (String, String, i32) {
    let mut child = bin()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("binary exits");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

fn family(kind: &str, m: &str) -> String {
    let out = bin()
        .args(["family", kind, m])
        .output()
        .expect("family runs");
    assert!(out.status.success());
    String::from_utf8(out.stdout).expect("utf8 config")
}

#[test]
fn family_emits_parseable_configs() {
    let text = family("h", "3");
    assert!(text.starts_with("config 4 3"));
    assert!(text.contains("tags 3 0 0 4"));
    let parsed = radio_graph::io::from_text(&text).unwrap();
    assert_eq!(parsed, radio_graph::families::h_m(3));
}

#[test]
fn check_pipeline_feasible_and_infeasible() {
    let (stdout, _, code) = run_with_stdin(&["check", "-"], &family("h", "2"));
    assert_eq!(code, 0);
    assert!(stdout.contains("FEASIBLE"), "{stdout}");

    let (stdout, _, code) = run_with_stdin(&["check", "-"], &family("s", "2"));
    assert_eq!(code, 0);
    assert!(stdout.contains("INFEASIBLE"), "{stdout}");
}

#[test]
fn elect_pipeline_reports_leader() {
    let (stdout, _, code) = run_with_stdin(&["elect", "-"], &family("h", "2"));
    assert_eq!(code, 0);
    assert!(stdout.contains("leader: v0"), "{stdout}");
    assert!(stdout.contains("transmissions: 4"), "{stdout}");
}

#[test]
fn compile_pipeline_prints_lists() {
    let (stdout, _, code) = run_with_stdin(&["compile", "-"], &family("g", "2"));
    assert_eq!(code, 0);
    assert!(stdout.contains("L_1[1]"), "{stdout}");
    assert!(stdout.contains("terminate"), "{stdout}");
}

#[test]
fn explain_pipeline_shows_certificates() {
    let (stdout, _, code) = run_with_stdin(&["explain", "-"], &family("s", "3"));
    assert_eq!(code, 0);
    assert!(stdout.contains("history twins"), "{stdout}");
    assert!(stdout.contains("automorphism"), "{stdout}");
}

#[test]
fn dot_pipeline_exports_graphviz() {
    let (stdout, _, code) = run_with_stdin(&["dot", "-"], &family("h", "1"));
    assert_eq!(code, 0);
    assert!(stdout.starts_with("graph configuration {"), "{stdout}");
}

#[test]
fn bad_inputs_fail_cleanly() {
    // malformed configuration
    let (_, stderr, code) = run_with_stdin(&["check", "-"], "config broken\n");
    assert_eq!(code, 2);
    assert!(stderr.contains("invalid configuration"), "{stderr}");

    // unknown subcommand prints usage
    let out = bin().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    // missing file argument
    let out = bin().arg("check").output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    // nonexistent file
    let out = bin()
        .args(["check", "/nonexistent/nowhere.cfg"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn family_argument_validation() {
    for bad in [
        &["family", "g", "1"][..],
        &["family", "x", "3"],
        &["family", "h"],
    ] {
        let out = bin().args(bad).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{bad:?}");
    }
}
