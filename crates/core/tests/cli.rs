//! Integration tests for the `anon-radio` command-line binary.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_anon-radio"))
}

fn run_with_stdin(args: &[&str], stdin: &str) -> (String, String, i32) {
    let mut child = bin()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("binary exits");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

fn family(kind: &str, m: &str) -> String {
    let out = bin()
        .args(["family", kind, m])
        .output()
        .expect("family runs");
    assert!(out.status.success());
    String::from_utf8(out.stdout).expect("utf8 config")
}

#[test]
fn family_emits_parseable_configs() {
    let text = family("h", "3");
    assert!(text.starts_with("config 4 3"));
    assert!(text.contains("tags 3 0 0 4"));
    let parsed = radio_graph::io::from_text(&text).unwrap();
    assert_eq!(parsed, radio_graph::families::h_m(3));
}

#[test]
fn check_pipeline_feasible_and_infeasible() {
    let (stdout, _, code) = run_with_stdin(&["check", "-"], &family("h", "2"));
    assert_eq!(code, 0);
    assert!(stdout.contains("FEASIBLE"), "{stdout}");

    let (stdout, _, code) = run_with_stdin(&["check", "-"], &family("s", "2"));
    assert_eq!(code, 0);
    assert!(stdout.contains("INFEASIBLE"), "{stdout}");
}

#[test]
fn elect_pipeline_reports_leader() {
    let (stdout, _, code) = run_with_stdin(&["elect", "-"], &family("h", "2"));
    assert_eq!(code, 0);
    assert!(stdout.contains("leader: v0"), "{stdout}");
    assert!(stdout.contains("transmissions: 4"), "{stdout}");
}

#[test]
fn compile_pipeline_prints_lists() {
    let (stdout, _, code) = run_with_stdin(&["compile", "-"], &family("g", "2"));
    assert_eq!(code, 0);
    assert!(stdout.contains("L_1[1]"), "{stdout}");
    assert!(stdout.contains("terminate"), "{stdout}");
}

#[test]
fn explain_pipeline_shows_certificates() {
    let (stdout, _, code) = run_with_stdin(&["explain", "-"], &family("s", "3"));
    assert_eq!(code, 0);
    assert!(stdout.contains("history twins"), "{stdout}");
    assert!(stdout.contains("automorphism"), "{stdout}");
}

#[test]
fn dot_pipeline_exports_graphviz() {
    let (stdout, _, code) = run_with_stdin(&["dot", "-"], &family("h", "1"));
    assert_eq!(code, 0);
    assert!(stdout.starts_with("graph configuration {"), "{stdout}");
}

#[test]
fn bad_inputs_fail_cleanly() {
    // malformed configuration
    let (_, stderr, code) = run_with_stdin(&["check", "-"], "config broken\n");
    assert_eq!(code, 2);
    assert!(stderr.contains("invalid configuration"), "{stderr}");

    // unknown subcommand prints usage
    let out = bin().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    // missing file argument
    let out = bin().arg("check").output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    // nonexistent file
    let out = bin()
        .args(["check", "/nonexistent/nowhere.cfg"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn campaign_accepts_the_scenario_grammar() {
    let out = bin()
        .args([
            "campaign",
            "--families",
            "grid:3x2,torus:3x3,hypercube:3",
            "--tags",
            "clustered,arith:2",
            "--spans",
            "4",
            "--models",
            "no-cd",
            "--reps",
            "1",
            "--shards",
            "2",
            "--threads",
            "1",
            "--seed",
            "9",
        ])
        .output()
        .expect("campaign runs");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let rows: Vec<&str> = stdout.lines().collect();
    assert_eq!(rows.len(), 6, "3 pinned families × 2 strategies: {stdout}");
    // phase-tagged rows carry the scenario axes …
    assert!(rows.iter().all(|r| r.contains("\"phase\":\"elect\"")));
    assert!(rows
        .iter()
        .any(|r| r.contains("\"family\":\"grid:3x2\"") && r.contains("\"n\":6")));
    assert!(rows
        .iter()
        .any(|r| r.contains("\"family\":\"torus:3x3\"") && r.contains("\"n\":9")));
    assert!(rows
        .iter()
        .any(|r| r.contains("\"family\":\"hypercube:3\"") && r.contains("\"n\":8")));
    // … including the tag-strategy axis
    assert_eq!(
        rows.iter()
            .filter(|r| r.contains("\"tags\":\"clustered\""))
            .count(),
        3
    );
    assert_eq!(
        rows.iter()
            .filter(|r| r.contains("\"tags\":\"arith:2\""))
            .count(),
        3
    );
}

#[test]
fn campaign_rejects_unrealizable_grids() {
    // a cycle cannot have 2 nodes: error, never a clamped graph whose
    // size disagrees with the row label
    let out = bin()
        .args(["campaign", "--families", "cycle", "--sizes", "2"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cycle"), "{stderr}");

    // unknown family names list the registry
    let out = bin()
        .args(["campaign", "--families", "kagome"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("hypercube"), "{stderr}");

    // malformed tag strategies are rejected up front
    let out = bin()
        .args(["campaign", "--tags", "arith:0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn family_argument_validation() {
    for bad in [
        &["family", "g", "1"][..],
        &["family", "x", "3"],
        &["family", "h"],
    ] {
        let out = bin().args(bad).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{bad:?}");
    }
}

/// Exit-code matrix for `--resume-from`: a cursor at or past the shard
/// count is a usage error (exit 2, no rows) — it used to exit 0 with a
/// garbled note and all-null `runs:0` rows that poison merged
/// checkpoints — while in-range cursors keep working.
#[test]
fn campaign_resume_from_exit_code_matrix() {
    let campaign = |resume: &str| {
        bin()
            .args([
                "campaign",
                "--families",
                "path",
                "--sizes",
                "5",
                "--spans",
                "2",
                "--models",
                "no-cd",
                "--reps",
                "1",
                "--shards",
                "4",
                "--threads",
                "1",
                "--resume-from",
                resume,
            ])
            .output()
            .expect("campaign runs")
    };
    // == shard_count and far beyond: both rejected before any run.
    for bad in ["4", "99"] {
        let out = campaign(bad);
        assert_eq!(out.status.code(), Some(2), "--resume-from {bad}");
        assert!(out.stdout.is_empty(), "no rows on a rejected cursor");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("out of range"), "{stderr}");
        assert!(stderr.contains("0..4"), "names the valid cursors: {stderr}");
    }
    // Last valid cursor still resumes (and emits the partial-rows note).
    let out = campaign("3");
    assert_eq!(out.status.code(), Some(0));
    assert!(!out.stdout.is_empty(), "resumed campaign emits rows");
    assert!(String::from_utf8_lossy(&out.stderr).contains("note: resumed at shard 3"));
}

/// Process-level smoke of `serve --stdin-stdout`: the library session
/// tests live in `tests/serve.rs`; this pins the CLI wiring — transport
/// flags, stderr summary, exit code.
#[test]
fn serve_stdin_stdout_answers_jobs_and_exits_zero() {
    let input = concat!(
        "{\"op\":\"elect\",\"id\":1,\"family\":\"path\",\"n\":6,\"span\":3,\"seed\":42}\n",
        "not json\n",
        "{\"op\":\"shutdown\",\"id\":2}\n",
    );
    let (stdout, stderr, code) = run_with_stdin(&["serve", "--stdin-stdout"], input);
    assert_eq!(code, 0, "stderr: {stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3);
    assert!(
        lines[0].starts_with("{\"ok\":true,\"id\":1,\"op\":\"elect\""),
        "{stdout}"
    );
    assert!(lines[1].contains("\"error\":\"bad-request\""), "{stdout}");
    assert!(
        lines[2].starts_with("{\"ok\":true,\"id\":2,\"op\":\"shutdown\""),
        "{stdout}"
    );
    assert!(stderr.contains("shutdown job"), "{stderr}");
}

#[test]
fn serve_transport_flags_are_validated() {
    // no transport at all
    let (_, stderr, code) = run_with_stdin(&["serve"], "");
    assert_eq!(code, 2);
    assert!(stderr.contains("exactly one transport"), "{stderr}");
    // two transports
    let (_, stderr, code) =
        run_with_stdin(&["serve", "--stdin-stdout", "--tcp", "127.0.0.1:0"], "");
    assert_eq!(code, 2);
    assert!(stderr.contains("exactly one transport"), "{stderr}");
    // unknown flag
    let (_, stderr, code) = run_with_stdin(&["serve", "--bogus"], "");
    assert_eq!(code, 2);
    assert!(stderr.contains("unknown serve argument"), "{stderr}");
    // zero-sized pool
    let (_, stderr, code) = run_with_stdin(&["serve", "--stdin-stdout", "--threads", "0"], "");
    assert_eq!(code, 2);
    assert!(stderr.contains("at least 1"), "{stderr}");
}
