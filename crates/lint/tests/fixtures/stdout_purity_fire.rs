// Fixture: stdout-purity fires on stdout writes from library code.
// Linted under crates/classifier/src/stdout_purity_fire.rs. Never compiled.

pub fn report(feasible: bool, iterations: usize) {
    println!("feasible: {feasible}");
    print!("iterations: {iterations}");
    let _ = dbg!(iterations);
}
