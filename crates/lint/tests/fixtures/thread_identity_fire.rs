// Fixture: thread-identity fires when thread identity can reach results.
// Linted under crates/sim/src/thread_identity_fire.rs. Never compiled.

fn shard_count() -> usize {
    std::thread::available_parallelism()
        .map(|nz| nz.get())
        .unwrap_or(1)
}

fn worker_tag() -> String {
    format!("{:?}", std::thread::current().id())
}
