//! FIXTURE (never compiled): the batch-engine failure modes the
//! determinism contract forbids. Linted under the logical path
//! `crates/sim/src/batch.rs` — the fused engine is result-affecting
//! code, so member bookkeeping must never ride on hash-map iteration
//! order (batch results are positional) and the fused scheduler must
//! never let worker identity pick which member steps next.

use std::collections::HashMap;

fn sweep_members(members: &HashMap<usize, u64>) -> Vec<u64> {
    // hash-order sweep: member retirement order would vary run to run
    let mut horizons = Vec::new();
    for (_, &quiet_horizon) in members.iter() {
        horizons.push(quiet_horizon);
    }
    horizons
}

fn pick_next_member(runnable: &[usize]) -> usize {
    // worker identity steering the merged event queue
    let tid = std::thread::current().id();
    let salt = format!("{tid:?}").len();
    runnable[salt % runnable.len()]
}
