// Fixture: wall-clock fires on Instant::now and SystemTime outside the
// measurement surface. Linted under crates/core/src/wall_clock_fire.rs.
// Never compiled.

fn measure<F: FnOnce()>(f: F) -> u128 {
    let start = std::time::Instant::now();
    f();
    start.elapsed().as_nanos()
}

fn stamp() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
