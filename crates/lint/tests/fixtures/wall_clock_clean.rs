// Fixture: byte-for-byte the same body as wall_clock_fire.rs, but linted
// under crates/bench/src/wall_clock_clean.rs — the measurement harness is
// the one crate allowed to read the wall clock, so nothing fires here.
// Never compiled.

fn measure<F: FnOnce()>(f: F) -> u128 {
    let start = std::time::Instant::now();
    f();
    start.elapsed().as_nanos()
}

fn stamp() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
