// Fixture: the house randomness idiom — every stream is derived from a
// root seed and a positional label, so reruns are bit-for-bit identical.
// Linted under crates/graph/src/os_entropy_clean.rs. Never compiled.

fn cell_rng(root: u64, rep: u64) -> rand::rngs::StdRng {
    radio_util::rng::stream(root, "tags/clustered", rep)
}

fn derived(root: u64) -> u64 {
    radio_util::rng::derive(root, "graphs")
}
