// Fixture: the approved idioms around hash containers — lookups, ordered
// containers, normalized-order iteration under an annotated allow.
// Linted under crates/sim/src/nondet_iter_clean.rs. Never compiled.

fn lookup(index: &radio_util::FxHashMap<u64, u32>, key: u64) -> Option<u32> {
    index.get(&key).copied()
}

fn grouped(xs: &[(u64, u32)]) -> Vec<(u64, Vec<u32>)> {
    // BTreeMap iterates in key order: deterministic by construction.
    let mut map: std::collections::BTreeMap<u64, Vec<u32>> = Default::default();
    for &(k, v) in xs {
        map.entry(k).or_default().push(v);
    }
    map.into_iter().collect()
}

fn sorted_members(set: &mut radio_util::FxHashSet<u32>) -> Vec<u32> {
    // lint:allow(nondet-iter): drained into a sort — order is normalized
    // before anything observes it
    let mut out: Vec<u32> = set.drain().collect();
    out.sort_unstable();
    out
}

fn insert_only(counts: &mut radio_util::FxHashMap<u32, u32>, x: u32) {
    *counts.entry(x).or_insert(0) += 1;
}
