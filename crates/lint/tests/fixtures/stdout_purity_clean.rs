// Fixture: the approved output channels — stderr for diagnostics, a
// caller-supplied writer for rows, and stdout only inside unit tests.
// Linted under crates/classifier/src/stdout_purity_clean.rs. Never compiled.

use std::io::Write;

pub fn report(feasible: bool) {
    eprintln!("classifier: feasible = {feasible}");
}

pub fn write_row<W: Write>(sink: &mut W, row: &str) -> std::io::Result<()> {
    writeln!(sink, "{row}")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unit_tests_may_print() {
        println!("test scaffolding output is fine");
    }
}
