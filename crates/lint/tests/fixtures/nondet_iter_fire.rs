// Fixture: every facet of nondet-iter fires, plus allow-syntax errors.
// Linted under the logical path crates/sim/src/nondet_iter_fire.rs
// (result-affecting scope). Never compiled.

use std::collections::HashMap;

struct Census {
    counts: radio_util::FxHashMap<u32, u32>,
}

impl Census {
    fn pairs(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (k, v) in &self.counts {
            out.push((*k, *v));
        }
        out
    }

    fn labels(&self) -> Vec<u32> {
        self.counts.keys().copied().collect()
    }
}

fn tally(xs: &[u32]) -> u32 {
    let mut seen = HashMap::new();
    for &x in xs {
        *seen.entry(x).or_insert(0u32) += 1;
    }
    // lint:allow(nondet-iter)
    seen.values().sum()
}

fn drain_in_hash_order(set: &mut radio_util::FxHashSet<u64>) -> Vec<u64> {
    // lint:allow(not-a-rule): the rule id here does not exist
    set.drain().collect()
}
