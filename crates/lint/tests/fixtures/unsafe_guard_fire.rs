// Fixture: unsafe-guard fires twice — the crate root is missing
// #![forbid(unsafe_code)], and an unsafe block has no SAFETY comment.
// Linted under the logical path crates/sim/src/lib.rs. Never compiled.

pub fn read_first(xs: &[u32]) -> u32 {
    unsafe { *xs.as_ptr() }
}
