// Fixture: os-entropy fires on ambient randomness sources.
// Linted under crates/graph/src/os_entropy_fire.rs. Never compiled.

fn shuffled(xs: &mut Vec<u32>) {
    let mut rng = rand::thread_rng();
    xs.sort_by_cached_key(|_| rng.random::<u64>());
}

fn seeded_table() -> std::collections::hash_map::RandomState {
    std::collections::hash_map::RandomState::new()
}

fn fresh_rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::from_entropy()
}
