//! Fixture: a compliant crate root — the forbid attribute is present, and
//! the (hypothetical) unsafe block carries its SAFETY justification.
//! Linted under the logical path crates/sim/src/lib.rs. Never compiled,
//! so forbid + unsafe coexisting here is fine: this pins the *lexer's*
//! view, not rustc's.

#![forbid(unsafe_code)]

pub fn read_first(xs: &[u32]) -> u32 {
    // SAFETY: callers guarantee xs is non-empty, so the pointer read is
    // within bounds
    unsafe { *xs.as_ptr() }
}
