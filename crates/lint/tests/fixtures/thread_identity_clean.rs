// Fixture: geometry-invariant parallelism — thread counts come in as
// explicit parameters, and the one capacity probe carries a justification.
// Linted under crates/sim/src/thread_identity_clean.rs. Never compiled.

fn shard_ranges(items: usize, threads: usize) -> Vec<(usize, usize)> {
    let chunk = items.div_ceil(threads.max(1));
    (0..threads).map(|t| (t * chunk, ((t + 1) * chunk).min(items))).collect()
}

fn default_threads() -> usize {
    // lint:allow(thread-identity): worker-count selection only; results are
    // geometry-invariant by contract
    std::thread::available_parallelism()
        .map(|nz| nz.get())
        .unwrap_or(1)
}
