//! End-to-end checks of the `radio-lint` binary: exit codes, report
//! formats, and the `rules` / `schema` subcommands, exactly as CI invokes
//! them.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf()
}

fn radio_lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_radio-lint"))
        .args(args)
        .current_dir(workspace_root())
        .output()
        .expect("run radio-lint")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn deny_all_on_clean_workspace_exits_zero() {
    let out = radio_lint(&["--deny-all"]);
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    let text = stdout(&out);
    assert!(text.contains("radio-lint: clean"), "got: {text}");
}

#[test]
fn deny_all_exits_one_when_findings_exist() {
    // The fixture corpus is excluded from tree scans by directory name, but
    // an explicit `--root tests fixtures` reaches the files directly. Under
    // that out-of-scope logical path only the path-independent allow-syntax
    // rule fires (nondet_iter_fire.rs carries a reasonless allow and an
    // unknown-rule allow), which is all an exit-code test needs.
    let out = radio_lint(&["--root", "crates/lint/tests", "--deny-all", "fixtures"]);
    assert_eq!(out.status.code(), Some(1), "stderr: {:?}", out.stderr);
    let text = stdout(&out);
    assert!(
        text.contains("[allow-syntax]") && text.contains("nondet_iter_fire.rs:"),
        "got: {text}"
    );
}

#[test]
fn findings_without_deny_all_are_report_only() {
    let out = radio_lint(&["--root", "crates/lint/tests", "fixtures"]);
    assert!(out.status.success(), "report-only mode must exit 0");
    assert!(stdout(&out).contains("[allow-syntax]"));
}

#[test]
fn json_format_is_emitted_on_request() {
    let out = radio_lint(&[
        "--root",
        "crates/lint/tests",
        "--format",
        "json",
        "--deny-all",
        "fixtures",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    let trimmed = text.trim();
    assert!(
        trimmed.starts_with('{') && trimmed.ends_with('}'),
        "got: {text}"
    );
    assert!(trimmed.contains("\"rule\":\"allow-syntax\""));
    assert!(trimmed.contains("\"finding_count\":"));
}

#[test]
fn rules_subcommand_lists_every_rule() {
    let out = radio_lint(&["rules"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for id in [
        "nondet-iter",
        "wall-clock",
        "os-entropy",
        "thread-identity",
        "stdout-purity",
        "unsafe-guard",
        "allow-syntax",
    ] {
        assert!(text.contains(id), "rule table missing {id}:\n{text}");
    }
}

#[test]
fn schema_subcommand_accepts_the_golden_corpus() {
    let out = radio_lint(&["schema"]);
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    assert!(stdout(&out).contains("radio-lint: clean (2 file(s) scanned)"));
}

#[test]
fn schema_subcommand_rejects_contract_violations() {
    // A classify row smuggling in an election-only `model` field, and an
    // elect row with cache counters but no wall_ns anchor.
    let bad = concat!(
        r#"{"phase":"classify","family":"path","tags":"uniform","n":4,"span":2,"runs":8,"feasible":true,"iterations":3,"classes":2,"relabels":1,"model":"beep"}"#,
        "\n",
    );
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad_rows.jsonl");
    std::fs::write(&path, bad).unwrap();

    let out = radio_lint(&["schema", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "schema must be strict");
    let text = stdout(&out);
    assert!(text.contains("[row-schema]"), "got: {text}");
    assert!(
        text.contains("model"),
        "finding should name the field: {text}"
    );
}

#[test]
fn schema_subcommand_warns_on_empty_row_files() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("empty_rows.jsonl");
    std::fs::write(&path, "\n").unwrap();
    let path = path.to_str().unwrap();

    // Default: reported (never "clean") but a warning — exit 0.
    let out = radio_lint(&["schema", path]);
    assert!(
        out.status.success(),
        "empty rows are a warning by default; stderr: {:?}",
        out.stderr
    );
    let text = stdout(&out);
    assert!(text.contains("[empty-rows]"), "got: {text}");
    assert!(!text.contains("radio-lint: clean"), "got: {text}");

    // --deny-all promotes the warning to an error.
    let out = radio_lint(&["schema", "--deny-all", path]);
    assert_eq!(out.status.code(), Some(1), "stderr: {:?}", out.stderr);
    assert!(stdout(&out).contains("[empty-rows]"));
}

#[test]
fn usage_errors_exit_two() {
    let out = radio_lint(&["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
}
