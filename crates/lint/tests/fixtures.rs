//! Fixture corpus: every rule fires on its fire-fixture with the expected
//! file:line:col spans, and stays silent on its clean-fixture.
//!
//! Fixtures are plain `.rs` data files under `tests/fixtures/` — never
//! compiled (the tree walker skips directories named `fixtures`, and Cargo
//! does not build subdirectories of `tests/`). Each fixture is scanned under
//! a *logical* path that places it in the scope its rule cares about.
//!
//! Expected findings live next to the fixtures as `expected/<name>.expected`,
//! one `line:col rule` entry per finding, in the scanner's sorted order.
//! Regenerate after an intentional rule change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p radio-lint --test fixtures
//! ```

use radio_lint::report::Report;
use radio_lint::rules::scan_source;
use std::path::Path;

/// (fixture file, logical path it is linted under, rules that must fire).
///
/// The rule list is a coverage floor on top of the span-exact expected file:
/// it keeps the corpus honest if a golden file is regenerated carelessly.
const FIRE: &[(&str, &str, &[&str])] = &[
    (
        "nondet_iter_fire.rs",
        "crates/sim/src/nondet_iter_fire.rs",
        &["nondet-iter", "allow-syntax"],
    ),
    (
        "wall_clock_fire.rs",
        "crates/core/src/wall_clock_fire.rs",
        &["wall-clock"],
    ),
    (
        "os_entropy_fire.rs",
        "crates/graph/src/os_entropy_fire.rs",
        &["os-entropy"],
    ),
    (
        "thread_identity_fire.rs",
        "crates/sim/src/thread_identity_fire.rs",
        &["thread-identity"],
    ),
    (
        "stdout_purity_fire.rs",
        "crates/classifier/src/stdout_purity_fire.rs",
        &["stdout-purity"],
    ),
    (
        "unsafe_guard_fire.rs",
        "crates/sim/src/lib.rs",
        &["unsafe-guard"],
    ),
    // The fused batch engine is result-affecting code: member sweeps on
    // hash order and worker identity steering the merged event queue are
    // exactly the bugs that would silently break batched ≡ sequential.
    (
        "batch_member_order_fire.rs",
        "crates/sim/src/batch.rs",
        &["nondet-iter", "thread-identity"],
    ),
];

/// (fixture file, logical path): must produce zero findings.
const CLEAN: &[(&str, &str)] = &[
    (
        "nondet_iter_clean.rs",
        "crates/sim/src/nondet_iter_clean.rs",
    ),
    // Same body as wall_clock_fire.rs — only the logical path differs, which
    // is exactly the scoping claim: the bench harness may read the clock.
    (
        "wall_clock_clean.rs",
        "crates/bench/src/wall_clock_clean.rs",
    ),
    (
        "os_entropy_clean.rs",
        "crates/graph/src/os_entropy_clean.rs",
    ),
    (
        "thread_identity_clean.rs",
        "crates/sim/src/thread_identity_clean.rs",
    ),
    (
        "stdout_purity_clean.rs",
        "crates/classifier/src/stdout_purity_clean.rs",
    ),
    ("unsafe_guard_clean.rs", "crates/sim/src/lib.rs"),
];

fn fixtures_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn read_fixture(name: &str) -> String {
    let path = fixtures_dir().join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

fn render_expected(findings: &[radio_lint::rules::Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!("{}:{} {}\n", f.line, f.col, f.rule));
    }
    out
}

#[test]
fn fire_fixtures_match_expected_spans() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    for &(name, logical, must_fire) in FIRE {
        let findings = scan_source(logical, &read_fixture(name));
        assert!(
            !findings.is_empty(),
            "{name}: fire fixture produced no findings"
        );
        for rule in must_fire {
            assert!(
                findings.iter().any(|f| f.rule == *rule),
                "{name}: expected rule {rule} to fire, got {findings:?}"
            );
        }
        for f in &findings {
            assert_eq!(f.file, logical, "{name}: finding carries wrong path");
            assert!(f.line > 0 && f.col > 0, "{name}: span must be 1-based");
        }

        let stem = name.trim_end_matches(".rs");
        let expected_path = fixtures_dir().join(format!("expected/{stem}.expected"));
        let got = render_expected(&findings);
        if update {
            std::fs::create_dir_all(expected_path.parent().unwrap()).unwrap();
            std::fs::write(&expected_path, &got).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&expected_path).unwrap_or_else(|e| {
            panic!(
                "cannot read {} ({e}); regenerate with UPDATE_GOLDEN=1",
                expected_path.display()
            )
        });
        assert_eq!(
            got, want,
            "{name}: findings diverge from golden expected spans \
             (UPDATE_GOLDEN=1 to accept)"
        );
    }
}

/// The row-schema checker has its own fixture corpus: `empty_rows.jsonl`
/// is the truncated-output case (a file with no rows must be a distinct
/// `empty-rows` finding, never "clean"), with golden spans in
/// `expected/empty_rows.expected` like the source-rule fixtures.
#[test]
fn empty_row_file_fixture_matches_expected_spans() {
    let findings =
        radio_lint::schema::check_rows("empty_rows.jsonl", &read_fixture("empty_rows.jsonl"));
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, radio_lint::schema::EMPTY_ROWS);

    let expected_path = fixtures_dir().join("expected/empty_rows.expected");
    let got = render_expected(&findings);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&expected_path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&expected_path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with UPDATE_GOLDEN=1",
            expected_path.display()
        )
    });
    assert_eq!(got, want, "empty-rows finding diverges from golden spans");
}

#[test]
fn clean_fixtures_produce_no_findings() {
    for &(name, logical) in CLEAN {
        let findings = scan_source(logical, &read_fixture(name));
        assert!(
            findings.is_empty(),
            "{name}: clean fixture fired under {logical}: {findings:?}"
        );
    }
}

/// The same fire bodies are out of scope once the path moves them out of the
/// rule's blast radius — scoping is part of each rule's definition.
#[test]
fn fire_fixtures_are_scoped_by_path() {
    // Result-affecting rules do not police the lint crate itself (it is not
    // in the result path) …
    let src = read_fixture("nondet_iter_fire.rs");
    let findings = scan_source("crates/lint/src/elsewhere.rs", &src);
    assert!(
        findings.iter().all(|f| f.rule == "allow-syntax"),
        "nondet-iter leaked outside result scope: {findings:?}"
    );
    // … and stdout belongs to binaries.
    let src = read_fixture("stdout_purity_fire.rs");
    let findings = scan_source("crates/core/src/bin/stdout_purity_fire.rs", &src);
    assert!(
        findings.iter().all(|f| f.rule != "stdout-purity"),
        "stdout-purity fired inside a bin: {findings:?}"
    );
}

/// `--format json` output and the human report describe the same findings.
#[test]
fn json_report_round_trips_against_human_report() {
    let logical = "crates/sim/src/nondet_iter_fire.rs";
    let findings = scan_source(logical, &read_fixture("nondet_iter_fire.rs"));
    let n = findings.len();
    let report = Report {
        findings,
        files_scanned: 1,
    };

    let human = report.render_human();
    let json = report.render_json();

    // Human report: one line per finding plus the trailing summary line.
    let human_lines: Vec<&str> = human.lines().collect();
    assert_eq!(human_lines.len(), n + 1);
    assert!(human_lines[n].contains(&format!("{n} finding(s)")));

    // JSON report: structurally well formed, and its counts agree.
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert_eq!(json.matches("\"rule\":").count(), n);
    assert!(json.contains(&format!("\"finding_count\":{n}")));
    assert!(json.contains("\"files_scanned\":1"));
    // Every human-report span appears verbatim as JSON fields.
    for f in &report.findings {
        assert!(human.contains(&format!("{}:{}:{}", f.file, f.line, f.col)));
        assert!(json.contains(&format!("\"line\":{}", f.line)));
    }
}
