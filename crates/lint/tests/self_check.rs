//! Self-check: `radio-lint` passes its own lint.
//!
//! The linter's sources are full of the very patterns its rules hunt for —
//! `"HashMap"`, `"thread_rng"`, `"println!"` — but always inside string
//! literals, doc comments, and match arms. A lexer that confused literal
//! contents with code would flag its own rule table; this test pins that it
//! does not, and that the crate honors the contract it enforces on everyone
//! else (no stdout writes from the library, `#![forbid(unsafe_code)]`,
//! deterministic iteration — the crate uses no hash containers at all).

use radio_lint::scan_tree;
use std::path::Path;

#[test]
fn lint_crate_passes_its_own_lint() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = scan_tree(manifest, &["src", "tests"]).expect("scan lint crate");
    assert!(report.files_scanned > 5, "self-scan saw too few files");
    assert!(
        report.is_clean(),
        "radio-lint flagged its own sources:\n{}",
        report.render_human()
    );
}

/// The rule-pattern strings in `rules.rs` survive lexing as literals: a
/// direct probe that string contents never become identifier tokens.
#[test]
fn own_string_literals_do_not_register_as_code() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(manifest.join("src/rules.rs")).expect("read rules.rs");
    // rules.rs names the forbidden identifiers in its tables/messages…
    assert!(src.contains("thread_rng") && src.contains("HashMap"));
    // …yet scanning it under a result-affecting logical path stays clean.
    let findings = radio_lint::scan_source("crates/sim/src/rules.rs", &src);
    assert!(
        findings.is_empty(),
        "string-literal rule patterns leaked into token scan: {findings:?}"
    );
}
