//! The acceptance gate, wired into tier-1 `cargo test`: the whole workspace
//! lints clean, and the golden campaign corpus obeys the row schema. CI runs
//! the same checks through the binary; this test keeps a plain `cargo test`
//! equally strict.

use radio_lint::{scan_tree, DEFAULT_ROOTS};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf()
}

#[test]
fn workspace_lints_clean() {
    let report = scan_tree(&workspace_root(), DEFAULT_ROOTS).expect("scan workspace");
    // The workspace has ~100 .rs files across seven crates + root src/ +
    // tests/; a collapse in files_scanned would mean the walk silently
    // missed entire trees and "clean" proved nothing.
    assert!(
        report.files_scanned > 80,
        "scan covered only {} files — tree walk is broken",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "determinism contract violations in the workspace:\n{}",
        report.render_human()
    );
}

#[test]
fn golden_corpus_obeys_row_schema() {
    let root = workspace_root();
    for name in ["campaign_elect.jsonl", "campaign_classify.jsonl"] {
        let path = root.join("tests/golden").join(name);
        let contents = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let findings = radio_lint::schema::check_rows(&format!("tests/golden/{name}"), &contents);
        assert!(
            findings.is_empty(),
            "{name} violates the campaign row contract: {findings:?}"
        );
    }
}
