//! `radio-lint` — the determinism-contract static analyzer for the
//! anon-radio workspace.
//!
//! Every headline claim in this repository is an `≡` claim: leap ≡ step ≡
//! reference, cached ≡ uncached, reuse ≡ fresh, batched ≡ sequential —
//! all bit-for-bit. Differential tests enforce those equivalences after
//! the fact; this crate enforces the *preconditions* statically, so a PR
//! cannot introduce the bug classes that would rot the golden corpus
//! before any test notices:
//!
//! | rule            | contract                                             |
//! |-----------------|------------------------------------------------------|
//! | `nondet-iter`   | no hash-order iteration / std hash types in result-affecting code |
//! | `wall-clock`    | `Instant::now`/`SystemTime` only in `crates/bench` and annotated `wall_ns` sites |
//! | `os-entropy`    | no `thread_rng`/`RandomState`/`OsRng`; RNGs come from `radio_util::rng` seed streams |
//! | `thread-identity` | no `thread::current`/`available_parallelism` influencing results |
//! | `stdout-purity` | no `println!`/`print!`/`dbg!` in library code        |
//! | `unsafe-guard`  | crate roots keep `#![forbid(unsafe_code)]`; `unsafe` needs `// SAFETY:` |
//! | `allow-syntax`  | suppressions must name a known rule and carry a reason |
//!
//! Suppression is explicit and audited: `// lint:allow(rule-id): reason`
//! on (or directly above) the offending line. The `schema` module
//! separately checks the campaign JSONL row contract. See `DESIGN.md`
//! ("Determinism contract & static analysis") for the full story.
//!
//! The crate is dependency-free on purpose — it gates the rest of the
//! workspace, runs in the vendored-only build, and must be trivially
//! deterministic itself (it passes its own lint; see `tests/self_check.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod schema;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use report::Report;
pub use rules::{scan_source, Finding, Rule, ALL_RULES};

/// Directory names never descended into: build output, vendored shims
/// (external code is not under this contract), VCS metadata, and the
/// linter's own deliberately-violating test fixtures.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

/// The workspace directories a default scan covers.
pub const DEFAULT_ROOTS: &[&str] = &["crates", "src", "tests"];

/// Scans every `.rs` file under `root`'s `sub_roots` (workspace-relative
/// directory names). Files are visited in sorted path order, so reports
/// are deterministic byte-for-byte.
pub fn scan_tree(root: &Path, sub_roots: &[&str]) -> io::Result<Report> {
    let mut files = Vec::new();
    for sub in sub_roots {
        let dir = root.join(sub);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        } else if dir.is_file() {
            files.push(dir);
        }
    }
    files.sort();

    let mut report = Report::default();
    for path in &files {
        let source = fs::read_to_string(path)?;
        let logical = logical_path(root, path);
        report.findings.extend(scan_source(&logical, &source));
        report.files_scanned += 1;
    }
    report.findings.sort();
    Ok(report)
}

/// Root-relative `/`-separated path (falls back to the full path when the
/// file is outside `root`).
fn logical_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut out = String::new();
    for comp in rel.components() {
        if !out.is_empty() {
            out.push('/');
        }
        out.push_str(&comp.as_os_str().to_string_lossy());
    }
    out
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_paths_are_root_relative_and_slash_separated() {
        let root = Path::new("/work/repo");
        let file = Path::new("/work/repo/crates/sim/src/engine.rs");
        assert_eq!(logical_path(root, file), "crates/sim/src/engine.rs");
    }

    #[test]
    fn scan_tree_skips_fixture_and_vendor_dirs() {
        // The lint crate's own tests/ contains a fixtures/ directory full
        // of deliberate violations; a tree scan over it must come back
        // clean because the walker never descends into `fixtures`.
        let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
        let report = scan_tree(manifest, &["tests"]).expect("scan");
        assert!(
            report.is_clean(),
            "fixtures leaked into the tree scan:\n{}",
            report.render_human()
        );
    }
}
