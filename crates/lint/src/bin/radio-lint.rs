//! `radio-lint` — CLI for the determinism-contract analyzer.
//!
//! ```sh
//! radio-lint                        # scan crates/ src/ tests/, report, exit 0
//! radio-lint --deny-all             # same, but exit 1 on any finding
//! radio-lint --format json          # machine-readable report
//! radio-lint crates/sim             # scan a subtree
//! radio-lint rules                  # print the rule table
//! radio-lint schema                 # check the golden campaign corpus
//! radio-lint schema out.jsonl       # check live campaign output
//! ```
//!
//! `--root DIR` rebases the scan (default: the current directory, which in
//! CI and `cargo run` is the workspace root). Without `--deny-all` the
//! linter is report-only; `schema` is always strict on malformed rows (a
//! broken corpus is never acceptable) while a row file with *no* rows —
//! the truncated-output case — is reported as an `empty-rows` warning,
//! promoted to an error by `schema --deny-all`. Exit codes: 0 clean, 1
//! findings, 2 usage/IO error.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use radio_lint::{binary, report::Report, schema, ALL_RULES, DEFAULT_ROOTS};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("radio-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    if args.first().map(String::as_str) == Some("rules") {
        for rule in ALL_RULES {
            println!("{:<16} {}", rule.id(), rule.summary());
        }
        return Ok(ExitCode::SUCCESS);
    }
    if args.first().map(String::as_str) == Some("schema") {
        return schema_command(&args[1..]);
    }
    lint_command(args)
}

struct CommonFlags {
    root: PathBuf,
    json: bool,
    rest: Vec<String>,
}

fn parse_flags(args: &[String], allowed: &[&str]) -> Result<(CommonFlags, Vec<String>), String> {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut rest = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let dir = it.next().ok_or("--root needs a directory")?;
                root = PathBuf::from(dir);
            }
            "--format" => {
                let fmt = it.next().ok_or("--format needs `human` or `json`")?;
                json = match fmt.as_str() {
                    "json" => true,
                    "human" => false,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            flag if flag.starts_with("--") => {
                if !allowed.contains(&flag) {
                    return Err(format!("unknown flag `{flag}`"));
                }
                flags.push(flag.to_string());
            }
            path => rest.push(path.to_string()),
        }
    }
    Ok((CommonFlags { root, json, rest }, flags))
}

fn lint_command(args: &[String]) -> Result<ExitCode, String> {
    let (common, flags) = parse_flags(args, &["--deny-all"])?;
    let deny_all = flags.iter().any(|f| f == "--deny-all");
    let roots: Vec<&str> = if common.rest.is_empty() {
        DEFAULT_ROOTS.to_vec()
    } else {
        common.rest.iter().map(String::as_str).collect()
    };
    let report = radio_lint::scan_tree(&common.root, &roots)
        .map_err(|e| format!("scanning {}: {e}", common.root.display()))?;
    if report.files_scanned == 0 {
        return Err(format!(
            "no .rs files under {} in {:?}",
            common.root.display(),
            roots
        ));
    }
    print_report(&report, common.json);
    Ok(exit_for(&report, deny_all))
}

fn schema_command(args: &[String]) -> Result<ExitCode, String> {
    let (common, flags) = parse_flags(args, &["--deny-all"])?;
    let deny_all = flags.iter().any(|f| f == "--deny-all");
    let files: Vec<PathBuf> = if common.rest.is_empty() {
        vec![
            common.root.join("tests/golden/campaign_elect.jsonl"),
            common.root.join("tests/golden/campaign_classify.jsonl"),
        ]
    } else {
        common.rest.iter().map(|p| common.root.join(p)).collect()
    };
    let mut report = Report::default();
    for file in &files {
        let bytes = std::fs::read(file).map_err(|e| format!("reading {}: {e}", file.display()))?;
        let label = display_path(&common.root, file);
        // Binary row files are decoded to canonical JSONL first, then run
        // through the same field-order checks as text output.
        let contents = if binary::is_binary(&bytes) {
            match binary::decode_to_jsonl(&label, &bytes) {
                Ok(jsonl) => jsonl,
                Err(finding) => {
                    report.findings.push(finding);
                    report.files_scanned += 1;
                    continue;
                }
            }
        } else {
            String::from_utf8(bytes)
                .map_err(|e| format!("{}: not UTF-8 and not binary rows: {e}", file.display()))?
        };
        report
            .findings
            .extend(schema::check_rows(&label, &contents));
        report.files_scanned += 1;
    }
    report.findings.sort();
    print_report(&report, common.json);
    // The row contract is a hard invariant of the corpus: malformed rows
    // are always strict. An *empty* row file is a warning — the corpus is
    // missing rather than wrong — unless `--deny-all` promotes it.
    let hard_findings = report.findings.iter().any(|f| f.rule != schema::EMPTY_ROWS);
    if hard_findings || (deny_all && !report.is_clean()) {
        Ok(ExitCode::from(1))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn display_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

fn print_report(report: &Report, json: bool) {
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
}

fn exit_for(report: &Report, strict: bool) -> ExitCode {
    if strict && !report.is_clean() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
