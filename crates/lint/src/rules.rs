//! The determinism-contract rules and the engine that applies them.
//!
//! Every rule is a named, documented invariant of the workspace's
//! bit-for-bit reproducibility story. The engine walks the token stream of
//! one file (see [`crate::lexer`]), consults a per-file symbol table of
//! hash-typed bindings, and emits [`Finding`]s. A finding can be
//! suppressed by an adjacent directive comment:
//!
//! ```text
//! // lint:allow(rule-id): non-empty reason
//! ```
//!
//! which covers its own line(s) and the next token-bearing line — so it
//! works both trailing a statement and on the line above (including inside
//! a method chain). A directive with an unknown rule id or an empty reason
//! never suppresses anything and is itself reported under the
//! `allow-syntax` rule, so CI's `--deny-all` run rejects reasonless allows
//! for free.
//!
//! Which rules apply where is decided by the *logical path* of the file
//! (workspace-relative, `/`-separated) — see [`Rule::applies_to`]. Scoping
//! is path-based because the contract is architectural: result-affecting
//! crates (`graph`, `sim`, `classifier`, `core`, plus the root `src/` and
//! `tests/` suites) carry the strict rules, `crates/bench` is the one
//! place allowed to read the wall clock, and binaries own stdout.

use crate::lexer::{lex, Comment, Tok, Token};

/// A single lint finding, pointing at a `file:line:col` span.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Logical (workspace-relative) path of the file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule id, e.g. `nondet-iter`.
    pub rule: &'static str,
    /// Human-readable explanation of this occurrence.
    pub message: String,
}

/// The named rules. Ids are what `lint:allow(...)` and reports use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Hash-order iteration / std hash types in result-affecting code.
    NondetIter,
    /// `Instant::now` / `SystemTime` outside the measurement surface.
    WallClock,
    /// Ambient OS entropy (`thread_rng`, `RandomState`, `OsRng`, …).
    OsEntropy,
    /// Thread identity influencing results (`thread::current`,
    /// `available_parallelism`).
    ThreadIdentity,
    /// `println!` / `print!` / `dbg!` in library code.
    StdoutPurity,
    /// Missing `#![forbid(unsafe_code)]` at crate roots; `unsafe` without
    /// a `// SAFETY:` justification.
    UnsafeGuard,
    /// Malformed `lint:allow` directives (unknown rule, empty reason).
    AllowSyntax,
}

/// All rules, in report order.
pub const ALL_RULES: &[Rule] = &[
    Rule::NondetIter,
    Rule::WallClock,
    Rule::OsEntropy,
    Rule::ThreadIdentity,
    Rule::StdoutPurity,
    Rule::UnsafeGuard,
    Rule::AllowSyntax,
];

impl Rule {
    /// The stable id used in directives, reports, and docs.
    pub fn id(self) -> &'static str {
        match self {
            Rule::NondetIter => "nondet-iter",
            Rule::WallClock => "wall-clock",
            Rule::OsEntropy => "os-entropy",
            Rule::ThreadIdentity => "thread-identity",
            Rule::StdoutPurity => "stdout-purity",
            Rule::UnsafeGuard => "unsafe-guard",
            Rule::AllowSyntax => "allow-syntax",
        }
    }

    /// One-line summary for `radio-lint rules` and the docs.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::NondetIter => {
                "no hash-order iteration or std HashMap/HashSet in result-affecting code \
                 (use radio_util::FxHashMap/FxHashSet; iterate sorted or justify)"
            }
            Rule::WallClock => {
                "no Instant::now/SystemTime outside crates/bench and annotated wall_ns sites"
            }
            Rule::OsEntropy => {
                "no ambient entropy (thread_rng, RandomState, OsRng); derive RNGs from \
                 radio_util::rng positional seed streams"
            }
            Rule::ThreadIdentity => {
                "no thread::current/available_parallelism influencing results \
                 (geometry invariance)"
            }
            Rule::StdoutPurity => {
                "no println!/print!/dbg! in library code; rows go through sinks, \
                 diagnostics through stderr"
            }
            Rule::UnsafeGuard => {
                "crate roots keep #![forbid(unsafe_code)]; any unsafe needs a // SAFETY: comment"
            }
            Rule::AllowSyntax => {
                "lint:allow directives must name a known rule and give a non-empty reason"
            }
        }
    }

    /// Parses a rule id as written in a directive.
    pub fn from_id(id: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.id() == id)
    }

    /// Whether this rule is checked in the file at `path` (logical,
    /// workspace-relative, `/`-separated).
    pub fn applies_to(self, path: &str) -> bool {
        match self {
            // Hash-order iteration only corrupts results where results are
            // computed or verified: the four result-affecting crates, the
            // facade, and the integration suites (which gate ≡ claims).
            Rule::NondetIter => in_result_scope(path),
            // Bench is the measurement harness: the wall clock is its job.
            Rule::WallClock | Rule::ThreadIdentity => !in_crate(path, "bench"),
            Rule::OsEntropy => true,
            // Library code only: binaries own stdout, and integration
            // tests/benches report through the test harness.
            Rule::StdoutPurity => {
                is_library_source(path) && !is_bin_source(path) && !in_tests_dir(path)
            }
            Rule::UnsafeGuard | Rule::AllowSyntax => true,
        }
    }
}

/// True for files whose nondeterminism can reach result rows or ≡ gates.
/// `crates/sim/` includes the fused batch engine (`batch.rs`), whose
/// batched ≡ sequential contract is exactly what hash-order member
/// sweeps would break — pinned by the `batch_member_order_fire` fixture.
fn in_result_scope(path: &str) -> bool {
    in_crate(path, "graph")
        || in_crate(path, "sim")
        || in_crate(path, "classifier")
        || in_crate(path, "core")
        || path.starts_with("src/")
        || path.starts_with("tests/")
}

fn in_crate(path: &str, name: &str) -> bool {
    let mut prefix = String::from("crates/");
    prefix.push_str(name);
    prefix.push('/');
    path.starts_with(&prefix)
}

/// Files compiled into a library target: anything under a `src/` directory.
fn is_library_source(path: &str) -> bool {
    path.starts_with("src/") || path.contains("/src/")
}

/// Binary targets (`src/bin/*.rs` and `src/main.rs`) own stdout.
fn is_bin_source(path: &str) -> bool {
    path.contains("/src/bin/")
        || path.starts_with("src/bin/")
        || path.ends_with("/src/main.rs")
        || path == "src/main.rs"
}

fn in_tests_dir(path: &str) -> bool {
    path.starts_with("tests/") || path.contains("/tests/")
}

/// Crate roots that must carry `#![forbid(unsafe_code)]`: library roots
/// and binary roots. (Integration tests and benches are dev-only targets;
/// the rule still checks their `unsafe` blocks for `// SAFETY:`.)
fn is_crate_root(path: &str) -> bool {
    path.ends_with("src/lib.rs") || path.ends_with("src/main.rs") || is_bin_source(path)
}

/// Hash container type names whose iteration order is not a function of
/// the data (std's additionally seeded per-process via RandomState).
const HASH_TYPES: &[&str] = &["FxHashMap", "FxHashSet", "HashMap", "HashSet"];

/// Std hash types specifically: constructing one at all is a finding in
/// result scope (RandomState seeds the iteration order from OS entropy).
const STD_HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Methods that expose hash iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Identifiers that reach OS entropy.
const ENTROPY_IDENTS: &[&str] = &[
    "thread_rng",
    "ThreadRng",
    "RandomState",
    "OsRng",
    "from_entropy",
    "from_os_rng",
    "getrandom",
];

/// A parsed `lint:allow` directive.
struct Allow {
    rule: Option<Rule>,
    reason_ok: bool,
    raw_rule: String,
    line_start: u32,
    line_end: u32,
}

/// Lints one file. `path` is the file's logical workspace-relative path —
/// it selects which rules run (tests pass fixture text under synthetic
/// paths to place it in any scope).
pub fn scan_source(path: &str, source: &str) -> Vec<Finding> {
    let lexed = lex(source);
    let toks = &lexed.tokens;
    let allows = parse_allows(&lexed.comments);
    let mut findings = Vec::new();

    // allow-syntax findings are never themselves suppressible.
    if Rule::AllowSyntax.applies_to(path) {
        for a in &allows {
            if a.rule.is_none() {
                findings.push(Finding {
                    file: path.to_string(),
                    line: a.line_start,
                    col: 1,
                    rule: Rule::AllowSyntax.id(),
                    message: format!("lint:allow names unknown rule `{}`", a.raw_rule),
                });
            } else if !a.reason_ok {
                findings.push(Finding {
                    file: path.to_string(),
                    line: a.line_start,
                    col: 1,
                    rule: Rule::AllowSyntax.id(),
                    message: format!(
                        "lint:allow({}) has no reason — write `// lint:allow({}): <why>`",
                        a.raw_rule, a.raw_rule
                    ),
                });
            }
        }
    }

    let hash_names = collect_hash_bindings(toks);
    let test_spans = cfg_test_spans(toks);
    let in_cfg_test = |idx: usize| {
        test_spans
            .iter()
            .any(|&(start, end)| idx >= start && idx <= end)
    };

    let mut emit = |rule: Rule, tok: &Token, message: String| {
        findings.push(Finding {
            file: path.to_string(),
            line: tok.line,
            col: tok.col,
            rule: rule.id(),
            message,
        });
    };

    for (i, t) in toks.iter().enumerate() {
        let name = match &t.tok {
            Tok::Ident(n) => n.as_str(),
            _ => continue,
        };

        // nondet-iter (a): std hash types at all.
        if Rule::NondetIter.applies_to(path) && STD_HASH_TYPES.contains(&name) {
            emit(
                Rule::NondetIter,
                t,
                format!(
                    "std {name} seeds iteration order from OS entropy (RandomState); \
                     use radio_util::Fx{name}"
                ),
            );
        }

        // nondet-iter (b): iteration over a hash-typed binding.
        if Rule::NondetIter.applies_to(path)
            && hash_names.iter().any(|h| h == name)
            && matches!(
                toks.get(i + 1),
                Some(Token {
                    tok: Tok::Punct('.'),
                    ..
                })
            )
        {
            if let Some(Token {
                tok: Tok::Ident(m), ..
            }) = toks.get(i + 2)
            {
                if ITER_METHODS.contains(&m.as_str())
                    && matches!(
                        toks.get(i + 3),
                        Some(Token {
                            tok: Tok::Punct('('),
                            ..
                        })
                    )
                {
                    let at = &toks[i + 2];
                    emit(
                        Rule::NondetIter,
                        at,
                        format!(
                            "`{name}.{m}()` iterates a hash container in hash order; \
                             sort first or justify with lint:allow"
                        ),
                    );
                }
            }
        }

        // nondet-iter (c): `for … in [&[mut]] [self.]map`.
        if Rule::NondetIter.applies_to(path) && name == "for" {
            if let Some((loop_tok, var)) = for_loop_over(toks, i, &hash_names) {
                emit(
                    Rule::NondetIter,
                    loop_tok,
                    format!("`for … in {var}` iterates a hash container in hash order"),
                );
            }
        }

        // wall-clock: `Instant::now` and any `SystemTime`.
        if Rule::WallClock.applies_to(path) {
            if name == "Instant" && path_segment_follows(toks, i, "now") {
                emit(
                    Rule::WallClock,
                    t,
                    "Instant::now() reads the wall clock; only annotated wall_ns \
                     measurement sites and crates/bench may"
                        .to_string(),
                );
            }
            if name == "SystemTime" {
                emit(
                    Rule::WallClock,
                    t,
                    "SystemTime reads the wall clock; results must not depend on it".to_string(),
                );
            }
        }

        // os-entropy.
        if Rule::OsEntropy.applies_to(path) && ENTROPY_IDENTS.contains(&name) {
            emit(
                Rule::OsEntropy,
                t,
                format!(
                    "`{name}` draws ambient OS entropy; derive randomness from \
                     radio_util::rng positional seed streams"
                ),
            );
        }

        // thread-identity.
        if Rule::ThreadIdentity.applies_to(path) {
            if name == "available_parallelism" {
                emit(
                    Rule::ThreadIdentity,
                    t,
                    "available_parallelism() makes behavior depend on the host's \
                     core count; results must be geometry-invariant"
                        .to_string(),
                );
            }
            if name == "thread" && path_segment_follows(toks, i, "current") {
                emit(
                    Rule::ThreadIdentity,
                    t,
                    "thread::current() exposes thread identity; results must not \
                     depend on which worker ran them"
                        .to_string(),
                );
            }
        }

        // stdout-purity (skipping #[cfg(test)] items).
        if Rule::StdoutPurity.applies_to(path)
            && matches!(name, "println" | "print" | "dbg")
            && matches!(
                toks.get(i + 1),
                Some(Token {
                    tok: Tok::Punct('!'),
                    ..
                })
            )
            && !in_cfg_test(i)
        {
            emit(
                Rule::StdoutPurity,
                t,
                format!(
                    "`{name}!` writes to stdout from library code; rows go through \
                     RecordSinks/JSONL writers, diagnostics through stderr"
                ),
            );
        }

        // unsafe-guard: every `unsafe` needs a nearby `// SAFETY:`.
        if Rule::UnsafeGuard.applies_to(path)
            && name == "unsafe"
            && !has_safety_comment(&lexed.comments, t.line)
        {
            emit(
                Rule::UnsafeGuard,
                t,
                "`unsafe` without a `// SAFETY:` comment on the preceding lines".to_string(),
            );
        }
    }

    // unsafe-guard: crate roots must forbid unsafe_code.
    if Rule::UnsafeGuard.applies_to(path) && is_crate_root(path) && !has_forbid_unsafe(toks) {
        findings.push(Finding {
            file: path.to_string(),
            line: 1,
            col: 1,
            rule: Rule::UnsafeGuard.id(),
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }

    findings.retain(|f| !suppressed(f, &allows, toks));
    findings.sort();
    findings
}

/// Parses every `lint:allow(rule): reason` directive in the comments.
///
/// Doc comments (`///`, `//!`, `/** … */`) are *not* scanned: a
/// suppression is a code annotation, not documentation — and this keeps
/// prose that merely describes the directive syntax (like this crate's
/// own docs) from parsing as a malformed directive.
fn parse_allows(comments: &[Comment]) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in comments {
        if c.text.starts_with('/') || c.text.starts_with('!') || c.text.starts_with('*') {
            continue;
        }
        let mut rest = c.text.as_str();
        while let Some(at) = rest.find("lint:allow(") {
            rest = &rest[at + "lint:allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            let raw_rule = rest[..close].trim().to_string();
            rest = &rest[close + 1..];
            let reason_ok = rest.strip_prefix(':').is_some_and(|r| !r.trim().is_empty());
            out.push(Allow {
                rule: Rule::from_id(&raw_rule),
                reason_ok,
                raw_rule,
                line_start: c.line_start,
                line_end: c.line_end,
            });
        }
    }
    out
}

/// A finding is suppressed when a *valid* allow for its rule sits on the
/// same line(s) or on the line(s) directly above its token-bearing line.
fn suppressed(f: &Finding, allows: &[Allow], toks: &[Token]) -> bool {
    allows.iter().any(|a| {
        a.reason_ok
            && a.rule.map(Rule::id) == Some(f.rule)
            && (f.line >= a.line_start && f.line <= a.line_end
                || next_code_line(toks, a.line_end) == Some(f.line))
    })
}

/// The first line after `line` that carries any token.
fn next_code_line(toks: &[Token], line: u32) -> Option<u32> {
    toks.iter().map(|t| t.line).filter(|&l| l > line).min()
}

/// Does `// SAFETY:` appear in a comment on `line` or the two lines above?
fn has_safety_comment(comments: &[Comment], line: u32) -> bool {
    comments
        .iter()
        .any(|c| c.text.contains("SAFETY:") && c.line_end + 2 >= line && c.line_start <= line)
}

/// Matches `ident :: segment` starting at the index of `ident`.
fn path_segment_follows(toks: &[Token], i: usize, segment: &str) -> bool {
    matches!(
        (toks.get(i + 1), toks.get(i + 2), toks.get(i + 3)),
        (
            Some(Token { tok: Tok::Punct(':'), .. }),
            Some(Token { tok: Tok::Punct(':'), .. }),
            Some(Token { tok: Tok::Ident(seg), .. }),
        ) if seg == segment
    )
}

/// Detects `#![forbid(unsafe_code)]` anywhere in the token stream.
fn has_forbid_unsafe(toks: &[Token]) -> bool {
    toks.windows(8).any(|w| {
        matches!(
            (&w[0].tok, &w[1].tok, &w[2].tok, &w[3].tok, &w[4].tok, &w[5].tok, &w[6].tok, &w[7].tok),
            (
                Tok::Punct('#'),
                Tok::Punct('!'),
                Tok::Punct('['),
                Tok::Ident(f),
                Tok::Punct('('),
                Tok::Ident(u),
                Tok::Punct(')'),
                Tok::Punct(']'),
            ) if f == "forbid" && u == "unsafe_code"
        )
    })
}

/// Builds the per-file set of identifiers bound to hash-container types.
///
/// Two declaration shapes are recognized, which between them cover let
/// bindings with annotations, struct fields, and function parameters:
///
/// * `name: …Type…` where the type window (up to a delimiter at bracket
///   depth zero) mentions a hash type;
/// * `let [mut] name = HashType::…`.
///
/// This is a deliberate over-approximation at file granularity: a name
/// bound to a hash type anywhere in the file marks every use site. The
/// escape hatch for a false positive is the same as for a true positive
/// you can justify — an annotated `lint:allow`.
fn collect_hash_bindings(toks: &[Token]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    let mut mark = |n: &str| {
        if !names.iter().any(|x| x == n) {
            names.push(n.to_string());
        }
    };

    for i in 0..toks.len() {
        // `name :` (single colon — `::` paths excluded on both sides).
        if let Tok::Ident(name) = &toks[i].tok {
            let single_colon = matches!(
                toks.get(i + 1),
                Some(Token {
                    tok: Tok::Punct(':'),
                    ..
                })
            ) && !matches!(
                toks.get(i + 2),
                Some(Token {
                    tok: Tok::Punct(':'),
                    ..
                })
            ) && !matches!(
                i.checked_sub(1).and_then(|p| toks.get(p)),
                Some(Token {
                    tok: Tok::Punct(':'),
                    ..
                })
            );
            if single_colon && type_window_mentions_hash(toks, i + 2) {
                mark(name);
            }
        }
        // `let [mut] name = HashType ::`
        if let Tok::Ident(kw) = &toks[i].tok {
            if kw == "let" {
                let mut j = i + 1;
                if matches!(&toks.get(j), Some(Token { tok: Tok::Ident(m), .. }) if m == "mut") {
                    j += 1;
                }
                if let (
                    Some(Token {
                        tok: Tok::Ident(name),
                        ..
                    }),
                    Some(Token {
                        tok: Tok::Punct('='),
                        ..
                    }),
                    Some(Token {
                        tok: Tok::Ident(ty),
                        ..
                    }),
                ) = (toks.get(j), toks.get(j + 1), toks.get(j + 2))
                {
                    if HASH_TYPES.contains(&ty.as_str())
                        && matches!(
                            toks.get(j + 3),
                            Some(Token {
                                tok: Tok::Punct(':'),
                                ..
                            })
                        )
                    {
                        mark(name);
                    }
                }
            }
        }
    }
    names
}

/// Scans the type position starting at `start` (just past `name:`) until a
/// delimiter at bracket depth zero, and reports whether it mentions a hash
/// container type. Depth counts `<>`, `()`, `[]` so `FxHashMap<K, V>`'s
/// inner comma doesn't end the window early.
fn type_window_mentions_hash(toks: &[Token], start: usize) -> bool {
    let mut depth: i32 = 0;
    for t in toks.iter().skip(start).take(48) {
        match &t.tok {
            Tok::Punct('<') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct('>') | Tok::Punct(')') | Tok::Punct(']') if depth > 0 => depth -= 1,
            // `>` at depth 0: end of enclosing generics (or `->`/`=>`).
            Tok::Punct('>') | Tok::Punct(')') | Tok::Punct(']') => return false,
            Tok::Punct('=') | Tok::Punct(';') | Tok::Punct('{') => return false,
            Tok::Punct(',') if depth == 0 => return false,
            Tok::Ident(n) if HASH_TYPES.contains(&n.as_str()) => return true,
            _ => {}
        }
    }
    false
}

/// If the `for` at index `i` heads a loop whose iterated expression is a
/// plain (possibly borrowed / `self.`-qualified) hash-typed name, returns
/// the `for` token and the rendered expression.
fn for_loop_over<'t>(
    toks: &'t [Token],
    i: usize,
    hash_names: &[String],
) -> Option<(&'t Token, String)> {
    // `impl Trait for Type` and HRTB `for<'a>` are not loops.
    if matches!(
        toks.get(i + 1),
        Some(Token {
            tok: Tok::Punct('<'),
            ..
        })
    ) {
        return None;
    }
    // Find the `in` keyword before the loop body's `{` at depth 0.
    let mut j = i + 1;
    let mut depth: i32 = 0;
    let in_idx = loop {
        match &toks.get(j)?.tok {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Punct('{') if depth == 0 => return None,
            Tok::Ident(kw) if kw == "in" && depth == 0 => break j,
            _ => {}
        }
        j += 1;
        if j > i + 24 {
            return None;
        }
    };
    // Collect the iterated expression: tokens until the body `{`.
    let mut expr: Vec<&Tok> = Vec::new();
    let mut k = in_idx + 1;
    loop {
        match &toks.get(k)?.tok {
            Tok::Punct('{') => break,
            t => expr.push(t),
        }
        k += 1;
        if k > in_idx + 8 {
            return None;
        }
    }
    // Accept only `[&][mut] name`, `[&][mut] self . name`, `[&][mut] x . name`.
    let mut idents: Vec<&str> = Vec::new();
    for t in &expr {
        match t {
            Tok::Punct('&') | Tok::Punct('.') => {}
            Tok::Ident(n) if n == "mut" => {}
            Tok::Ident(n) => idents.push(n),
            _ => return None,
        }
    }
    let last = idents.last()?;
    if idents.len() <= 2 && hash_names.iter().any(|h| h == last) {
        let rendered = idents.join(".");
        Some((&toks[i], rendered))
    } else {
        None
    }
}

/// Spans (token index ranges, inclusive) of items annotated
/// `#[cfg(test)]` — used by stdout-purity to let unit-test modules print.
fn cfg_test_spans(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i + 6 < toks.len() {
        let is_cfg_test = matches!(
            (
                &toks[i].tok,
                &toks[i + 1].tok,
                &toks[i + 2].tok,
                &toks[i + 3].tok,
                &toks[i + 4].tok,
                &toks[i + 5].tok,
                &toks[i + 6].tok,
            ),
            (
                Tok::Punct('#'),
                Tok::Punct('['),
                Tok::Ident(c),
                Tok::Punct('('),
                Tok::Ident(t),
                Tok::Punct(')'),
                Tok::Punct(']'),
            ) if c == "cfg" && t == "test"
        );
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip any further attributes, then find the item's body braces.
        let mut j = i + 7;
        while matches!(
            toks.get(j),
            Some(Token {
                tok: Tok::Punct('#'),
                ..
            })
        ) {
            // skip `#[...]`
            let mut depth = 0;
            j += 1;
            while let Some(t) = toks.get(j) {
                match t.tok {
                    Tok::Punct('[') => depth += 1,
                    Tok::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // Find the opening `{` of the annotated item, then its match.
        let mut open = None;
        let mut depth: i32 = 0;
        for (k, t) in toks.iter().enumerate().skip(j) {
            match t.tok {
                Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                Tok::Punct(';') if depth == 0 => break, // braceless item
                Tok::Punct('{') if depth == 0 => {
                    open = Some(k);
                    break;
                }
                _ => {}
            }
            if k > j + 64 {
                break;
            }
        }
        let Some(open) = open else {
            i += 1;
            continue;
        };
        let mut brace = 0i32;
        let mut end = open;
        for (k, t) in toks.iter().enumerate().skip(open) {
            match t.tok {
                Tok::Punct('{') => brace += 1,
                Tok::Punct('}') => {
                    brace -= 1;
                    if brace == 0 {
                        end = k;
                        break;
                    }
                }
                _ => {}
            }
        }
        spans.push((i, end));
        i = end + 1;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(path: &str, src: &str) -> Vec<&'static str> {
        scan_source(path, src).into_iter().map(|f| f.rule).collect()
    }

    const SIM: &str = "crates/sim/src/x.rs";

    #[test]
    fn std_hash_types_fire_in_result_scope_only() {
        let src = "use std::collections::HashSet;\n";
        assert_eq!(rules_of(SIM, src), ["nondet-iter"]);
        assert!(rules_of("crates/bench/src/x.rs", src).is_empty());
        assert!(rules_of("crates/util/src/x.rs", src).is_empty());
    }

    #[test]
    fn hash_iteration_is_flagged_via_binding_types() {
        let src = "fn f(m: &radio_util::FxHashMap<u32, u32>) -> u32 {\n    m.values().sum()\n}\n";
        let f = &scan_source(SIM, src)[0];
        assert_eq!((f.rule, f.line), ("nondet-iter", 2));
        // lookups on the same binding are fine
        let src = "fn f(m: &radio_util::FxHashMap<u32, u32>) -> Option<u32> {\n    m.get(&1).copied()\n}\n";
        assert!(scan_source(SIM, src).is_empty());
    }

    #[test]
    fn for_loops_over_hash_bindings_fire() {
        let src = "struct S { map: FxHashMap<u32, u32> }\nimpl S {\n    fn f(&self) {\n        for (k, v) in &self.map { let _ = (k, v); }\n    }\n}\n";
        assert_eq!(rules_of(SIM, src), ["nondet-iter"]);
        // vectors aren't flagged
        let src = "fn f(v: &Vec<u32>) { for x in v { let _ = x; } }\n";
        assert!(scan_source(SIM, src).is_empty());
        // BTreeMap iteration is ordered: clean
        let src = "fn f(m: &std::collections::BTreeMap<u32, u32>) { for x in m { let _ = x; } }\n";
        assert!(scan_source(SIM, src).is_empty());
    }

    #[test]
    fn impl_for_is_not_a_loop() {
        let src = "struct W { set: FxHashSet<u32> }\nimpl Default for W { fn default() -> W { W { set: FxHashSet::default() } } }\n";
        assert!(scan_source(SIM, src).is_empty());
    }

    #[test]
    fn wall_clock_scoping_and_allow() {
        let src = "fn f() { let t = std::time::Instant::now(); let _ = t; }\n";
        assert_eq!(rules_of(SIM, src), ["wall-clock"]);
        assert!(rules_of("crates/bench/src/x.rs", src).is_empty());
        let allowed =
            "fn f() { let t = Instant::now(); let _ = t; } // lint:allow(wall-clock): measured tail\n";
        assert!(scan_source(SIM, allowed).is_empty());
    }

    #[test]
    fn allow_on_preceding_line_covers_next_code_line() {
        let src = "fn f(m: &FxHashMap<u32, u32>) -> Vec<u32> {\n    let mut v: Vec<u32> = m\n        // lint:allow(nondet-iter): sorted right below\n        .values()\n        .copied()\n        .collect();\n    v.sort_unstable();\n    v\n}\n";
        assert!(scan_source(SIM, src).is_empty());
    }

    #[test]
    fn reasonless_or_unknown_allows_are_findings_and_do_not_suppress() {
        let src = "fn f() { let t = Instant::now(); let _ = t; } // lint:allow(wall-clock)\n";
        let mut rules = rules_of(SIM, src);
        rules.sort();
        assert_eq!(rules, ["allow-syntax", "wall-clock"]);
        let src = "// lint:allow(no-such-rule): whatever\nfn f() {}\n";
        assert_eq!(rules_of(SIM, src), ["allow-syntax"]);
    }

    #[test]
    fn stdout_purity_spares_bins_tests_and_cfg_test_mods() {
        let src = "pub fn f() { println!(\"x\"); }\n";
        assert_eq!(rules_of(SIM, src), ["stdout-purity"]);
        // a binary root may print (it still owes #![forbid(unsafe_code)],
        // which is the only thing flagged here)
        assert_eq!(
            rules_of("crates/core/src/bin/anon-radio.rs", src),
            ["unsafe-guard"]
        );
        assert!(rules_of("tests/end_to_end.rs", src).is_empty());
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { println!(\"ok\"); }\n}\n";
        assert!(scan_source(SIM, src).is_empty());
        // eprintln is diagnostics: always fine
        assert!(rules_of(SIM, "pub fn f() { eprintln!(\"x\"); }\n").is_empty());
    }

    #[test]
    fn unsafe_guard_roots_and_safety_comments() {
        let root = "crates/sim/src/lib.rs";
        assert_eq!(rules_of(root, "pub fn f() {}\n"), ["unsafe-guard"]);
        assert!(rules_of(root, "#![forbid(unsafe_code)]\npub fn f() {}\n").is_empty());
        // non-roots don't need the attribute
        assert!(rules_of(SIM, "pub fn f() {}\n").is_empty());
        let src = "fn f() { unsafe { g(); } }\n";
        assert_eq!(rules_of(SIM, src), ["unsafe-guard"]);
        let src = "fn f() {\n    // SAFETY: g has no preconditions\n    unsafe { g(); }\n}\n";
        assert!(scan_source(SIM, src).is_empty());
    }

    #[test]
    fn entropy_and_thread_identity() {
        assert_eq!(
            rules_of(SIM, "fn f() { let r = rand::thread_rng(); let _ = r; }\n"),
            ["os-entropy"]
        );
        assert_eq!(
            rules_of(SIM, "fn f() -> usize { std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) }\n"),
            ["thread-identity"]
        );
        assert_eq!(
            rules_of(
                SIM,
                "fn f() { let id = std::thread::current().id(); let _ = id; }\n"
            ),
            ["thread-identity"]
        );
        // bench may size its pools however it likes
        assert!(rules_of(
            "crates/bench/src/x.rs",
            "fn f() -> usize { std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) }\n"
        )
        .is_empty());
    }

    #[test]
    fn doc_comments_describing_directives_are_not_directives() {
        let src = "//! Suppress with `// lint:allow(rule-id): reason`.\n/// Same: lint:allow(other-id): prose\npub fn f() {}\n";
        assert!(scan_source(SIM, src).is_empty());
        // …and a doc comment cannot *suppress* either
        let src = "fn f() {\n    /// lint:allow(wall-clock): not a real directive\n    let t = Instant::now();\n    let _ = t;\n}\n";
        assert_eq!(rules_of(SIM, src), ["wall-clock"]);
    }

    #[test]
    fn banned_names_inside_strings_and_comments_never_fire() {
        let src = "// mentions thread_rng and HashMap in prose\npub const DOC: &str = \"println! Instant::now SystemTime HashSet\";\n";
        assert!(scan_source(SIM, src).is_empty());
    }
}
