//! Rendering findings for humans and machines.
//!
//! The human format is one `file:line:col [rule] message` per finding plus
//! a summary line; the JSON format is a single object with the same
//! information, emitted with a hand-rolled escaper (the linter is
//! dependency-free by design). Both renderings are derived from the same
//! sorted finding list, so their counts always agree — a property pinned
//! by the round-trip test in `tests/fixtures.rs`.

use crate::rules::Finding;

/// A completed scan: findings plus how much was looked at.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, col, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the scan produced no findings.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The human-readable report.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}:{} [{}] {}\n",
                f.file, f.line, f.col, f.rule, f.message
            ));
        }
        if self.is_clean() {
            out.push_str(&format!(
                "radio-lint: clean ({} file(s) scanned)\n",
                self.files_scanned
            ));
        } else {
            out.push_str(&format!(
                "radio-lint: {} finding(s) in {} file(s) scanned\n",
                self.findings.len(),
                self.files_scanned
            ));
        }
        out
    }

    /// The machine-readable report: one JSON object.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"file\":{},\"line\":{},\"col\":{},\"message\":{}}}",
                json_str(f.rule),
                json_str(&f.file),
                f.line,
                f.col,
                json_str(&f.message)
            ));
        }
        out.push_str(&format!(
            "],\"finding_count\":{},\"files_scanned\":{}}}",
            self.findings.len(),
            self.files_scanned
        ));
        out
    }
}

/// Escapes a string as a JSON string literal.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("plain"), "\"plain\"");
    }

    #[test]
    fn human_and_json_agree_on_counts() {
        let report = Report {
            findings: vec![Finding {
                file: "crates/sim/src/x.rs".into(),
                line: 3,
                col: 9,
                rule: "wall-clock",
                message: "Instant::now() reads the wall clock".into(),
            }],
            files_scanned: 1,
        };
        let human = report.render_human();
        assert!(human.contains("crates/sim/src/x.rs:3:9 [wall-clock]"));
        assert!(human.contains("1 finding(s) in 1 file(s)"));
        let json = report.render_json();
        assert!(json.contains("\"finding_count\":1"));
        assert!(json.contains("\"rule\":\"wall-clock\""));
    }
}
