//! A small self-contained Rust lexer.
//!
//! The rule engine must never fire on text inside string literals or
//! comments (the linter's own source mentions every banned pattern as a
//! string constant), so rules operate on a token stream, not on raw text.
//! The lexer handles exactly the surface that matters for that guarantee:
//!
//! * line comments (`//`, `///`, `//!`) and *nested* block comments,
//!   captured separately as [`Comment`]s so the rule engine can read
//!   `lint:allow(...)` directives and `SAFETY:` justifications;
//! * string literals: `"…"` with escapes, raw strings `r"…"`/`r#"…"#`
//!   (any number of `#`), byte strings `b"…"`, raw byte strings `br#"…"#`;
//! * char and byte-char literals (`'a'`, `b'\n'`, `'\u{1F980}'`)
//!   disambiguated from lifetimes (`'a`, `'static`);
//! * identifiers (including raw identifiers `r#type`) and numbers;
//! * everything else as single-character punctuation tokens — rules match
//!   multi-character operators (`::`, `#![…]`) as short punct sequences.
//!
//! It is a *lexer*, not a parser: rules work on token patterns plus a
//! per-file symbol table, which is the right fidelity for contract linting
//! (see `rules`) and keeps the crate dependency-free.

/// What a token is. Identifier payloads are kept (rules match names);
/// literal payloads are deliberately dropped — nothing inside a literal
/// may ever influence a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`for`, `unsafe`, `HashMap`, `r#type`).
    Ident(String),
    /// A lifetime such as `'a` (payload irrelevant to every rule).
    Lifetime,
    /// A string, char, byte, or numeric literal.
    Literal,
    /// A single punctuation character.
    Punct(char),
}

/// A token plus its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub tok: Tok,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

/// A comment with its text (delimiters stripped) and line extent; block
/// comments may span several lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment body without `//`, `/*`, `*/` (doc-comment markers kept).
    pub text: String,
    /// 1-based line the comment starts on.
    pub line_start: u32,
    /// 1-based line the comment ends on.
    pub line_end: u32,
}

/// The output of [`lex`]: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `source`. Unterminated constructs (string/comment at EOF) are
/// tolerated: the lexer consumes to EOF rather than erroring, because a
/// linter must degrade gracefully on files rustc would reject anyway.
pub fn lex(source: &str) -> Lexed {
    Lexer::new(source).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Lexed,
}

impl Lexer {
    fn new(source: &str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            out: Lexed::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one character, maintaining line/column counters.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push_tok(&mut self, tok: Tok, line: u32, col: u32) {
        self.out.tokens.push(Token { tok, line, col });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => {
                    self.string_literal();
                    self.push_tok(Tok::Literal, line, col);
                }
                '\'' => self.char_or_lifetime(line, col),
                'r' | 'b' if self.raw_or_byte_literal(line, col) => {}
                c if is_ident_start(c) => {
                    let name = self.ident();
                    self.push_tok(Tok::Ident(name), line, col);
                }
                c if c.is_ascii_digit() => {
                    self.number();
                    self.push_tok(Tok::Literal, line, col);
                }
                _ => {
                    self.bump();
                    self.push_tok(Tok::Punct(c), line, col);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump(); // the two slashes
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            text,
            line_start: line,
            line_end: line,
        });
    }

    fn block_comment(&mut self, line_start: u32) {
        self.bump();
        self.bump(); // `/*`
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            text,
            line_start,
            line_end: self.line,
        });
    }

    /// A `"…"` literal with `\`-escapes; the opening quote is current.
    fn string_literal(&mut self) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// A `'`-introduced token: lifetime, loop label, or char literal.
    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        self.bump(); // the quote
        match (self.peek(0), self.peek(1)) {
            // `'a` followed by anything but a closing quote is a lifetime
            // (or loop label): `'static`, `'a>`, `'outer:`.
            (Some(c), next) if is_ident_start(c) && next != Some('\'') => {
                self.ident();
                self.push_tok(Tok::Lifetime, line, col);
            }
            _ => {
                // char literal: consume to the closing quote, honoring
                // escapes (`'\''`, `'\u{…}'`).
                while let Some(c) = self.bump() {
                    match c {
                        '\\' => {
                            self.bump();
                        }
                        '\'' => break,
                        _ => {}
                    }
                }
                self.push_tok(Tok::Literal, line, col);
            }
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `r#ident`, `b"…"`, `b'…'`, `br#"…"#`.
    /// Returns false if the current position is a plain identifier after
    /// all (caller then lexes it normally).
    fn raw_or_byte_literal(&mut self, line: u32, col: u32) -> bool {
        let c0 = self.peek(0).unwrap_or('\0');
        let mut ahead = 1;
        if c0 == 'b' && self.peek(1) == Some('r') {
            ahead = 2;
        }
        // Count `#`s after the prefix (raw strings only).
        let mut hashes = 0;
        while self.peek(ahead + hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek(ahead + hashes) {
            Some('"') => {
                // Raw (or plain byte) string. `b"…"` has hashes == 0.
                let raw = hashes > 0 || self.peek(ahead - 1) == Some('r');
                for _ in 0..ahead + hashes {
                    self.bump();
                }
                if raw {
                    self.raw_string_body(hashes);
                } else {
                    self.string_literal();
                }
                self.push_tok(Tok::Literal, line, col);
                true
            }
            Some('\'') if c0 == 'b' && ahead == 1 && hashes == 0 => {
                // Byte char `b'x'`.
                self.bump(); // the b
                self.char_or_lifetime(line, col);
                true
            }
            Some(c) if c0 == 'r' && ahead == 1 && hashes == 1 && is_ident_start(c) => {
                // Raw identifier `r#type`: emit as the bare identifier.
                self.bump(); // r
                self.bump(); // #
                let name = self.ident();
                self.push_tok(Tok::Ident(name), line, col);
                true
            }
            _ => false,
        }
    }

    /// Body of a raw string after the opening `"`; `hashes` is the number
    /// of `#`s that must follow the closing `"`.
    fn raw_string_body(&mut self, hashes: usize) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut matched = 0;
                while matched < hashes && self.peek(0) == Some('#') {
                    self.bump();
                    matched += 1;
                }
                if matched == hashes {
                    break;
                }
            }
        }
    }

    fn ident(&mut self) -> String {
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        name
    }

    /// Numeric literals, including `0x…`/`0b…`, `_` separators, floats
    /// (`1.5`, `1e9`), and suffixes (`1u64`). Range expressions (`0..n`)
    /// must not swallow the dots: a `.` is only consumed when followed by
    /// a digit.
    fn number(&mut self) {
        while let Some(c) = self.peek(0) {
            let in_number = c.is_ascii_alphanumeric()
                || c == '_'
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()));
            if !in_number {
                break;
            }
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(name) => Some(name),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn string_contents_produce_no_idents() {
        let src = r##"let x = "println! thread_rng HashMap"; let y = r#"Instant::now"#;"##;
        assert_eq!(idents(src), ["let", "x", "let", "y"]);
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let src = "// thread_rng here\n/* HashMap /* nested */ still */ fn f() {}\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("thread_rng"));
        assert!(lexed.comments[1].text.contains("nested"));
        let names: Vec<String> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(n) => Some(n.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(names, ["fn", "f"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Lifetime)
            .count();
        let literals = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Literal)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(literals, 1);
    }

    #[test]
    fn escaped_quote_char_literal() {
        let src = r"let q = '\''; let n = '\n'; let u = '\u{1F980}'; done";
        assert_eq!(idents(src), ["let", "q", "let", "n", "let", "u", "done"]);
    }

    #[test]
    fn raw_strings_with_hashes_and_byte_strings() {
        let src =
            r###"let a = r#"quote " inside"#; let b = b"bytes"; let c = br##"x"# y"##; end"###;
        assert_eq!(idents(src), ["let", "a", "let", "b", "let", "c", "end"]);
    }

    #[test]
    fn raw_identifier_is_an_ident() {
        assert_eq!(idents("let r#type = 1;"), ["let", "type"]);
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let lexed = lex("fn f() {\n    g();\n}\n");
        let g = lexed
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("g".into()))
            .unwrap();
        assert_eq!((g.line, g.col), (2, 5));
    }

    #[test]
    fn ranges_do_not_eat_dots() {
        let src = "for i in 0..10 { let f = 1.5; let e = 2e3; }";
        let puncts: Vec<char> = lex(src)
            .tokens
            .iter()
            .filter_map(|t| match t.tok {
                Tok::Punct(c) => Some(c),
                _ => None,
            })
            .collect();
        assert_eq!(puncts.iter().filter(|&&c| c == '.').count(), 2);
    }

    #[test]
    fn b_and_r_as_plain_identifiers() {
        assert_eq!(idents("let b = r; b(r);"), ["let", "b", "r", "b", "r"]);
    }
}
