//! Standalone decoder for the compact binary campaign-row format.
//!
//! `anon-radio campaign --row-format binary` writes rows as a magic-and-
//! version header followed by length-prefixed payloads (layout documented
//! in `crates/core/src/row.rs`). `radio-lint schema` accepts those files
//! directly: this module decodes them back to the canonical JSONL text,
//! which then flows through the ordinary [`crate::schema`] field-order
//! checks.
//!
//! The decoder is written against the *wire layout*, not against the
//! `anon-radio` crate — the linter stays dependency-free and therefore
//! cross-checks the producer rather than trusting it. The workspace's
//! root tests round-trip the golden corpus through both implementations
//! and diff the text.

use crate::rules::Finding;
use crate::schema::ROW_SCHEMA;

/// Magic bytes opening every binary row file.
pub const MAGIC: [u8; 4] = *b"ARBR";
/// The one binary schema version this decoder understands.
pub const VERSION: u16 = 1;

/// True when the bytes open with the binary-row magic — the sniff the
/// `schema` command uses to pick a decoder per file.
pub fn is_binary(bytes: &[u8]) -> bool {
    bytes.starts_with(&MAGIC)
}

/// Decodes a binary row file to canonical JSONL text (one row per line).
/// Returns a [`Finding`] labelled with `file` on any structural defect:
/// bad magic, unknown version, truncation, stray bytes, non-UTF-8 labels.
/// The `line` of a decode finding is the 1-based row being decoded (0 for
/// header-level defects).
pub fn decode_to_jsonl(file: &str, bytes: &[u8]) -> Result<String, Finding> {
    let fail = |line: u32, message: String| Finding {
        file: file.to_string(),
        line,
        col: 1,
        rule: ROW_SCHEMA,
        message,
    };
    if bytes.len() < 6 {
        return Err(fail(
            0,
            "binary row file shorter than the 6-byte header".into(),
        ));
    }
    if !is_binary(bytes) {
        return Err(fail(
            0,
            format!("bad magic {:?} (expected {MAGIC:?})", &bytes[..4]),
        ));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VERSION {
        return Err(fail(
            0,
            format!("unsupported binary schema version {version} (decoder supports {VERSION})"),
        ));
    }
    let mut rest = &bytes[6..];
    let mut out = String::new();
    let mut row_num = 0u32;
    while !rest.is_empty() {
        row_num += 1;
        if rest.len() < 4 {
            return Err(fail(row_num, "truncated row length prefix".into()));
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        rest = &rest[4..];
        if rest.len() < len {
            return Err(fail(
                row_num,
                format!(
                    "truncated row payload: declared {len} bytes, {} remain",
                    rest.len()
                ),
            ));
        }
        let (payload, tail) = rest.split_at(len);
        rest = tail;
        let mut d = Decoder { rest: payload };
        let line = d.row().map_err(|m| fail(row_num, m))?;
        if !d.rest.is_empty() {
            return Err(fail(
                row_num,
                format!("{} stray bytes after the decoded payload", d.rest.len()),
            ));
        }
        out.push_str(&line);
        out.push('\n');
    }
    Ok(out)
}

const PHASE_ELECT: u8 = 1;
const PHASE_CLASSIFY: u8 = 2;
const STATS_NULL: u8 = 0;
const STATS_PRESENT: u8 = 1;

struct Decoder<'a> {
    rest: &'a [u8],
}

impl Decoder<'_> {
    fn take(&mut self, n: usize, what: &str) -> Result<&[u8], String> {
        if self.rest.len() < n {
            return Err(format!(
                "truncated {what}: needed {n} bytes, {} remain",
                self.rest.len()
            ));
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take(1, what)?[0])
    }

    fn u64(&mut self, what: &str) -> Result<u64, String> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn str(&mut self, what: &str) -> Result<String, String> {
        let len = u16::from_le_bytes(self.take(2, what)?.try_into().expect("2 bytes")) as usize;
        let bytes = self.take(len, what)?;
        std::str::from_utf8(bytes)
            .map(str::to_string)
            .map_err(|e| format!("{what} is not UTF-8: {e}"))
    }

    /// Renders a stats object exactly as the producer's JSONL path does:
    /// `null` when empty, shortest-round-trip floats, NaN bits as `null`.
    fn stats(&mut self, what: &str) -> Result<String, String> {
        match self.u8(what)? {
            STATS_NULL => Ok("null".to_string()),
            STATS_PRESENT => {
                let count = self.u64(what)?;
                let mut vals = [0.0f64; 5];
                for v in &mut vals {
                    *v = f64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes"));
                }
                let f = |x: f64| {
                    if x.is_finite() {
                        format!("{x}")
                    } else {
                        "null".to_string()
                    }
                };
                Ok(format!(
                    "{{\"count\":{count},\"mean\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{}}}",
                    f(vals[0]),
                    f(vals[1]),
                    f(vals[2]),
                    f(vals[3]),
                    f(vals[4]),
                ))
            }
            tag => Err(format!("unknown stats tag {tag} in {what}")),
        }
    }

    fn row(&mut self) -> Result<String, String> {
        match self.u8("phase byte")? {
            PHASE_ELECT => {
                let family = self.str("family")?;
                let tags = self.str("tags")?;
                let n = self.u64("n")?;
                let span = self.u64("span")?;
                let model = self.str("model")?;
                let runs = self.u64("runs")?;
                let feasible = self.u64("feasible")?;
                let elected = self.u64("elected")?;
                let aborted = self.u64("aborted")?;
                let mut line = format!(
                    "{{\"phase\":\"elect\",\"family\":\"{family}\",\"tags\":\"{tags}\",\
                     \"n\":{n},\"span\":{span},\"model\":\"{model}\",\"runs\":{runs},\
                     \"feasible\":{feasible},\"elected\":{elected},\"aborted\":{aborted}"
                );
                for key in ["rounds", "transmissions", "stepped", "leapt"] {
                    line.push_str(&format!(",\"{key}\":{}", self.stats(key)?));
                }
                let tail_len = self.u8("tail length")?;
                if tail_len > 4 {
                    return Err(format!(
                        "elect tail length {tail_len} exceeds the 4 defined tail fields"
                    ));
                }
                if tail_len >= 1 {
                    line.push_str(&format!(",\"wall_ns\":{}", self.stats("wall_ns")?));
                }
                if tail_len >= 2 {
                    line.push_str(&format!(",\"cache_hits\":{}", self.u64("cache_hits")?));
                }
                if tail_len >= 3 {
                    line.push_str(&format!(",\"cache_misses\":{}", self.u64("cache_misses")?));
                }
                if tail_len >= 4 {
                    line.push_str(&format!(",\"mem_hw\":{}", self.stats("mem_hw")?));
                }
                line.push('}');
                Ok(line)
            }
            PHASE_CLASSIFY => {
                let family = self.str("family")?;
                let tags = self.str("tags")?;
                let n = self.u64("n")?;
                let span = self.u64("span")?;
                let runs = self.u64("runs")?;
                let feasible = self.u64("feasible")?;
                let mut line = format!(
                    "{{\"phase\":\"classify\",\"family\":\"{family}\",\"tags\":\"{tags}\",\
                     \"n\":{n},\"span\":{span},\"runs\":{runs},\"feasible\":{feasible}"
                );
                for key in ["iterations", "classes", "relabels"] {
                    line.push_str(&format!(",\"{key}\":{}", self.stats(key)?));
                }
                let tail_len = self.u8("tail length")?;
                if tail_len > 2 {
                    return Err(format!(
                        "classify tail length {tail_len} exceeds the 2 defined tail fields"
                    ));
                }
                if tail_len >= 1 {
                    line.push_str(&format!(",\"wall_ns\":{}", self.stats("wall_ns")?));
                }
                if tail_len >= 2 {
                    line.push_str(&format!(",\"mem_hw\":{}", self.stats("mem_hw")?));
                }
                line.push('}');
                Ok(line)
            }
            byte => Err(format!("unknown phase byte {byte}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::check_rows;

    /// Hand-assembles a one-row binary file (classify, empty tail) so the
    /// decoder is tested against the documented layout, not a producer.
    fn tiny_file() -> Vec<u8> {
        let mut payload = vec![PHASE_CLASSIFY];
        for s in ["star", "uniform"] {
            payload.extend_from_slice(&(s.len() as u16).to_le_bytes());
            payload.extend_from_slice(s.as_bytes());
        }
        for v in [6u64, 3, 2, 2] {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        for _ in 0..3 {
            payload.push(STATS_PRESENT);
            payload.extend_from_slice(&2u64.to_le_bytes());
            for f in [1.0f64, 1.0, 1.0, 1.0, 1.0] {
                payload.extend_from_slice(&f.to_le_bytes());
            }
        }
        payload.push(0); // empty measured tail
        let mut file = Vec::new();
        file.extend_from_slice(&MAGIC);
        file.extend_from_slice(&VERSION.to_le_bytes());
        file.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        file.extend_from_slice(&payload);
        file
    }

    #[test]
    fn decodes_a_hand_assembled_row_to_schema_clean_jsonl() {
        let jsonl = decode_to_jsonl("x.bin", &tiny_file()).expect("decodes");
        assert!(jsonl.starts_with("{\"phase\":\"classify\",\"family\":\"star\""));
        assert!(jsonl.contains("\"relabels\":{\"count\":2,\"mean\":1,"));
        assert!(check_rows("x.bin", &jsonl).is_empty());
    }

    #[test]
    fn rejects_header_and_payload_corruption() {
        let good = tiny_file();
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(decode_to_jsonl("x", &bad)
            .unwrap_err()
            .message
            .contains("bad magic"));
        let mut bad = good.clone();
        bad[4] = 9;
        assert!(decode_to_jsonl("x", &bad)
            .unwrap_err()
            .message
            .contains("unsupported binary schema version"));
        assert!(decode_to_jsonl("x", &good[..good.len() - 2])
            .unwrap_err()
            .message
            .contains("truncated row payload"));
        assert!(decode_to_jsonl("x", &good[..5])
            .unwrap_err()
            .message
            .contains("shorter than the 6-byte header"));
        // payload declares one byte more than the row actually holds
        let mut bad = good.clone();
        let declared = u32::from_le_bytes(bad[6..10].try_into().unwrap());
        bad[6..10].copy_from_slice(&(declared - 1).to_le_bytes());
        assert!(decode_to_jsonl("x", &bad).is_err());
    }
}
