//! The campaign row-contract checker (`radio-lint schema`).
//!
//! PR 6 split every JSONL campaign row into a *pinned deterministic
//! prefix* — bit-for-bit identical across cache on/off, shard/thread
//! geometry, and workspace reuse — and a *measured tail* beginning at
//! `wall_ns` (plus, in elect rows, the `cache_hits`/`cache_misses`
//! counters, whose split depends on worker interleaving). Deterministic
//! consumers — the golden corpus, the geometry-invariance tests, CI's
//! cached-vs-uncached diff — strip a row by splitting at `,"wall_ns"`.
//! That convention only works if the field order is a *schema*, so this
//! module enforces it:
//!
//! * elect rows: exactly `phase family tags n span model runs feasible
//!   elected aborted rounds transmissions stepped leapt`, then an optional
//!   tail that must be a prefix of `wall_ns cache_hits cache_misses
//!   mem_hw` in that order — an interleaving-dependent field may never
//!   precede a deterministic one;
//! * classify rows: exactly `phase family tags n span runs feasible
//!   iterations classes relabels` then optionally a prefix of `wall_ns
//!   mem_hw`; the phase never consults the model or the simulator, so
//!   `model`, `rounds`, `transmissions`, `stepped`, `leapt`, and the
//!   cache counters must not appear at all.
//!
//! Checked files may be live CLI output (full tail) or the checked-in
//! golden corpus (tail stripped); both shapes are valid instances of the
//! contract.

use crate::rules::Finding;

/// Rule id used for schema findings (distinct from source-lint rules).
pub const ROW_SCHEMA: &str = "row-schema";

/// Rule id for a row file with no rows at all. A campaign output
/// truncated to empty (dead disk, interrupted redirect, wrong glob) is
/// not a *valid* corpus — it is a missing one, and "clean" would let it
/// pass CI silently. Reported as a warning by default; `--deny-all`
/// promotes it to an error.
pub const EMPTY_ROWS: &str = "empty-rows";

const ELECT_PREFIX: &[&str] = &[
    "phase",
    "family",
    "tags",
    "n",
    "span",
    "model",
    "runs",
    "feasible",
    "elected",
    "aborted",
    "rounds",
    "transmissions",
    "stepped",
    "leapt",
];
const ELECT_TAIL: &[&str] = &["wall_ns", "cache_hits", "cache_misses", "mem_hw"];

const CLASSIFY_PREFIX: &[&str] = &[
    "phase",
    "family",
    "tags",
    "n",
    "span",
    "runs",
    "feasible",
    "iterations",
    "classes",
    "relabels",
];
const CLASSIFY_TAIL: &[&str] = &["wall_ns", "mem_hw"];

/// Fields a classify row must never carry (simulation/cache surface).
const CLASSIFY_FORBIDDEN: &[&str] = &[
    "model",
    "rounds",
    "transmissions",
    "stepped",
    "leapt",
    "cache_hits",
    "cache_misses",
];

/// Checks every row of a JSONL campaign file. `file` is only used to
/// label findings; `line` in each finding is the 1-based row number.
pub fn check_rows(file: &str, contents: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut rows = 0usize;
    for (idx, row) in contents.lines().enumerate() {
        if row.trim().is_empty() {
            continue;
        }
        rows += 1;
        check_row(file, idx as u32 + 1, row, &mut findings);
    }
    if rows == 0 {
        findings.push(Finding {
            file: file.to_string(),
            line: 1,
            col: 1,
            rule: EMPTY_ROWS,
            message: "row file holds no rows — an empty/truncated campaign output is a \
                      missing corpus, not a clean one"
                .to_string(),
        });
    }
    findings
}

fn fail(findings: &mut Vec<Finding>, file: &str, line: u32, message: String) {
    findings.push(Finding {
        file: file.to_string(),
        line,
        col: 1,
        rule: ROW_SCHEMA,
        message,
    });
}

fn check_row(file: &str, line: u32, row: &str, findings: &mut Vec<Finding>) {
    let Some(names) = field_names(row) else {
        fail(
            findings,
            file,
            line,
            "row is not a flat JSON object".to_string(),
        );
        return;
    };
    let phase = match phase_of(row) {
        Some(p) => p,
        None => {
            fail(
                findings,
                file,
                line,
                "row does not start with a \"phase\" field".to_string(),
            );
            return;
        }
    };
    let (prefix, tail): (&[&str], &[&str]) = match phase.as_str() {
        "elect" => (ELECT_PREFIX, ELECT_TAIL),
        "classify" => (CLASSIFY_PREFIX, CLASSIFY_TAIL),
        other => {
            fail(findings, file, line, format!("unknown phase \"{other}\""));
            return;
        }
    };

    if phase == "classify" {
        for name in &names {
            if CLASSIFY_FORBIDDEN.contains(&name.as_str()) {
                fail(
                    findings,
                    file,
                    line,
                    format!(
                        "classify row carries \"{name}\" — the classify phase has no \
                         simulation/cache surface"
                    ),
                );
            }
        }
    }

    // The deterministic prefix must be exact, in order.
    for (i, want) in prefix.iter().enumerate() {
        match names.get(i) {
            Some(got) if got == want => {}
            Some(got) => {
                fail(
                    findings,
                    file,
                    line,
                    format!(
                        "field {} of the {phase} row is \"{got}\", expected \"{want}\" — \
                         the deterministic prefix is pinned",
                        i + 1
                    ),
                );
                return;
            }
            None => {
                fail(
                    findings,
                    file,
                    line,
                    format!(
                        "{phase} row ends after {} field(s); deterministic prefix \
                         requires \"{want}\" next",
                        names.len()
                    ),
                );
                return;
            }
        }
    }

    // Whatever follows must be a prefix of the measured tail, in order:
    // interleaving-dependent fields only ever appear after `wall_ns`.
    let rest = &names[prefix.len()..];
    if rest.len() > tail.len() {
        fail(
            findings,
            file,
            line,
            format!(
                "{phase} row carries unexpected trailing field \"{}\"",
                rest[tail.len()]
            ),
        );
        return;
    }
    for (got, want) in rest.iter().zip(tail) {
        if got != want {
            fail(
                findings,
                file,
                line,
                format!(
                    "measured tail of the {phase} row has \"{got}\" where \"{want}\" \
                     belongs — interleaving-dependent fields must follow wall_ns in \
                     pinned order"
                ),
            );
            return;
        }
    }
}

/// Top-level field names of a one-line JSON object, in order; `None` when
/// the line isn't one. Tracks brace depth and strings, so nested stat
/// objects and string values with braces don't confuse the split.
fn field_names(row: &str) -> Option<Vec<String>> {
    let body = row.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut names = Vec::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    let mut field_start = 0usize;
    let bytes = body.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if in_str {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_str = false;
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'{' | b'[' => depth += 1,
            b'}' | b']' => depth = depth.checked_sub(1)?,
            b',' if depth == 0 => {
                names.push(name_of(&body[field_start..i])?);
                field_start = i + 1;
            }
            _ => {}
        }
    }
    if in_str || depth != 0 {
        return None;
    }
    if !body.is_empty() {
        names.push(name_of(&body[field_start..])?);
    }
    Some(names)
}

/// `"name":value` → `name`.
fn name_of(field: &str) -> Option<String> {
    let field = field.trim();
    let rest = field.strip_prefix('"')?;
    let end = rest.find('"')?;
    let name = &rest[..end];
    rest[end + 1..].trim_start().strip_prefix(':')?;
    Some(name.to_string())
}

/// The value of the leading `"phase"` field, if the row starts with one.
fn phase_of(row: &str) -> Option<String> {
    let rest = row.trim().strip_prefix("{\"phase\":\"")?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const ELECT_FULL: &str = "{\"phase\":\"elect\",\"family\":\"path\",\"tags\":\"uniform\",\"n\":6,\"span\":3,\"model\":\"no-collision-detection\",\"runs\":2,\"feasible\":2,\"elected\":2,\"aborted\":0,\"rounds\":{\"count\":2,\"mean\":13},\"transmissions\":{\"count\":2},\"stepped\":{\"count\":2},\"leapt\":{\"count\":2},\"wall_ns\":{\"count\":2},\"cache_hits\":1,\"cache_misses\":1}";
    const CLASSIFY_STRIPPED: &str = "{\"phase\":\"classify\",\"family\":\"star\",\"tags\":\"uniform\",\"n\":6,\"span\":3,\"runs\":2,\"feasible\":2,\"iterations\":{\"count\":2},\"classes\":{\"count\":2},\"relabels\":{\"count\":2}}";

    #[test]
    fn live_and_stripped_rows_both_pass() {
        assert!(check_rows("x.jsonl", ELECT_FULL).is_empty());
        assert!(check_rows("x.jsonl", CLASSIFY_STRIPPED).is_empty());
        // golden-style elect row (tail fully stripped)
        let stripped = ELECT_FULL.split(",\"wall_ns\"").next().unwrap().to_string() + "}";
        assert!(check_rows("x.jsonl", &stripped).is_empty());
        // wall_ns alone (classify live row shape)
        let one_tail = CLASSIFY_STRIPPED.strip_suffix('}').unwrap().to_string()
            + ",\"wall_ns\":{\"count\":2}}";
        assert!(check_rows("x.jsonl", &one_tail).is_empty());
        // full measured tail including the mem_hw high-water column
        let full_elect =
            ELECT_FULL.strip_suffix('}').unwrap().to_string() + ",\"mem_hw\":{\"count\":2}}";
        assert!(check_rows("x.jsonl", &full_elect).is_empty());
        let full_classify =
            one_tail.strip_suffix('}').unwrap().to_string() + ",\"mem_hw\":{\"count\":2}}";
        assert!(check_rows("x.jsonl", &full_classify).is_empty());
    }

    #[test]
    fn mem_hw_requires_the_earlier_tail_fields() {
        // mem_hw straight after leapt (no wall_ns) is out of order
        let stripped = ELECT_FULL.split(",\"wall_ns\"").next().unwrap().to_string();
        let bad = stripped + ",\"mem_hw\":{\"count\":2}}";
        let findings = check_rows("x.jsonl", &bad);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("\"mem_hw\" where \"wall_ns\""));
    }

    #[test]
    fn classify_rows_must_not_carry_simulation_fields() {
        let bad = CLASSIFY_STRIPPED.replace("\"runs\":2,", "\"runs\":2,\"model\":\"beeping\",");
        let findings = check_rows("x.jsonl", &bad);
        assert!(findings.iter().any(|f| f.message.contains("\"model\"")));
    }

    #[test]
    fn tail_fields_may_not_precede_deterministic_ones() {
        let bad = ELECT_FULL.replace("\"aborted\":0", "\"wall_ns\":{\"count\":2},\"aborted\":0");
        let findings = check_rows("x.jsonl", &bad);
        assert_eq!(findings.len(), 1);
        assert!(findings[0]
            .message
            .contains("deterministic prefix is pinned"));
    }

    #[test]
    fn cache_counters_require_wall_ns_first() {
        let bad = ELECT_FULL.replace(",\"wall_ns\":{\"count\":2}", "");
        let findings = check_rows("x.jsonl", &bad);
        assert_eq!(findings.len(), 1);
        assert!(findings[0]
            .message
            .contains("\"cache_hits\" where \"wall_ns\""));
    }

    #[test]
    fn unknown_phase_missing_phase_and_trailing_junk() {
        assert_eq!(check_rows("x", "{\"phase\":\"mystery\",\"n\":1}").len(), 1);
        assert_eq!(check_rows("x", "{\"family\":\"path\"}").len(), 1);
        // a stray field inside the tail is caught by the pinned order...
        let junk = ELECT_FULL.trim_end_matches('}').to_string() + ",\"extra\":1}";
        let findings = check_rows("x", &junk);
        assert!(findings[0].message.contains("\"extra\" where \"mem_hw\""));
        // ...and one past the full tail is flagged as trailing
        let junk =
            ELECT_FULL.trim_end_matches('}').to_string() + ",\"mem_hw\":{\"count\":2},\"extra\":1}";
        let findings = check_rows("x", &junk);
        assert!(findings[0]
            .message
            .contains("unexpected trailing field \"extra\""));
    }

    #[test]
    fn row_numbers_label_findings_and_blank_lines_are_skipped() {
        let contents = format!("{ELECT_FULL}\n\n{{\"family\":\"path\"}}\n");
        let findings = check_rows("f.jsonl", &contents);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 3);
        assert_eq!(findings[0].rule, ROW_SCHEMA);
    }

    #[test]
    fn files_with_no_rows_are_a_distinct_finding() {
        for contents in ["", "\n", "  \n\n"] {
            let findings = check_rows("f.jsonl", contents);
            assert_eq!(findings.len(), 1, "{contents:?}");
            assert_eq!(findings[0].rule, EMPTY_ROWS);
            assert_eq!((findings[0].line, findings[0].col), (1, 1));
        }
        // one valid row is enough for the file to count as populated
        assert!(check_rows("f.jsonl", CLASSIFY_STRIPPED).is_empty());
    }
}
