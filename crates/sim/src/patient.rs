//! The patient-DRIP transform (paper Lemma 3.12).
//!
//! A **patient** DRIP is one under which no node transmits in global rounds
//! `0..=σ`; since all tags lie in that window, every node then wakes
//! spontaneously, which makes local→global clock conversion reliable
//! (Proposition 2.1). Lemma 3.12 shows feasibility never depends on
//! impatience: given any DRIP `D` that solves leader election on `G`, the
//! transform below yields a patient DRIP `D_pat` that also solves it.
//!
//! The construction, from the paper: each node listens for
//! `s_w = min(σ, rcv_w)` local rounds (`rcv_w` = first local round in which
//! a *message* is received — collisions don't count), then runs `D` on the
//! history suffix starting at `s_w`, so that `D` sees `H[s_w]` as its
//! wake-up entry: a `(M)` entry replays a forced wake-up, a `(∅)` entry a
//! spontaneous one.
//!
//! # Erratum: the boundary entry
//!
//! The paper feeds `H[s_w]` to `D` verbatim. There is one corner case where
//! that entry is not a legal wake-up observation: if, in the original
//! execution, **two or more neighbours of `w` transmit exactly in `w`'s
//! spontaneous wake-up round**, then `w` (asleep — noise does not wake a
//! node) records `H_D[0] = (∅)`, while in the patient execution `w` is
//! already awake and *listening* at the corresponding round `s_w = σ` and
//! records `(∗)`. Feeding `(∗)` as a wake-up entry would let `D` diverge
//! from its original behaviour, breaking Claim 2(3) of the lemma. We
//! therefore sanitize a collision at the boundary to `(∅)` — exactly the
//! observation `w` had in the original execution. (A boundary collision can
//! only occur with `s_w = σ`, i.e. for spontaneously-woken nodes, so the
//! substitution is always faithful; see `boundary_collision_is_sanitized`.)

use crate::drip::{DripFactory, DripNode};
use crate::history::{History, HistoryView};
use crate::msg::Action;

/// Factory wrapping an inner DRIP into its patient version for span `σ`.
///
/// The span is per-configuration knowledge, which is exactly what the
/// paper's dedicated-algorithm setting grants.
pub struct PatientFactory<F> {
    inner: F,
    sigma: u64,
}

impl<F: DripFactory> PatientFactory<F> {
    /// Wraps `inner` for a configuration of span `sigma`.
    pub fn new(inner: F, sigma: u64) -> PatientFactory<F> {
        PatientFactory { inner, sigma }
    }
}

impl<F: DripFactory> DripFactory for PatientFactory<F> {
    fn spawn(&self) -> Box<dyn DripNode> {
        Box::new(PatientNode {
            inner: self.inner.spawn(),
            sigma: self.sigma,
            inner_hist: History::new(),
            started: false,
            s: 0,
            scanned: 0,
        })
    }

    fn name(&self) -> String {
        format!("patient(σ={}, {})", self.sigma, self.inner.name())
    }
}

struct PatientNode {
    inner: Box<dyn DripNode>,
    sigma: u64,
    /// The history replayed into the inner DRIP: `H[s ..]`.
    inner_hist: History,
    started: bool,
    /// `s_w` once determined.
    s: usize,
    /// Message-free prefix already scanned for `rcv`: entries
    /// `H[..scanned]` are known to hold no message, so each round only
    /// the new suffix is searched (keeps σ-long listening windows O(σ)
    /// total instead of O(σ²)).
    scanned: usize,
}

impl PatientNode {
    /// `rcv` restricted to the unscanned suffix (see `scanned`).
    fn first_message_from_cursor(&self, history: HistoryView<'_>) -> Option<usize> {
        history.as_slice()[self.scanned..]
            .iter()
            .position(|o| o.is_message())
            .map(|p| p + self.scanned)
    }
}

impl DripNode for PatientNode {
    fn decide(&mut self, history: HistoryView<'_>) -> Action {
        let i = history.len(); // current local round
        if !self.started {
            // `s = min(σ, rcv)` with `rcv` the first local round holding a
            // message. While neither bound is reached we are still inside
            // the listening window.
            let rcv = self.first_message_from_cursor(history);
            if rcv.is_none() {
                self.scanned = i;
            }
            match rcv {
                Some(rcv) if (rcv as u64) < self.sigma => self.s = rcv,
                _ if (i as u64) > self.sigma => self.s = self.sigma as usize,
                _ => return Action::Listen, // window end still unknown
            }
            self.started = true;
        }
        if i <= self.s {
            return Action::Listen;
        }
        // Replay the suffix H[s..i-1] into the inner DRIP incrementally;
        // the inner node then decides its local round i - s.
        while self.s + self.inner_hist.len() < i {
            let idx = self.s + self.inner_hist.len();
            let mut obs = history[idx];
            if idx == self.s && (obs.is_collision() || obs.is_noise()) {
                // Boundary sanitation (see module docs): in the original
                // execution the node was asleep under this collision and
                // woke spontaneously, observing (∅). Noise is sanitized the
                // same way so the inner DRIP's wake-up entry is always a
                // legal paper-model observation — (∅) or (M) — whatever
                // channel model the outer execution ran under (Lemma 3.12's
                // faithfulness guarantee itself is proved for the paper
                // model only).
                obs = crate::msg::Obs::Silence;
            }
            self.inner_hist.push(obs);
        }
        self.inner.decide(self.inner_hist.view())
    }

    fn quiet_until(&self, history: HistoryView<'_>) -> Option<u64> {
        let i = history.len() as u64;
        if !self.started {
            // A message may already sit in the un-processed suffix (the
            // window end is then about to be resolved): no claim. With
            // continued silence `rcv` never fires, so the node listens
            // through local round σ and hands σ+1 to the inner DRIP.
            if self.first_message_from_cursor(history).is_some() {
                return None;
            }
            return (i <= self.sigma).then_some(self.sigma + 1);
        }
        // The inner DRIP took over at `s`. Its view lags the outer history
        // by the entries `decide` has not replayed yet; the claim is only
        // valid if that backlog is pure silence (anything else could
        // change the inner node's mind before the horizon).
        let replayed = self.s + self.inner_hist.len();
        if history.as_slice()[replayed..]
            .iter()
            .any(|o| !o.is_silence())
        {
            return None;
        }
        // Inner local round = outer local round − s.
        self.inner
            .quiet_until(self.inner_hist.view())
            .map(|q| q.saturating_add(self.s as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drip::{PureFactory, WaitThenTransmitFactory};
    use crate::engine::{Executor, RunOpts};
    use crate::msg::{Msg, Obs};
    use radio_graph::{generators, Configuration};

    #[test]
    fn no_transmission_before_sigma() {
        // Inner DRIP transmits immediately; the patient wrapper must hold
        // every node silent through global round σ (Claim 1 of Lemma 3.12).
        let tags = vec![0, 3, 7, 2, 7];
        let sigma = 7;
        let c = Configuration::new(generators::path(5), tags).unwrap();
        let inner = WaitThenTransmitFactory {
            wait: 0,
            msg: Msg(1),
            lifetime: 30,
        };
        let ex = Executor::run(
            &c,
            &PatientFactory::new(inner, sigma),
            RunOpts::default().traced(),
        )
        .unwrap();
        let trace = ex.trace.as_ref().unwrap();
        for e in &trace.events {
            if !e.transmitters.is_empty() {
                assert!(e.round > sigma, "transmission at round {} ≤ σ", e.round);
            }
        }
        // and every node woke spontaneously, at its own tag
        for v in 0..5u32 {
            assert!(ex.woke_spontaneously(v));
            assert_eq!(ex.wake_round[v as usize], c.tag(v));
        }
    }

    #[test]
    fn suffix_matches_inner_execution_when_tags_already_patient() {
        // With all tags equal to 0 and σ = 0, the wrapper is the identity:
        // the executions of D and patient(D) coincide exactly.
        let c = Configuration::new(generators::cycle(4), vec![0; 4]).unwrap();
        let inner = || WaitThenTransmitFactory {
            wait: 2,
            msg: Msg(5),
            lifetime: 9,
        };
        let plain = Executor::run(&c, &inner(), RunOpts::default()).unwrap();
        let wrapped =
            Executor::run(&c, &PatientFactory::new(inner(), 0), RunOpts::default()).unwrap();
        assert_eq!(plain.histories, wrapped.histories);
        assert_eq!(plain.done_round, wrapped.done_round);
    }

    #[test]
    fn shifted_execution_reproduces_inner_histories() {
        // Lemma 3.12 Claim 2(3): for every node w, the suffix of w's
        // patient history starting at s_w equals w's history under D.
        // Use a path with distinct tags so the inner run has real traffic.
        let tags = vec![1, 0, 2, 0];
        let sigma = 2u64;
        let c = Configuration::new(generators::path(4), tags).unwrap();
        let inner = || WaitThenTransmitFactory {
            wait: 1,
            msg: Msg(3),
            lifetime: 12,
        };

        let plain = Executor::run(&c, &inner(), RunOpts::default()).unwrap();
        let wrapped =
            Executor::run(&c, &PatientFactory::new(inner(), sigma), RunOpts::default()).unwrap();

        for v in 0..4u32 {
            let vh = wrapped.history(v);
            // s_w = wake-round difference: in the patient run node v woke at
            // tag(v); in the plain run at plain.wake_round[v]. Claim 2(2):
            // s_w = wake_plain - tag + σ.
            let s = (plain.wake_round[v as usize] + sigma - c.tag(v)) as usize;
            let inner_len = plain.history(v).len();
            assert!(vh.len() >= s + inner_len, "node {v}: suffix too short");
            // Compare modulo the boundary sanitation: a collision recorded
            // at H[s] corresponds to (∅) in the plain run (the node was
            // asleep under it) — exactly the erratum in the module docs.
            let mut suffix: Vec<Obs> = vh.as_slice()[s..s + inner_len].to_vec();
            if suffix[0].is_collision() {
                suffix[0] = Obs::Silence;
            }
            assert_eq!(
                &suffix,
                plain.history(v).as_slice(),
                "node {v}: suffix mismatch"
            );
        }
        // This particular workload exercises the boundary case: node 2's
        // neighbours both transmit exactly in node 2's tag round of the
        // plain run, so the patient history really records (∗) at s.
        let s2 = (plain.wake_round[2] + sigma - c.tag(2)) as usize;
        assert!(
            wrapped.history(2)[s2].is_collision(),
            "expected the erratum case to trigger"
        );
        assert!(plain.history(2)[0].is_silence());
    }

    #[test]
    fn boundary_collision_is_sanitized() {
        // Feed a PatientNode a history with a collision exactly at s = σ:
        // the inner DRIP must see (∅) as its wake-up entry, not (∗).
        let f = PatientFactory::new(
            PureFactory::new("probe", |h: HistoryView| {
                assert!(
                    !h[0].is_collision(),
                    "inner DRIP must never see a collision wake-up entry"
                );
                if h[0].is_silence() {
                    Action::Transmit(Msg(42))
                } else {
                    Action::Listen
                }
            }),
            2,
        );
        let mut node = f.spawn();
        let mut h = History::from_entries(vec![Obs::Silence]);
        assert_eq!(node.decide(h.view()), Action::Listen); // i=1 ≤ σ
        h.push(Obs::Silence);
        assert_eq!(node.decide(h.view()), Action::Listen); // i=2 = σ
        h.push(Obs::Collision); // H[2] = (∗) at the boundary s=σ=2
                                // i=3 > σ → s=2; inner round 1 sees sanitized (∅) → transmits
        assert_eq!(node.decide(h.view()), Action::Transmit(Msg(42)));
    }

    #[test]
    fn collision_before_first_message_is_skipped() {
        // A PatientNode that observes a collision before any message keeps
        // listening: collisions do not set rcv. Drive the node directly.
        let f = PatientFactory::new(
            PureFactory::new("immediate", |_h: HistoryView| Action::Transmit(Msg(9))),
            5,
        );
        let mut node = f.spawn();
        // rounds 1..: silence, collision, silence … no message
        let mut h = History::from_entries(vec![Obs::Silence]);
        assert_eq!(node.decide(h.view()), Action::Listen); // i=1 ≤ σ
        h.push(Obs::Collision);
        assert_eq!(node.decide(h.view()), Action::Listen); // i=2, collision ignored
        h.push(Obs::Silence);
        h.push(Obs::Silence);
        h.push(Obs::Silence);
        assert_eq!(node.decide(h.view()), Action::Listen); // i=5 = σ
        h.push(Obs::Silence);
        // i=6 > σ → s=5, inner round 1 → inner transmits immediately
        assert_eq!(node.decide(h.view()), Action::Transmit(Msg(9)));
    }

    #[test]
    fn early_message_starts_inner_at_rcv() {
        // message at local round 2 < σ=9 → s=2; inner sees H[2] = (M) as
        // its wake-up entry.
        let f = PatientFactory::new(
            PureFactory::new("probe", |h: HistoryView| {
                // inner: transmit iff its wake-up entry is a message
                if h[0].is_message() {
                    Action::Transmit(Msg(7))
                } else {
                    Action::Listen
                }
            }),
            9,
        );
        let mut node = f.spawn();
        let mut h = History::from_entries(vec![Obs::Silence]);
        assert_eq!(node.decide(h.view()), Action::Listen);
        h.push(Obs::Silence);
        assert_eq!(node.decide(h.view()), Action::Listen);
        h.push(Obs::Heard(Msg(1))); // local round 2 = rcv
                                    // i = 3 > s = 2 → inner round 1 with H'[0] = (M) → transmit
        assert_eq!(node.decide(h.view()), Action::Transmit(Msg(7)));
    }

    #[test]
    fn quiet_claim_covers_the_listening_window_then_delegates() {
        let f = PatientFactory::new(
            WaitThenTransmitFactory {
                wait: 2,
                msg: Msg(1),
                lifetime: 10,
            },
            6,
        );
        let mut node = f.spawn();
        // pre-window: committed through σ, handing round σ+1 to the inner
        let h = History::from_entries(vec![Obs::Silence]);
        assert_eq!(node.quiet_until(h.view()), Some(7));
        // an un-processed message voids the claim until decide runs
        let hm = History::from_entries(vec![Obs::Silence, Obs::Heard(Msg(3))]);
        assert_eq!(node.quiet_until(hm.view()), None);
        // drive the window to completion with silence: inner starts at
        // s = σ = 6; its wait=2 pins the transmit at inner round 3 = outer 9
        let mut h = History::from_entries(vec![Obs::Silence; 7]);
        assert_eq!(node.decide(h.view()), Action::Listen); // i=7 > σ: inner round 1
        h.push(Obs::Silence);
        assert_eq!(node.quiet_until(h.view()), Some(9), "inner 3 + s 6");
        assert_eq!(node.decide(h.view()), Action::Listen); // inner round 2
        h.push(Obs::Silence);
        assert_eq!(node.decide(h.view()), Action::Transmit(Msg(1))); // outer 9
        h.push(Obs::Silence);
        // right after the transmission the inner view still lags: no claim
        assert_eq!(node.quiet_until(h.view()), None);
        assert_eq!(node.decide(h.view()), Action::Listen); // inner round 4
        h.push(Obs::Silence);
        // post-transmission: quiet until inner termination (10 + s)
        assert_eq!(node.quiet_until(h.view()), Some(16));
    }

    #[test]
    fn factory_name_mentions_sigma_and_inner() {
        let f = PatientFactory::new(
            WaitThenTransmitFactory {
                wait: 0,
                msg: Msg(1),
                lifetime: 2,
            },
            4,
        );
        assert!(f.name().contains("σ=4"));
        assert!(f.name().contains("wait-then-transmit"));
    }
}
