//! A deliberately naive reference executor for differential testing.
//!
//! [`run_reference`] implements the radio model with no optimizations at
//! all: every global round it scans *every* node, recomputes its state
//! from first principles, and counts transmitting neighbours by walking
//! the adjacency list of every node. No active lists, no round-stamped
//! counters, no tag-sorted wake sweep, no observation arena — just the
//! model's definition, transcribed over plain per-node `Vec`s.
//!
//! Like the optimized engine it is generic over the channel semantics:
//! [`run_reference_model`] accepts any [`RadioModel`], and the two engines
//! must produce byte-identical executions under *every* model; the
//! property suite checks this across random configurations and protocols.
//! When the two engines disagree, the naive one is almost certainly right
//! — that is the point.

use radio_graph::{Configuration, NodeId};

use crate::drip::DripFactory;
use crate::engine::{ExecStats, Execution, RunOpts, SimError};
use crate::history::History;
use crate::model::{record_listener_obs, NoCollisionDetection, RadioModel};
use crate::msg::{Action, Msg};

/// Runs `factory`'s DRIP on `config` with the naive engine under the
/// paper's model. Options are honoured except `record_trace` (the
/// reference engine keeps no trace) and `leap` (the reference engine
/// executes every round one by one, always — it is the oracle the
/// time-leap scheduler is differenced against, so it must never leap).
pub fn run_reference(
    config: &Configuration,
    factory: &dyn DripFactory,
    opts: RunOpts,
) -> Result<Execution, SimError> {
    run_reference_model::<NoCollisionDetection>(config, factory, opts)
}

/// [`run_reference`] under an explicit channel model `M`.
pub fn run_reference_model<M: RadioModel>(
    config: &Configuration,
    factory: &dyn DripFactory,
    opts: RunOpts,
) -> Result<Execution, SimError> {
    let n = config.size();
    let graph = config.graph();

    #[derive(PartialEq)]
    enum State {
        Asleep,
        Awake,
        Done,
    }

    let mut nodes: Vec<Box<dyn crate::drip::DripNode>> = (0..n).map(|_| factory.spawn()).collect();
    let mut state: Vec<State> = (0..n).map(|_| State::Asleep).collect();
    let mut histories: Vec<History> = vec![History::new(); n];
    let mut wake: Vec<u64> = vec![u64::MAX; n];
    let mut done: Vec<u64> = vec![u64::MAX; n];
    let mut stats = ExecStats::default();
    let mut rounds = 0u64;

    let mut r = 0u64;
    loop {
        if state.iter().all(|s| *s == State::Done) {
            break;
        }
        if r >= opts.max_rounds {
            let still = state.iter().filter(|s| **s != State::Done).count();
            return Err(SimError::RoundLimit {
                max_rounds: opts.max_rounds,
                still_running: still,
            });
        }

        // 1. Every awake node that woke before this round decides.
        let mut actions: Vec<Option<Action>> = vec![None; n];
        for v in 0..n {
            if state[v] == State::Awake && wake[v] < r {
                actions[v] = Some(nodes[v].decide(histories[v].view()));
            }
        }

        // 2. Who transmits?
        let transmits: Vec<Option<Msg>> = actions
            .iter()
            .map(|a| match a {
                Some(Action::Transmit(m)) => Some(*m),
                _ => None,
            })
            .collect();
        stats.transmissions += transmits.iter().flatten().count() as u64;

        // 3. What does each node perceive? (Recomputed from scratch.)
        let perceive = |v: usize| -> (u32, Msg) {
            let mut count = 0u32;
            let mut msg = Msg(0);
            for &w in graph.neighbors(v as NodeId) {
                if let Some(m) = transmits[w as usize] {
                    count += 1;
                    msg = m;
                }
            }
            // Pin the model-hook contract (`RadioModel`): `msg` carries
            // content only for a clean single transmission. This keeps the
            // two engines bit-identical for any model, including ones that
            // (incorrectly) read `msg` outside `count == 1`.
            if count != 1 {
                msg = Msg(0);
            }
            (count, msg)
        };

        // 4. Deliver to awake actors, as the model dictates.
        for v in 0..n {
            match actions[v] {
                Some(Action::Transmit(_)) => histories[v].push(crate::msg::Obs::Silence),
                Some(Action::Listen) => {
                    let (count, msg) = perceive(v);
                    let obs = M::listener_obs(count, msg);
                    record_listener_obs(obs, &mut stats);
                    histories[v].push(obs);
                }
                Some(Action::Terminate) => {
                    state[v] = State::Done;
                    done[v] = r;
                }
                None => {}
            }
        }

        // 5. Wake-ups: forced first (the model decides what channel
        //    activity wakes a sleeper), then spontaneous at the tag round.
        for v in 0..n {
            if state[v] != State::Asleep {
                continue;
            }
            let (count, msg) = perceive(v);
            let forced = if count >= 1 {
                M::wake_obs(count, msg)
            } else {
                None
            };
            if let Some(obs) = forced {
                state[v] = State::Awake;
                wake[v] = r;
                histories[v].push(obs);
                stats.forced_wakeups += 1;
            } else if config.tag(v as NodeId) == r {
                state[v] = State::Awake;
                wake[v] = r;
                histories[v].push(crate::msg::Obs::Silence);
            }
        }

        rounds = r + 1;
        r += 1;
    }

    Ok(Execution {
        wake_round: wake,
        done_round: done,
        histories,
        rounds,
        // The reference engine never leaps: that is what makes it the
        // step-by-step oracle the leaping engine is differenced against.
        rounds_stepped: rounds,
        rounds_leapt: 0,
        stats,
        trace: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drip::{BeaconFactory, EchoFactory, SilentFactory, WaitThenTransmitFactory};
    use crate::engine::Executor;
    use crate::model::ModelKind;
    use crate::patient::PatientFactory;
    use radio_graph::generators;

    fn assert_engines_agree(config: &Configuration, factory: &dyn DripFactory) {
        for kind in ModelKind::ALL {
            let fast = kind.run(config, factory, RunOpts::default()).unwrap();
            let naive = kind
                .run_reference(config, factory, RunOpts::default())
                .unwrap();
            assert_eq!(
                fast.wake_round, naive.wake_round,
                "{config} [{kind}]: wake rounds"
            );
            assert_eq!(
                fast.done_round, naive.done_round,
                "{config} [{kind}]: done rounds"
            );
            assert_eq!(
                fast.histories, naive.histories,
                "{config} [{kind}]: histories"
            );
            assert_eq!(fast.rounds, naive.rounds, "{config} [{kind}]: round count");
            assert_eq!(fast.stats, naive.stats, "{config} [{kind}]: stats");
        }
    }

    #[test]
    fn engines_agree_on_fixed_scenarios() {
        let configs = vec![
            Configuration::new(generators::path(3), vec![0, 5, 5]).unwrap(),
            Configuration::new(generators::star(4), vec![0, 1, 1, 1]).unwrap(),
            Configuration::new(generators::star(3), vec![9, 0, 0]).unwrap(), // sleeping-collision case
            Configuration::with_uniform_tags(generators::cycle(5), 2).unwrap(),
            radio_graph::families::h_m(3),
            radio_graph::families::g_m(2),
        ];
        for config in &configs {
            assert_engines_agree(config, &SilentFactory { lifetime: 6 });
            assert_engines_agree(
                config,
                &WaitThenTransmitFactory {
                    wait: 0,
                    msg: Msg(4),
                    lifetime: 12,
                },
            );
            assert_engines_agree(
                config,
                &BeaconFactory {
                    start: 1,
                    lifetime: 5,
                    msg: Msg(2),
                },
            );
            assert_engines_agree(config, &EchoFactory { lifetime: 15 });
            assert_engines_agree(
                config,
                &PatientFactory::new(
                    WaitThenTransmitFactory {
                        wait: 1,
                        msg: Msg(3),
                        lifetime: 10,
                    },
                    config.span(),
                ),
            );
        }
    }

    #[test]
    fn engines_agree_on_round_limit_errors() {
        let config = Configuration::new(generators::path(2), vec![0, 0]).unwrap();
        let opts = RunOpts::with_max_rounds(5);
        let fast = Executor::run(&config, &SilentFactory { lifetime: 100 }, opts).unwrap_err();
        let naive = run_reference(&config, &SilentFactory { lifetime: 100 }, opts).unwrap_err();
        assert_eq!(fast, naive);
    }
}
