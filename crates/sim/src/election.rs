//! Leader election = DRIP + decision function (paper Section 2.3).
//!
//! A *dedicated leader election algorithm* for a configuration `G` is a pair
//! `(D, f)`: a DRIP `D` and a decision function `f` mapping each node's
//! final history `H[0..done]` to 0 or 1, such that exactly one node of `G`
//! maps to 1. [`run_election`] executes the pair and reports which nodes
//! declared themselves leader; the contract is validated by the caller via
//! [`ElectionOutcome::elected`].

use radio_graph::{Configuration, NodeId};

use crate::drip::DripFactory;
use crate::engine::{Execution, Executor, RunOpts, SimError};
use crate::history::History;
use crate::model::{NoCollisionDetection, RadioModel};

/// A leader-election algorithm: the DRIP and its decision function.
pub struct LeaderAlgorithm<'a> {
    /// The communication protocol.
    pub drip: &'a dyn DripFactory,
    /// The decision function `f`: final local history → leader?
    pub decide: &'a (dyn Fn(&History) -> bool + Sync),
}

/// The outcome of running a leader-election algorithm.
#[derive(Debug)]
pub struct ElectionOutcome {
    /// Nodes whose decision function returned 1.
    pub leaders: Vec<NodeId>,
    /// The underlying execution (histories, rounds, stats).
    pub execution: Execution,
}

impl ElectionOutcome {
    /// The elected leader, if the algorithm satisfied the exactly-one
    /// contract.
    pub fn elected(&self) -> Option<NodeId> {
        match self.leaders.as_slice() {
            [v] => Some(*v),
            _ => None,
        }
    }

    /// True iff exactly one node declared itself leader.
    pub fn is_valid(&self) -> bool {
        self.leaders.len() == 1
    }

    /// Global round by which every node had terminated — the algorithm's
    /// running time.
    pub fn completion_round(&self) -> u64 {
        self.execution.done_round.iter().copied().max().unwrap_or(0)
    }
}

/// Runs `(D, f)` on `config` under the paper's channel model.
pub fn run_election(
    config: &Configuration,
    algorithm: &LeaderAlgorithm<'_>,
    opts: RunOpts,
) -> Result<ElectionOutcome, SimError> {
    run_election_model::<NoCollisionDetection>(config, algorithm, opts)
}

/// [`run_election`] under a runtime-selected channel model.
pub fn run_election_under(
    model: crate::model::ModelKind,
    config: &Configuration,
    algorithm: &LeaderAlgorithm<'_>,
    opts: RunOpts,
) -> Result<ElectionOutcome, SimError> {
    run_election_in(
        &mut crate::workspace::SimWorkspace::new(),
        model,
        config,
        algorithm,
        opts,
    )
}

/// [`run_election_under`] through a caller-provided
/// [`SimWorkspace`](crate::SimWorkspace) — the batch layers run thousands
/// of elections per worker thread through one workspace, so the engine
/// state is recycled instead of reallocated per election.
pub fn run_election_in(
    workspace: &mut crate::workspace::SimWorkspace,
    model: crate::model::ModelKind,
    config: &Configuration,
    algorithm: &LeaderAlgorithm<'_>,
    opts: RunOpts,
) -> Result<ElectionOutcome, SimError> {
    let execution = workspace.run_kind(model, config, algorithm.drip, opts)?;
    let leaders = (0..config.size() as NodeId)
        .filter(|&v| (algorithm.decide)(execution.history(v)))
        .collect();
    Ok(ElectionOutcome { leaders, execution })
}

/// The outcome of a resident election ([`run_election_resident`]): the
/// leaders plus the run summary. Histories stay in the workspace arena —
/// nothing per-node is materialized, which is what lets 10⁶-node
/// elections run within a small multiple of the configuration footprint.
#[derive(Debug)]
pub struct ResidentOutcome {
    /// Nodes whose decision function returned 1.
    pub leaders: Vec<NodeId>,
    /// The run summary (rounds, completion, stats).
    pub run: crate::workspace::ResidentRun,
}

impl ResidentOutcome {
    /// The elected leader, if the algorithm satisfied the exactly-one
    /// contract.
    pub fn elected(&self) -> Option<NodeId> {
        match self.leaders.as_slice() {
            [v] => Some(*v),
            _ => None,
        }
    }
}

/// [`run_election_in`] without materializing the execution: runs the DRIP
/// resident in `workspace`, then applies the *view-based* decision
/// function straight over the observation arena. Bit-identical leaders to
/// the materializing path (the views read the very same entries the owned
/// histories would be cloned from), at none of the per-node clone cost.
pub fn run_election_resident(
    workspace: &mut crate::workspace::SimWorkspace,
    model: crate::model::ModelKind,
    config: &Configuration,
    drip: &dyn DripFactory,
    decide: &(dyn Fn(crate::history::HistoryView<'_>) -> bool + Sync),
    opts: RunOpts,
) -> Result<ResidentOutcome, SimError> {
    let run = workspace.run_kind_resident(model, config, drip, opts)?;
    let leaders = if opts.len_only_histories {
        // Length-only run: history content was never stored, so the
        // decision must come from the DRIPs themselves — each node folded
        // its observations as they landed and resolved a leader verdict at
        // termination (see `DripNode::leader_claim`).
        (0..config.size() as NodeId)
            .filter(|&v| workspace.leader_claim(v) == Some(true))
            .collect()
    } else {
        (0..config.size() as NodeId)
            .filter(|&v| decide(workspace.history_view(v)))
            .collect()
    };
    Ok(ResidentOutcome { leaders, run })
}

/// [`run_election`] under an explicit channel model `M`.
pub fn run_election_model<M: RadioModel>(
    config: &Configuration,
    algorithm: &LeaderAlgorithm<'_>,
    opts: RunOpts,
) -> Result<ElectionOutcome, SimError> {
    let execution = Executor::run_model::<M>(config, algorithm.drip, opts)?;
    let leaders = (0..config.size() as NodeId)
        .filter(|&v| (algorithm.decide)(execution.history(v)))
        .collect();
    Ok(ElectionOutcome { leaders, execution })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drip::WaitThenTransmitFactory;
    use crate::msg::Msg;
    use radio_graph::generators;

    #[test]
    fn election_by_forced_wakeup_history() {
        // Path 0-1 with tags 0, 5: node 0 transmits at global 1, waking
        // node 1. Decide: leader iff your history starts with a message
        // (i.e. you were woken). Exactly node 1 qualifies.
        let c = Configuration::new(generators::path(2), vec![0, 5]).unwrap();
        let drip = WaitThenTransmitFactory {
            wait: 0,
            msg: Msg(1),
            lifetime: 10,
        };
        let algo = LeaderAlgorithm {
            drip: &drip,
            decide: &|h: &History| h[0].is_message(),
        };
        let out = run_election(&c, &algo, RunOpts::default()).unwrap();
        assert_eq!(out.leaders, vec![1]);
        assert_eq!(out.elected(), Some(1));
        assert!(out.is_valid());
        assert_eq!(out.completion_round(), 11); // node 1 woke at 1, done at local 10
    }

    #[test]
    fn symmetric_history_elects_nobody_or_everybody() {
        // Uniform tags on a cycle: all histories identical, so any f maps
        // all nodes to the same bit → never exactly one leader.
        let c = Configuration::new(generators::cycle(4), vec![2; 4]).unwrap();
        let drip = WaitThenTransmitFactory {
            wait: 0,
            msg: Msg(1),
            lifetime: 6,
        };
        let all = LeaderAlgorithm {
            drip: &drip,
            decide: &|_h: &History| true,
        };
        let out = run_election(&c, &all, RunOpts::default()).unwrap();
        assert_eq!(out.leaders.len(), 4);
        assert!(!out.is_valid());
        assert_eq!(out.elected(), None);
        let none = LeaderAlgorithm {
            drip: &drip,
            decide: &|_h: &History| false,
        };
        let out = run_election(&c, &none, RunOpts::default()).unwrap();
        assert!(out.leaders.is_empty());
        assert!(!out.is_valid());
    }
}
