//! Pluggable channel semantics — the `RadioModel` layer.
//!
//! The paper proves its results for one fixed channel: synchronous rounds,
//! forced wake-up on a clean single message, collision noise audible to
//! awake listeners but inert for sleepers. The neighbouring literature
//! (Gorain–Miller–Pelc's *Four Shades*, Kowalski–Mosteiro) varies exactly
//! these rules, so the engines are generic over a [`RadioModel`]: the
//! *only* two decisions a channel makes each round are
//!
//! 1. what an **awake listener** with `k` transmitting neighbours
//!    perceives ([`RadioModel::listener_obs`]), and
//! 2. whether a **sleeping node** with `k ≥ 1` transmitting neighbours is
//!    woken, and with what wake-up entry `H[0]`
//!    ([`RadioModel::wake_obs`]).
//!
//! Three models ship:
//!
//! | model | listener (k = 0 / 1 / ≥2) | sleeper (k = 1 / ≥2) |
//! |---|---|---|
//! | [`NoCollisionDetection`] | `(∅)` / `(M)` / `(∗)` | wakes `(M)` / stays asleep |
//! | [`CollisionDetection`]   | `(∅)` / `(M)` / `(∗)` | wakes `(M)` / wakes `(~)` |
//! | [`Beeping`]              | `(∅)` / `(~)` / `(~)` | wakes `(~)` / wakes `(~)` |
//!
//! [`NoCollisionDetection`] is the paper's model and the default: its rules
//! are bit-for-bit the ones the original engine hard-coded ("collisions do
//! not wake sleeping nodes — noise is not a message"). The name follows the
//! literature's axis: the *radio hardware* of a sleeping node cannot detect
//! collision energy. [`CollisionDetection`] upgrades the hardware: noise is
//! detectable even while asleep, and wakes the node with the new
//! [`Obs::Noise`] entry — carrier sensed, nothing decodable, distinct from
//! both silence and an in-protocol collision observation. [`Beeping`] is
//! the carrier-sense-only model: messages have no payload at all; any
//! transmission is heard as the same beep, one transmitter or many.
//!
//! Models are zero-sized: the engines monomorphize over them, so the
//! default model pays nothing for the indirection. For runtime selection
//! (CLI flags, sweep tables) use [`ModelKind`].

use crate::msg::{Msg, Obs};

/// Channel semantics: what listeners hear and what wakes sleepers.
///
/// Implementations must be pure — the same `(count, msg)` always yields
/// the same observation — or the engines' determinism guarantee breaks.
pub trait RadioModel: Copy + Clone + Default + Send + Sync + 'static {
    /// Human-readable model name (CLI values, sweep tables).
    const NAME: &'static str;

    /// What an awake listener with `count` transmitting neighbours
    /// perceives. `msg` is the message of the unique transmitter when
    /// `count == 1` and `Msg(0)` otherwise — both engines pin this, so a
    /// model can never decode content out of silence or a collision.
    fn listener_obs(count: u32, msg: Msg) -> Obs;

    /// Whether a sleeping node with `count ≥ 1` transmitting neighbours
    /// wakes this round, and with what `H[0]` entry. `None` = stays
    /// asleep. Never called with `count == 0`; `msg` is the unique
    /// transmitter's message when `count == 1` and `Msg(0)` otherwise.
    fn wake_obs(count: u32, msg: Msg) -> Option<Obs>;
}

/// The paper's channel (SPAA 2020, Sections 1.1/2.2) — the default.
///
/// Awake listeners distinguish silence, a clean message, and collision
/// noise; a sleeping node's radio detects nothing but a clean message, so
/// only `count == 1` forces a wake-up.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoCollisionDetection;

impl RadioModel for NoCollisionDetection {
    const NAME: &'static str = "no-collision-detection";

    #[inline]
    fn listener_obs(count: u32, msg: Msg) -> Obs {
        match count {
            0 => Obs::Silence,
            1 => Obs::Heard(msg),
            _ => Obs::Collision,
        }
    }

    #[inline]
    fn wake_obs(count: u32, msg: Msg) -> Option<Obs> {
        (count == 1).then_some(Obs::Heard(msg))
    }
}

/// Full collision detection: collision energy is detectable even by a
/// sleeping radio.
///
/// Listeners behave as in [`NoCollisionDetection`]; a sleeping node under
/// two or more simultaneous transmitters is woken by the noise, recording
/// [`Obs::Noise`] as its wake-up entry (it sensed a carrier but decoded
/// nothing — unlike a forced `(M)` wake-up it learns no message, and
/// unlike `(∅)` it knows the channel was busy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollisionDetection;

impl RadioModel for CollisionDetection {
    const NAME: &'static str = "collision-detection";

    #[inline]
    fn listener_obs(count: u32, msg: Msg) -> Obs {
        match count {
            0 => Obs::Silence,
            1 => Obs::Heard(msg),
            _ => Obs::Collision,
        }
    }

    #[inline]
    fn wake_obs(count: u32, msg: Msg) -> Option<Obs> {
        match count {
            0 => None,
            1 => Some(Obs::Heard(msg)),
            _ => Some(Obs::Noise),
        }
    }
}

/// The beeping model: carrier sense only.
///
/// Transmissions carry no payload — any number of simultaneous
/// transmitters sounds like the same beep ([`Obs::Noise`]), to listeners
/// and sleepers alike. Message content never reaches a history, which is
/// the communication-starved regime the Kowalski–Mosteiro cost analyses
/// live in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Beeping;

impl RadioModel for Beeping {
    const NAME: &'static str = "beeping";

    #[inline]
    fn listener_obs(count: u32, _msg: Msg) -> Obs {
        if count == 0 {
            Obs::Silence
        } else {
            Obs::Noise
        }
    }

    #[inline]
    fn wake_obs(count: u32, _msg: Msg) -> Option<Obs> {
        debug_assert!(count >= 1);
        Some(Obs::Noise)
    }
}

/// Runtime-selectable model identifier, for CLI flags and sweep tables.
///
/// The engines themselves are monomorphized ([`RadioModel`]); `ModelKind`
/// is the bridge from run-time choice to the three compiled variants via
/// [`ModelKind::run`] and [`ModelKind::run_reference`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ModelKind {
    /// [`NoCollisionDetection`] — the paper's model.
    #[default]
    NoCollisionDetection,
    /// [`CollisionDetection`].
    CollisionDetection,
    /// [`Beeping`].
    Beeping,
}

impl ModelKind {
    /// All models, in declaration order (sweep axes iterate this).
    pub const ALL: [ModelKind; 3] = [
        ModelKind::NoCollisionDetection,
        ModelKind::CollisionDetection,
        ModelKind::Beeping,
    ];

    /// The model's canonical name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::NoCollisionDetection => NoCollisionDetection::NAME,
            ModelKind::CollisionDetection => CollisionDetection::NAME,
            ModelKind::Beeping => Beeping::NAME,
        }
    }

    /// Runs the optimized engine under this model (see
    /// [`Executor::run_model`](crate::Executor::run_model)).
    pub fn run(
        self,
        config: &radio_graph::Configuration,
        factory: &dyn crate::drip::DripFactory,
        opts: crate::engine::RunOpts,
    ) -> Result<crate::engine::Execution, crate::engine::SimError> {
        match self {
            ModelKind::NoCollisionDetection => {
                crate::engine::Executor::run_model::<NoCollisionDetection>(config, factory, opts)
            }
            ModelKind::CollisionDetection => {
                crate::engine::Executor::run_model::<CollisionDetection>(config, factory, opts)
            }
            ModelKind::Beeping => {
                crate::engine::Executor::run_model::<Beeping>(config, factory, opts)
            }
        }
    }

    /// Runs the naive reference engine under this model (see
    /// [`run_reference_model`](crate::engine_ref::run_reference_model)).
    pub fn run_reference(
        self,
        config: &radio_graph::Configuration,
        factory: &dyn crate::drip::DripFactory,
        opts: crate::engine::RunOpts,
    ) -> Result<crate::engine::Execution, crate::engine::SimError> {
        match self {
            ModelKind::NoCollisionDetection => crate::engine_ref::run_reference_model::<
                NoCollisionDetection,
            >(config, factory, opts),
            ModelKind::CollisionDetection => {
                crate::engine_ref::run_reference_model::<CollisionDetection>(config, factory, opts)
            }
            ModelKind::Beeping => {
                crate::engine_ref::run_reference_model::<Beeping>(config, factory, opts)
            }
        }
    }
}

impl std::str::FromStr for ModelKind {
    type Err = String;

    fn from_str(s: &str) -> Result<ModelKind, String> {
        match s {
            "no-cd" | "nocd" | "no-collision-detection" | "default" => {
                Ok(ModelKind::NoCollisionDetection)
            }
            "cd" | "collision-detection" => Ok(ModelKind::CollisionDetection),
            "beep" | "beeping" => Ok(ModelKind::Beeping),
            other => Err(format!(
                "unknown radio model `{other}` (expected no-cd, cd, or beep)"
            )),
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Folds a listener observation into the aggregate counters. Shared by the
/// optimized and reference engines so their statistics cannot diverge.
#[inline]
pub(crate) fn record_listener_obs(obs: Obs, stats: &mut crate::engine::ExecStats) {
    match obs {
        Obs::Silence => {}
        Obs::Heard(_) => stats.messages_received += 1,
        Obs::Collision | Obs::Noise => stats.collisions_observed += 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_the_papers() {
        assert_eq!(
            NoCollisionDetection::listener_obs(1, Msg(7)),
            Obs::Heard(Msg(7))
        );
        assert_eq!(NoCollisionDetection::listener_obs(0, Msg(7)), Obs::Silence);
        assert_eq!(
            NoCollisionDetection::listener_obs(3, Msg(7)),
            Obs::Collision
        );
        assert_eq!(
            NoCollisionDetection::wake_obs(1, Msg(7)),
            Some(Obs::Heard(Msg(7)))
        );
        assert_eq!(NoCollisionDetection::wake_obs(2, Msg(7)), None);
    }

    #[test]
    fn collision_detection_wakes_on_noise() {
        assert_eq!(CollisionDetection::wake_obs(2, Msg(1)), Some(Obs::Noise));
        assert_eq!(
            CollisionDetection::wake_obs(1, Msg(1)),
            Some(Obs::Heard(Msg(1)))
        );
        // listeners are unchanged from the default model
        assert_eq!(CollisionDetection::listener_obs(2, Msg(1)), Obs::Collision);
    }

    #[test]
    fn beeping_erases_content() {
        assert_eq!(Beeping::listener_obs(1, Msg(9)), Obs::Noise);
        assert_eq!(Beeping::listener_obs(5, Msg(9)), Obs::Noise);
        assert_eq!(Beeping::listener_obs(0, Msg(9)), Obs::Silence);
        assert_eq!(Beeping::wake_obs(1, Msg(9)), Some(Obs::Noise));
    }

    #[test]
    fn kind_round_trips_names() {
        for kind in ModelKind::ALL {
            let parsed: ModelKind = kind.name().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("frequency-hopping".parse::<ModelKind>().is_err());
        assert_eq!(ModelKind::default(), ModelKind::NoCollisionDetection);
    }
}
