//! Parallel batch execution over `std::thread::scope`, with worker-scoped
//! state.
//!
//! The sweeps in `radio-bench` run thousands — campaigns, millions — of
//! independent simulations. [`par_map_init`] distributes them over the
//! machine's cores with dynamic work-stealing, which handles the highly
//! skewed per-item costs of configuration sweeps (an `H_4096` run is
//! ~1000× an `H_4` run) far better than static chunking, and gives every
//! worker thread one long-lived piece of state built by an `init` closure
//! — in the batch layers that state is a [`SimWorkspace`], so back-to-back
//! runs on a worker recycle all engine buffers instead of reallocating
//! them per item.
//!
//! Results are written without contention: the output buffer is pre-split
//! into fixed-size chunks, the shared atomic cursor hands out *chunks*
//! (not items), and the worker that claims a chunk takes its mutex exactly
//! once and writes every slot directly. No lock is ever contended (each
//! chunk has exactly one owner), unlike the original per-item
//! `Mutex<Option<R>>` slots, which paid a lock round-trip per item
//! ([`par_map_mutex_baseline`] preserves that implementation as the
//! regression baseline for the batch Criterion bench).
//!
//! `std::thread::scope` + `std::sync::Mutex` keep this dependency-free and
//! data-race-free; the scope guarantees all borrows end before the
//! function returns, and panics in workers propagate.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::workspace::SimWorkspace;

/// Applies `f` to every item, in parallel, preserving order of results.
///
/// `f` runs on `min(available_parallelism, items.len())` worker threads.
/// Panics in `f` propagate (the scope unwinds). A shim over
/// [`par_map_init`] with unit worker state.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with_threads(items, default_threads(), f)
}

/// [`par_map`] with an explicit worker count (≥ 1). Used by the scaling
/// experiment (E10) to measure speedup curves. A shim over
/// [`par_map_init`] with unit worker state.
pub fn par_map_with_threads<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_init(items, threads, || (), move |_, item| f(item))
}

/// Worker-scoped parallel map: every worker thread builds one `state` via
/// `init()` and reuses it for all items it processes.
///
/// Items are handed out dynamically in contiguous chunks via a shared
/// atomic cursor; each chunk's result slots are written directly by its
/// single owner (one uncontended lock per chunk). Order of results is
/// preserved. The worker count is clamped to `min(threads, items.len())`
/// (never more threads than items — and no threads at all for an empty
/// slice, which returns immediately).
///
/// This is the substrate of the campaign runner: `init` builds a
/// [`SimWorkspace`] per worker, so a shard of ten thousand elections
/// allocates engine state once per *worker*, not once per run.
pub fn par_map_init<T, R, S, I, F>(items: &[T], threads: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }

    let chunk = chunk_size(n, threads);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let slots: Vec<Mutex<&mut [Option<R>]>> = out.chunks_mut(chunk).map(Mutex::new).collect();
    let n_chunks = slots.len();
    let workers = threads.min(n_chunks);
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let c = cursor.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    let base = c * chunk;
                    // Exactly one worker ever claims chunk `c`: the lock is
                    // taken once and never contended.
                    let mut guard = slots[c].lock().expect("no poisoned chunk");
                    for (j, slot) in guard.iter_mut().enumerate() {
                        *slot = Some(f(&mut state, &items[base + j]));
                    }
                }
            });
        }
    });

    drop(slots);
    out.into_iter()
        .map(|slot| slot.expect("every slot filled"))
        .collect()
}

/// Picks the chunk size [`par_map_init`] hands out per cursor claim.
///
/// Two regimes meet here. For large batches, `n / (threads * 8)` keeps
/// several chunks per worker so skewed item costs still balance, while
/// the cap bounds the tail a slow worker can strand. For *small* batches
/// (`n` up to a few multiples of `threads`), that quotient collapses to
/// 0 and the old `clamp(1, …)` floor degraded to chunk = 1 — every item
/// a separate cursor claim and a separate lock round-trip, the atomic
/// thrashing worst case, precisely on the tiny-grid workloads where
/// per-item cost is also lowest. The floor now grows toward an even
/// one-chunk-per-worker split (capped at 8 so a handful of expensive
/// items cannot all land in one claim): with 8 threads, n = 64 yields
/// chunk 8 (one claim per worker) instead of 64 separate claims, n = 9
/// yields 2, and n ≥ 65_536 is unchanged by the floor.
fn chunk_size(n: usize, threads: usize) -> usize {
    let balanced = n / (threads * 8);
    let even = n.div_ceil(threads);
    balanced.max(even.min(8)).clamp(1, 1024)
}

/// The pre-refactor implementation — dynamic per-item cursor with one
/// `Mutex<Option<R>>` slot per item — retained verbatim as the baseline
/// the batch Criterion bench (`benches/batch.rs`) compares the
/// chunked lock-free path against. Not for new code.
pub fn par_map_mutex_baseline<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return items.iter().map(&f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock().expect("no poisoned slot") = Some(r);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no poisoned slot")
                .expect("every slot filled")
        })
        .collect()
}

/// The worker count [`par_map`] uses: `available_parallelism`, or 1 if the
/// platform cannot report it.
pub fn default_threads() -> usize {
    // lint:allow(thread-identity): worker-*count* selection only — results are
    // geometry-invariant by contract (identical across any thread/shard split;
    // pinned by tests/campaign.rs and the par_map unit tests)
    std::thread::available_parallelism()
        .map(|nz| nz.get())
        .unwrap_or(1)
}

/// Runs one DRIP over a batch of configurations in parallel, under the
/// given channel model — the entry point sweep harnesses use to cross a
/// workload axis with a [`ModelKind`](crate::ModelKind) axis. Each worker
/// thread owns one long-lived [`SimWorkspace`], recycled across its runs.
pub fn run_batch(
    configs: &[radio_graph::Configuration],
    factory: &(dyn crate::drip::DripFactory + Sync),
    model: crate::model::ModelKind,
    opts: crate::engine::RunOpts,
) -> Vec<Result<crate::engine::Execution, crate::engine::SimError>> {
    par_map_init(
        configs,
        default_threads(),
        SimWorkspace::new,
        |ws, config| ws.run_kind(model, config, factory, opts),
    )
}

/// [`run_batch`] through the fused batch engine: configurations are split
/// into contiguous batches of `batch_size`, each worker thread owns one
/// long-lived [`BatchWorkspace`](crate::BatchWorkspace), and every batch
/// runs as one fused engine pass. Results are identical to [`run_batch`]
/// bit for bit (the batch engine's contract); only the schedule changes.
pub fn run_batch_fused(
    configs: &[radio_graph::Configuration],
    factory: &(dyn crate::drip::DripFactory + Sync),
    model: crate::model::ModelKind,
    opts: crate::engine::RunOpts,
    batch_size: usize,
) -> Vec<Result<crate::engine::Execution, crate::engine::SimError>> {
    let batches: Vec<&[radio_graph::Configuration]> = configs.chunks(batch_size.max(1)).collect();
    par_map_init(
        &batches,
        default_threads(),
        crate::batch::BatchWorkspace::new,
        |ws, batch| {
            let runs: Vec<crate::batch::BatchRun<'_>> = batch
                .iter()
                .map(|config| crate::batch::BatchRun { config, factory })
                .collect();
            ws.run_kind(model, &runs, opts)
        },
    )
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_map() {
        let items: Vec<u64> = (0..500).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        let parallel = par_map(&items, |x| x * x + 1);
        assert_eq!(parallel, serial);
        let baseline = par_map_mutex_baseline(&items, 4, |x| x * x + 1);
        assert_eq!(baseline, serial);
    }

    #[test]
    fn preserves_order_with_skewed_costs() {
        // items with wildly different costs must still land in order
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |&x| {
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u8> = par_map(&[] as &[u8], |x| *x);
        assert!(out.is_empty());
        let out: Vec<u8> = par_map_init(&[] as &[u8], 8, || (), |_, x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_and_single_thread() {
        assert_eq!(par_map(&[41], |x| x + 1), vec![42]);
        assert_eq!(
            par_map_with_threads(&[1, 2, 3], 1, |x| x * 2),
            vec![2, 4, 6]
        );
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let items: Vec<u32> = (0..100).collect();
        let expect: Vec<u32> = items.iter().map(|x| x + 7).collect();
        for threads in [1, 2, 3, 8, 200] {
            assert_eq!(par_map_with_threads(&items, threads, |x| x + 7), expect);
        }
    }

    #[test]
    fn worker_clamp_never_exceeds_items() {
        // n = 1, n = threads − 1, and thread counts far above n: the clamp
        // must keep results correct (and the scoped spawn path bounded by
        // the item count) in every case.
        let threads = 8usize;
        for n in [1usize, threads - 1, threads, threads + 1, 3] {
            let items: Vec<usize> = (0..n).collect();
            let expect: Vec<usize> = items.iter().map(|x| x * 3).collect();
            assert_eq!(
                par_map_with_threads(&items, threads, |x| x * 3),
                expect,
                "n={n} threads={threads}"
            );
            assert_eq!(
                par_map_init(&items, threads, || (), |_, x| x * 3),
                expect,
                "init path n={n} threads={threads}"
            );
        }
    }

    #[test]
    fn chunk_size_covers_both_regimes() {
        // Tiny batches: an even one-chunk-per-worker split, not chunk = 1.
        assert_eq!(chunk_size(1, 8), 1);
        assert_eq!(chunk_size(7, 8), 1); // n = threads − 1: still 1 item/worker
        assert_eq!(chunk_size(9, 8), 2);
        assert_eq!(chunk_size(64, 8), 8); // exactly one claim per worker
        assert_eq!(chunk_size(100, 8), 8); // floor caps at 8 for balance
                                           // Large batches: the balanced quotient, unchanged by the floor.
        assert_eq!(chunk_size(10_000, 8), 156);
        assert_eq!(chunk_size(1 << 20, 8), 1024); // cap
                                                  // Every chunk size stays within bounds across a sweep.
        for n in 1..300 {
            for threads in 1..16 {
                let c = chunk_size(n, threads);
                assert!((1..=1024).contains(&c), "n={n} threads={threads} c={c}");
            }
        }
    }

    #[test]
    fn run_batch_fused_matches_run_batch() {
        use crate::drip::WaitThenTransmitFactory;
        use radio_graph::{generators, Configuration};
        let configs: Vec<Configuration> = (2..12)
            .map(|n| {
                let tags: Vec<u64> = (0..n as u64).map(|v| v % 5).collect();
                Configuration::new(generators::star(n), tags).unwrap()
            })
            .collect();
        let factory = WaitThenTransmitFactory {
            wait: 1,
            msg: crate::Msg(3),
            lifetime: 8,
        };
        let opts = crate::engine::RunOpts::default();
        for model in crate::model::ModelKind::ALL {
            let plain = run_batch(&configs, &factory, model, opts);
            // batch sizes straddling the item count, including a ragged tail
            for batch_size in [1, 3, 4, 100] {
                let fused = run_batch_fused(&configs, &factory, model, opts, batch_size);
                assert_eq!(fused.len(), plain.len());
                for (a, b) in plain.iter().zip(&fused) {
                    let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                    assert_eq!(a.histories, b.histories, "{model:?} bs={batch_size}");
                    assert_eq!(a.rounds_stepped, b.rounds_stepped);
                    assert_eq!(a.rounds_leapt, b.rounds_leapt);
                }
            }
        }
    }

    #[test]
    fn init_builds_one_state_per_worker() {
        use std::sync::atomic::AtomicUsize;
        let inits = AtomicUsize::new(0);
        let items: Vec<u64> = (0..200).collect();
        let threads = 4usize;
        let out = par_map_init(
            &items,
            threads,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u64 // per-worker accumulator: state is genuinely mutable
            },
            |acc, &x| {
                *acc += 1;
                x + 1
            },
        );
        assert_eq!(out, (1..=200).collect::<Vec<u64>>());
        let built = inits.load(Ordering::Relaxed);
        assert!(
            built <= threads,
            "at most one state per worker (got {built})"
        );
        assert!(built >= 1);
    }

    #[test]
    fn workspace_state_reuses_across_items() {
        use crate::drip::SilentFactory;
        use radio_graph::{generators, Configuration};
        let configs: Vec<Configuration> = (2..10)
            .map(|n| Configuration::new(generators::path(n), (0..n as u64).collect()).unwrap())
            .collect();
        let factory = SilentFactory { lifetime: 4 };
        let results = run_batch(
            &configs,
            &factory,
            crate::model::ModelKind::default(),
            crate::engine::RunOpts::default(),
        );
        for (config, result) in configs.iter().zip(&results) {
            let fresh =
                crate::Executor::run(config, &factory, crate::engine::RunOpts::default()).unwrap();
            let batched = result.as_ref().unwrap();
            assert_eq!(batched.histories, fresh.histories);
            assert_eq!(batched.rounds, fresh.rounds);
        }
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let items = vec![1, 2, 3];
        let _ = par_map_with_threads(&items, 2, |&x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }
}
