//! Parallel batch execution over `std::thread::scope`.
//!
//! The sweeps in `radio-bench` run thousands of independent simulations;
//! [`par_map`] distributes them over the machine's cores with dynamic
//! work-stealing (a shared atomic cursor), which handles the highly skewed
//! per-item costs of configuration sweeps (an `H_4096` run is ~1000× an
//! `H_4` run) far better than static chunking.
//!
//! `std::thread::scope` + `std::sync::Mutex` keep this dependency-free and
//! data-race-free: items are handed out by index, results are written into
//! pre-allocated slots, and the scope guarantees all borrows end before
//! `par_map` returns.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item, in parallel, preserving order of results.
///
/// `f` runs on `min(available_parallelism, items.len())` worker threads.
/// Panics in `f` propagate (the scope unwinds).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with_threads(items, default_threads(), f)
}

/// [`par_map`] with an explicit worker count (≥ 1). Used by the scaling
/// experiment (E10) to measure speedup curves.
pub fn par_map_with_threads<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return items.iter().map(&f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock().expect("no poisoned slot") = Some(r);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no poisoned slot")
                .expect("every slot filled")
        })
        .collect()
}

/// The worker count [`par_map`] uses: `available_parallelism`, or 1 if the
/// platform cannot report it.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|nz| nz.get())
        .unwrap_or(1)
}

/// Runs one DRIP over a batch of configurations in parallel, under the
/// given channel model — the entry point sweep harnesses use to cross a
/// workload axis with a [`ModelKind`](crate::ModelKind) axis.
pub fn run_batch(
    configs: &[radio_graph::Configuration],
    factory: &(dyn crate::drip::DripFactory + Sync),
    model: crate::model::ModelKind,
    opts: crate::engine::RunOpts,
) -> Vec<Result<crate::engine::Execution, crate::engine::SimError>> {
    par_map(configs, |config| model.run(config, factory, opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_map() {
        let items: Vec<u64> = (0..500).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        let parallel = par_map(&items, |x| x * x + 1);
        assert_eq!(parallel, serial);
    }

    #[test]
    fn preserves_order_with_skewed_costs() {
        // items with wildly different costs must still land in order
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(&items, |&x| {
            let mut acc = 0u64;
            for i in 0..(x * 1000) {
                acc = acc.wrapping_add(i);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(*x, i as u64);
        }
    }

    #[test]
    fn empty_input() {
        let out: Vec<u8> = par_map(&[] as &[u8], |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_and_single_thread() {
        assert_eq!(par_map(&[41], |x| x + 1), vec![42]);
        assert_eq!(
            par_map_with_threads(&[1, 2, 3], 1, |x| x * 2),
            vec![2, 4, 6]
        );
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let items: Vec<u32> = (0..100).collect();
        let expect: Vec<u32> = items.iter().map(|x| x + 7).collect();
        for threads in [1, 2, 3, 8, 200] {
            assert_eq!(par_map_with_threads(&items, threads, |x| x + 7), expect);
        }
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let items = vec![1, 2, 3];
        let _ = par_map_with_threads(&items, 2, |&x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }
}
