//! Deterministic synchronous radio-network simulator with collision
//! detection — the execution substrate for the SPAA 2020 model.
//!
//! # The model (paper Sections 1.1 and 2.2)
//!
//! Nodes of a connected graph communicate in synchronous rounds. In each
//! round an awake node either **transmits** a message to all neighbours or
//! **listens**. A listener hears
//!
//! * the message, if *exactly one* neighbour transmits ([`Obs::Heard`]),
//! * noise, if two or more neighbours transmit ([`Obs::Collision`]),
//! * silence otherwise ([`Obs::Silence`]).
//!
//! A transmitter hears nothing in its own round (recorded as silence, the
//! paper's `(∅)`). A node wakes **spontaneously** in the global round equal
//! to its wake-up tag, or earlier (**forced**) in any round where it would
//! hear a message; its local clock reads 0 in the wake-up round and it acts
//! from local round 1 on. All nodes run the same deterministic algorithm —
//! a **DRIP** — whose action in local round `i` is a function of the local
//! history `H[0..i-1]` only.
//!
//! # Model ambiguities pinned by this implementation
//!
//! The paper leaves three corner cases implicit; this crate resolves them as
//! follows (each choice is enforced by a unit test in [`engine`]):
//!
//! 1. **Collisions do not wake sleeping nodes** — forced wake-up requires
//!    *receiving a message*, and noise is not a message. (Lemma 4.2's proof
//!    depends on this reading.)
//! 2. **A message arriving in the node's own tag round** still produces a
//!    forced-style first history entry `H[0] = (M)`.
//! 3. **Termination appends nothing**: a node's recorded history ends with
//!    the last round before it decided `terminate`.
//!
//! # Pluggable channel models
//!
//! The rules above are the *default* channel — the paper's. They live in
//! the [`model`] layer: both engines are generic over a
//! [`RadioModel`](model::RadioModel), and two alternative channels ship
//! alongside the default ([`model::CollisionDetection`],
//! [`model::Beeping`]). Everything documented here about collision
//! semantics and forced wake-ups is the contract of the default
//! [`model::NoCollisionDetection`] specifically.
//!
//! # Crate layout
//!
//! * [`msg`] — messages, observations, actions.
//! * [`history`] — per-node local histories (owned + borrowed views).
//! * [`drip`] — the DRIP traits plus a library of simple DRIPs.
//! * [`model`] — pluggable channel semantics (the `RadioModel` layer).
//! * [`engine`] — the executor (arena-backed hot loop; event-driven
//!   time-leap over provably quiet stretches).
//! * [`election`] — leader-election runner (DRIP + decision function).
//! * [`patient`] — the patient-DRIP transform of Lemma 3.12.
//! * [`trace`] — optional round-by-round event recording.
//! * [`workspace`] — reusable per-run engine state ([`SimWorkspace`]);
//!   the run loop itself lives here, recycled across back-to-back runs.
//! * [`batch`] — cross-run batched execution ([`BatchWorkspace`]): B
//!   member runs through one fused hot loop, bit-identical to the
//!   sequential workspace.
//! * [`parallel`] — scoped-thread parallel batch execution with
//!   worker-scoped state (one long-lived workspace per worker).
//!
//! # Example
//!
//! Run a tiny protocol — every node transmits once in its first local
//! round — on a 3-node path where node 0 wakes first:
//!
//! ```
//! use radio_graph::{generators, Configuration};
//! use radio_sim::drip::WaitThenTransmitFactory;
//! use radio_sim::{Executor, Msg, RunOpts};
//!
//! let config = Configuration::new(generators::path(3), vec![0, 5, 5]).unwrap();
//! let drip = WaitThenTransmitFactory { wait: 0, msg: Msg(7), lifetime: 10 };
//! let execution = Executor::run(&config, &drip, RunOpts::default()).unwrap();
//!
//! // node 0 transmits in global round 1, force-waking node 1 (its tag 5
//! // never fires); node 1's relay wakes node 2 a round later.
//! assert_eq!(execution.wake_round, vec![0, 1, 2]);
//! assert!(execution.history(1)[0].is_message());
//! assert_eq!(execution.stats.forced_wakeups, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod drip;
pub mod election;
pub mod engine;
pub mod engine_ref;
pub mod history;
pub mod model;
pub mod msg;
pub mod parallel;
pub mod patient;
pub mod trace;
pub mod workspace;

pub use batch::{BatchRun, BatchWorkspace, MemberView};
pub use drip::{DripFactory, DripNode, PureDrip, PureFactory};
pub use election::{
    run_election, run_election_in, run_election_model, run_election_resident, run_election_under,
    ElectionOutcome, LeaderAlgorithm, ResidentOutcome,
};
pub use engine::{ExecStats, Execution, Executor, RunOpts, SimError};
pub use history::{History, HistoryView};
pub use model::{Beeping, CollisionDetection, ModelKind, NoCollisionDetection, RadioModel};
pub use msg::{Action, Msg, Obs};
pub use patient::PatientFactory;
pub use workspace::{ResidentRun, SimWorkspace};
