//! Reusable per-run engine state — the batch-execution substrate.
//!
//! A single election allocates a dozen vectors (arena segments, wake/done
//! rounds, active lists, round-stamped counters, quiescence horizons).
//! That is irrelevant for one run and dominant for a campaign of millions:
//! the batch layers (`parallel`, `radio_bench::campaign`) therefore run
//! every simulation through a long-lived [`SimWorkspace`], which owns all
//! of that state and recycles it run after run.
//!
//! [`SimWorkspace::reset_for`] re-dimensions the buffers for the next
//! configuration *without freeing them*: once a workspace has warmed up to
//! the largest configuration in a batch, back-to-back runs allocate
//! nothing in the hot loop (the only steady-state allocations left are the
//! per-node DRIP boxes the factory spawns and the owned histories of the
//! returned [`Execution`] — both part of the run's inputs/outputs, not the
//! engine).
//!
//! The one-shot entry points ([`Executor::run`](crate::Executor::run),
//! [`ModelKind::run`](crate::ModelKind::run)) are thin wrappers that build
//! a fresh workspace per call, so single-run callers see no API change —
//! and the differential suite (`tests/workspace_reuse.rs`) pins that a
//! workspace reused across a shuffled mix of configurations, channel
//! models, and leap modes produces bit-identical executions to fresh runs.

use radio_graph::{Configuration, NodeId};

use crate::drip::DripFactory;
use crate::engine::{ExecStats, Execution, RunOpts, SimError};
use crate::history::{History, HistoryView};
use crate::model::{
    record_listener_obs, Beeping, CollisionDetection, ModelKind, NoCollisionDetection, RadioModel,
};
use crate::msg::{Action, Msg, Obs};
use crate::trace::{RoundEvent, Trace};

/// One shared observation arena: every node's history is an
/// `(offset, len, capacity)` segment of a single flat `Vec<Obs>`.
///
/// Appending into a full segment relocates it to the end of the arena with
/// doubled capacity (amortized O(1)); the backing vector itself grows
/// geometrically, so steady-state rounds perform no allocation at all.
/// Relocation abandons the old segment in place; once that garbage would
/// exceed the live observations the arena compacts itself (an O(live)
/// rewrite, amortized against the pushes that created the garbage), so the
/// buffer never holds more than ~2× the live observations. At million-node
/// scale this is the difference between the arena tracking the histories
/// and the arena dwarfing them. [`ObsArena::reset`] clears the segments
/// while keeping the backing vector's capacity — how a [`SimWorkspace`]
/// carries its warmed-up arena from run to run.
///
/// # Sparse mode
///
/// Under [`RunOpts::sparse_histories`](crate::RunOpts::sparse_histories)
/// the arena stores only the *non-silent* observations, as
/// `(local_round, obs)` events in a second segmented buffer; silence —
/// which dominates canonical-schedule histories utterly — exists only as
/// a per-node virtual length. Views answer `get`/`iter` identically in
/// both modes (the sparse [`HistoryView`] synthesizes `(∅)` on the fly),
/// so results are bit-identical; only
/// [`HistoryView::as_slice`] is unavailable. A leap's bulk silence
/// ([`ObsArena::push_silence_n`]) becomes a counter bump — O(1) time
/// *and* memory — which is what lets a 10⁶-node election run within a
/// small multiple of its configuration footprint.
#[derive(Debug, Default)]
pub(crate) struct ObsArena {
    /// Sparse mode: silence is virtual, only events are stored.
    sparse: bool,
    /// Length-only mode: nothing is stored, histories exist purely as
    /// per-node virtual lengths (`vlen`). See [`RunOpts::len_only_histories`].
    len_only: bool,
    /// Dense-mode backing buffer (one `Obs` per recorded round).
    data: Vec<Obs>,
    /// Sparse-mode backing buffer (non-silent entries only).
    events: Vec<(u64, Obs)>,
    /// Per-node segment offsets into the active backing buffer.
    off: Vec<usize>,
    /// Per-node count of *stored* elements (obs or events).
    len: Vec<u32>,
    /// Per-node segment capacities.
    cap: Vec<u32>,
    /// Sparse mode: per-node virtual history length in rounds.
    vlen: Vec<u64>,
    /// Slots abandoned by segment relocations since the last compaction.
    dead: usize,
}

/// Relocates segment `v` of a segmented buffer to the end with capacity
/// `max(2×cap, FIRST_CAP, need)`, compacting the whole buffer first when
/// relocation garbage would outweigh the live data. Shared by the arena's
/// dense (`Obs`) and sparse (`(round, Obs)`) buffers.
#[cold]
#[allow(clippy::too_many_arguments)]
fn seg_grow<T: Copy>(
    buf: &mut Vec<T>,
    off: &mut [usize],
    len: &[u32],
    cap: &mut [u32],
    dead: &mut usize,
    v: usize,
    need: usize,
    fill: T,
) {
    // At least double (amortization), but satisfy big jumps — a
    // time-leap can demand millions of slots at once — exactly, so a
    // huge silent run is not over-allocated (and over-filled) by up
    // to 2×.
    let new_cap = (cap[v] as usize * 2)
        .max(ObsArena::FIRST_CAP as usize)
        .max(need);
    // The whole abandoned segment (live prefix and unused tail alike)
    // becomes garbage; compact once garbage would outweigh the live
    // data, keeping the buffer within ~2× of the live elements.
    *dead += cap[v] as usize;
    if *dead * 2 > buf.len() {
        seg_compact(buf, off, len, cap);
        // Compaction shrank `v`'s segment to its live length; the
        // relocation below abandons exactly those slots.
        *dead = len[v] as usize;
    }
    let new_off = buf.len();
    let old_off = off[v];
    let live = len[v] as usize;
    // Relocate by appending: the live prefix is copied once (not
    // fill-initialized first and then overwritten), only the fresh tail
    // is filled — establishing the all-`fill`-beyond-`len` invariant
    // the dense `push_silence_n` relies on.
    buf.extend_from_within(old_off..old_off + live);
    buf.resize(new_off + new_cap, fill);
    off[v] = new_off;
    cap[v] = u32::try_from(new_cap).expect("history exceeds u32 capacity");
}

/// Rewrites every segment contiguously at the front of the buffer,
/// dropping all relocation garbage. Segments keep their contents;
/// capacities shrink to the live lengths, so the next append per segment
/// relocates — which the doubling policy amortizes as usual.
#[cold]
fn seg_compact<T: Copy>(buf: &mut Vec<T>, off: &mut [usize], len: &[u32], cap: &mut [u32]) {
    let mut order: Vec<u32> = (0..off.len() as u32).collect();
    order.sort_unstable_by_key(|&v| off[v as usize]);
    let mut write = 0usize;
    for &v in &order {
        let vi = v as usize;
        let live = len[vi] as usize;
        buf.copy_within(off[vi]..off[vi] + live, write);
        off[vi] = write;
        cap[vi] = len[vi];
        write += live;
    }
    buf.truncate(write);
}

impl ObsArena {
    /// Initial per-node segment capacity (allocated on first push).
    const FIRST_CAP: u32 = 8;

    #[cfg(test)]
    fn new(n: usize) -> ObsArena {
        let mut arena = ObsArena::default();
        arena.reset(n);
        arena
    }

    /// Backing-buffer footprint in bytes (capacities, not lengths). The
    /// arena never shrinks, so this is its high-water mark.
    pub(crate) fn mem_bytes(&self) -> u64 {
        (self.data.capacity() * std::mem::size_of::<Obs>()
            + self.events.capacity() * std::mem::size_of::<(u64, Obs)>()
            + self.off.capacity() * std::mem::size_of::<usize>()
            + self.len.capacity() * std::mem::size_of::<u32>()
            + self.cap.capacity() * std::mem::size_of::<u32>()
            + self.vlen.capacity() * std::mem::size_of::<u64>()) as u64
    }

    /// Selects the storage mode for the *next* [`ObsArena::reset`]. Must
    /// not be flipped mid-run. `len_only` wins over `sparse`.
    pub(crate) fn set_mode(&mut self, sparse: bool, len_only: bool) {
        self.sparse = sparse;
        self.len_only = len_only;
    }

    /// The virtual length of node `v`'s history — the local round index
    /// the *next* recorded entry will land at, in any storage mode.
    #[inline]
    pub(crate) fn pos(&self, v: usize) -> u64 {
        if self.sparse || self.len_only {
            self.vlen[v]
        } else {
            u64::from(self.len[v])
        }
    }

    /// Re-dimensions for `n` empty segments, retaining all buffer capacity.
    pub(crate) fn reset(&mut self, n: usize) {
        self.data.clear();
        self.events.clear();
        self.off.clear();
        self.off.resize(n, 0);
        self.len.clear();
        self.len.resize(n, 0);
        self.cap.clear();
        self.cap.resize(n, 0);
        self.vlen.clear();
        self.vlen.resize(n, 0);
        self.dead = 0;
    }

    #[inline]
    pub(crate) fn push(&mut self, v: usize, obs: Obs) {
        if self.len_only {
            self.vlen[v] += 1;
            return;
        }
        if self.sparse {
            let pos = self.vlen[v];
            self.vlen[v] = pos + 1;
            if !obs.is_silence() {
                self.push_event(v, (pos, obs));
            }
            return;
        }
        if self.len[v] == self.cap[v] {
            seg_grow(
                &mut self.data,
                &mut self.off,
                &self.len,
                &mut self.cap,
                &mut self.dead,
                v,
                self.len[v] as usize + 1,
                Obs::Silence,
            );
        }
        self.data[self.off[v] + self.len[v] as usize] = obs;
        self.len[v] += 1;
    }

    /// Appends a non-silent entry to node `v`'s sparse event segment.
    fn push_event(&mut self, v: usize, e: (u64, Obs)) {
        if self.len[v] == self.cap[v] {
            seg_grow(
                &mut self.events,
                &mut self.off,
                &self.len,
                &mut self.cap,
                &mut self.dead,
                v,
                self.len[v] as usize + 1,
                (0, Obs::Silence),
            );
        }
        self.events[self.off[v] + self.len[v] as usize] = e;
        self.len[v] += 1;
    }

    /// Appends `k` `(∅)` entries to segment `v` in one go — how the
    /// time-leap scheduler delivers a skipped silent stretch.
    ///
    /// Sparse mode: a pure counter bump, O(1) time and memory — a leap
    /// over a million quiet rounds costs nothing per node. Dense mode:
    /// O(1) past capacity checks, because a segment's unused tail
    /// `[len..cap)` still holds the `Obs::Silence` the backing vector was
    /// resized with (pushes only ever write at `len`), so appending
    /// silence is just a length bump.
    pub(crate) fn push_silence_n(&mut self, v: usize, k: usize) {
        if self.len_only || self.sparse {
            self.vlen[v] += k as u64;
            return;
        }
        let need = self.len[v] as usize + k;
        if need > self.cap[v] as usize {
            seg_grow(
                &mut self.data,
                &mut self.off,
                &self.len,
                &mut self.cap,
                &mut self.dead,
                v,
                need,
                Obs::Silence,
            );
        }
        self.len[v] += k as u32;
    }

    /// Node `v`'s recorded entries as a contiguous slice (dense mode only).
    #[inline]
    pub(crate) fn slice(&self, v: usize) -> &[Obs] {
        debug_assert!(!self.sparse, "slice() on a sparse arena");
        &self.data[self.off[v]..self.off[v] + self.len[v] as usize]
    }

    #[inline]
    pub(crate) fn view(&self, v: usize) -> HistoryView<'_> {
        if self.len_only {
            // Length-only views have the right `len()` but report every
            // entry as silence; sound only under the `observe`-folding
            // DRIP contract of `RunOpts::len_only_histories`.
            return HistoryView::sparse(&[], self.vlen[v]);
        }
        if self.sparse {
            let events = &self.events[self.off[v]..self.off[v] + self.len[v] as usize];
            HistoryView::sparse(events, self.vlen[v])
        } else {
            HistoryView::new(self.slice(v))
        }
    }

    /// Materializes all segments as owned histories, leaving the arena
    /// intact for the next run.
    pub(crate) fn histories(&self) -> Vec<History> {
        (0..self.off.len())
            .map(|v| self.view(v).to_history())
            .collect()
    }
}

/// Sentinel for "has not happened yet" in the wake/done planes — shared
/// with the batched engine (`crate::batch`), which must agree with the
/// sequential loop bit for bit.
pub(crate) const ASLEEP: u64 = u64::MAX;

/// Reusable engine state for back-to-back simulations.
///
/// Create one per worker thread, then call [`SimWorkspace::run`] /
/// [`SimWorkspace::run_model`] / [`SimWorkspace::run_kind`] as many times
/// as needed — each call resets and recycles every internal buffer, so a
/// warmed-up workspace executes runs without engine-side allocation. The
/// produced [`Execution`]s are bit-identical to one-shot
/// [`Executor`](crate::Executor) runs.
#[derive(Default)]
pub struct SimWorkspace {
    nodes: Vec<Box<dyn crate::drip::DripNode>>,
    arena: ObsArena,
    wake: Vec<u64>,
    done: Vec<u64>,
    by_tag: Vec<NodeId>,
    active: Vec<NodeId>,
    actions: Vec<(NodeId, Action)>,
    transmitters: Vec<(NodeId, Msg)>,
    touched: Vec<NodeId>,
    cnt: Vec<u32>,
    cnt_stamp: Vec<u64>,
    heard_msg: Vec<Msg>,
    quiet_horizon: Vec<u64>,
}

impl std::fmt::Debug for SimWorkspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimWorkspace")
            .field("nodes", &self.nodes.len())
            .field("arena_obs", &self.arena.data.len())
            .finish()
    }
}

impl SimWorkspace {
    /// An empty workspace; buffers are dimensioned lazily by the first run.
    pub fn new() -> SimWorkspace {
        SimWorkspace::default()
    }

    /// Approximate footprint of the workspace's backing buffers in bytes.
    /// Counts plane *capacities* — capacities never shrink across runs, so
    /// this is the high-water mark of everything the workspace ever held
    /// (boxed node internals excluded). Feeds the campaign `mem_hw` column.
    pub fn mem_bytes(&self) -> u64 {
        fn plane<T>(v: &Vec<T>) -> u64 {
            (v.capacity() * std::mem::size_of::<T>()) as u64
        }
        self.arena.mem_bytes()
            + plane(&self.nodes)
            + plane(&self.wake)
            + plane(&self.done)
            + plane(&self.by_tag)
            + plane(&self.active)
            + plane(&self.cnt)
            + plane(&self.cnt_stamp)
            + plane(&self.quiet_horizon)
            + plane(&self.actions)
            + plane(&self.transmitters)
            + plane(&self.touched)
            + plane(&self.heard_msg)
    }

    /// Re-dimensions every buffer for `config` without freeing capacity:
    /// the per-run state (arena segments, wake/done/counter/horizon
    /// vectors, active lists) is cleared in place. Called automatically at
    /// the start of every run.
    pub fn reset_for(&mut self, config: &Configuration) {
        let n = config.size();
        self.nodes.clear();
        self.arena.reset(n);
        self.wake.clear();
        self.wake.resize(n, ASLEEP);
        self.done.clear();
        self.done.resize(n, ASLEEP);
        self.by_tag.clear();
        self.by_tag.extend(0..n as NodeId);
        self.by_tag.sort_by_key(|&v| config.tag(v));
        self.active.clear();
        self.actions.clear();
        self.transmitters.clear();
        self.touched.clear();
        self.cnt.clear();
        self.cnt.resize(n, 0);
        // Stamps compare against round numbers that restart at 0 each run,
        // so stale stamps must be cleared or a new run's round `r` could
        // collide with an old one's.
        self.cnt_stamp.clear();
        self.cnt_stamp.resize(n, u64::MAX);
        self.heard_msg.clear();
        self.heard_msg.resize(n, Msg(0));
        self.quiet_horizon.clear();
        self.quiet_horizon.resize(n, 0);
    }

    /// Runs `factory`'s DRIP on `config` under the paper's channel model
    /// ([`NoCollisionDetection`]), recycling this workspace's buffers.
    pub fn run(
        &mut self,
        config: &Configuration,
        factory: &dyn DripFactory,
        opts: RunOpts,
    ) -> Result<Execution, SimError> {
        self.run_model::<NoCollisionDetection>(config, factory, opts)
    }

    /// [`SimWorkspace::run`] under a runtime-selected channel model.
    pub fn run_kind(
        &mut self,
        model: ModelKind,
        config: &Configuration,
        factory: &dyn DripFactory,
        opts: RunOpts,
    ) -> Result<Execution, SimError> {
        match model {
            ModelKind::NoCollisionDetection => {
                self.run_model::<NoCollisionDetection>(config, factory, opts)
            }
            ModelKind::CollisionDetection => {
                self.run_model::<CollisionDetection>(config, factory, opts)
            }
            ModelKind::Beeping => self.run_model::<Beeping>(config, factory, opts),
        }
    }

    /// [`SimWorkspace::run`] under an explicit channel model `M`.
    pub fn run_model<M: RadioModel>(
        &mut self,
        config: &Configuration,
        factory: &dyn DripFactory,
        opts: RunOpts,
    ) -> Result<Execution, SimError> {
        debug_assert!(
            !opts.len_only_histories,
            "length-only histories cannot be materialized into an Execution"
        );
        let run = self.run_model_resident::<M>(config, factory, opts)?;
        Ok(Execution {
            wake_round: std::mem::take(&mut self.wake),
            done_round: std::mem::take(&mut self.done),
            histories: self.arena.histories(),
            rounds: run.rounds,
            rounds_stepped: run.rounds_stepped,
            rounds_leapt: run.rounds_leapt,
            stats: run.stats,
            trace: run.trace,
        })
    }

    /// [`SimWorkspace::run_kind`] without materializing an [`Execution`]:
    /// the run's histories stay resident in the workspace arena, readable
    /// through [`SimWorkspace::history_view`] until the next run resets it.
    ///
    /// This is the engine's million-node path. Materializing a 10⁶-node
    /// execution clones every observation into per-node vectors — for
    /// history-heavy runs that clone alone can exceed the configuration
    /// footprint by an order of magnitude. Callers that only *read* final
    /// histories (a decision function, a metrics pass) should run resident
    /// and view the arena in place; the summary carries everything else an
    /// [`Execution`] would.
    pub fn run_kind_resident(
        &mut self,
        model: ModelKind,
        config: &Configuration,
        factory: &dyn DripFactory,
        opts: RunOpts,
    ) -> Result<ResidentRun, SimError> {
        match model {
            ModelKind::NoCollisionDetection => {
                self.run_model_resident::<NoCollisionDetection>(config, factory, opts)
            }
            ModelKind::CollisionDetection => {
                self.run_model_resident::<CollisionDetection>(config, factory, opts)
            }
            ModelKind::Beeping => self.run_model_resident::<Beeping>(config, factory, opts),
        }
    }

    /// Final history of node `v` from the last run, viewed in place (no
    /// copy). Valid after [`SimWorkspace::run_kind_resident`] until the
    /// next run or reset re-dimensions the arena.
    #[inline]
    pub fn history_view(&self, v: NodeId) -> crate::history::HistoryView<'_> {
        self.arena.view(v as usize)
    }

    /// Leader verdict of node `v`'s DRIP from the last run, if the
    /// algorithm resolved one at termination (see
    /// [`DripNode::leader_claim`](crate::drip::DripNode::leader_claim)).
    /// This is how length-only runs report
    /// election outcomes without stored histories.
    #[inline]
    pub fn leader_claim(&self, v: NodeId) -> Option<bool> {
        self.nodes[v as usize].leader_claim()
    }

    /// [`SimWorkspace::run_kind_resident`] under an explicit channel model
    /// `M`. This is the run loop itself; [`SimWorkspace::run_model`] wraps
    /// it and materializes the [`Execution`].
    pub fn run_model_resident<M: RadioModel>(
        &mut self,
        config: &Configuration,
        factory: &dyn DripFactory,
        opts: RunOpts,
    ) -> Result<ResidentRun, SimError> {
        self.arena
            .set_mode(opts.sparse_histories, opts.len_only_histories);
        self.reset_for(config);
        let n = config.size();
        let csr = config.csr();
        self.nodes.extend((0..n).map(|_| factory.spawn()));

        let mut tag_ptr = 0usize;
        let mut done_count = 0usize;
        let mut stats = ExecStats::default();
        let mut trace = if opts.record_trace {
            Some(Trace::default())
        } else {
            None
        };
        let mut rounds_executed = 0u64;
        let mut rounds_stepped = 0u64;
        let mut rounds_leapt = 0u64;

        let mut r: u64 = 0;
        while done_count < n {
            if r >= opts.max_rounds {
                return Err(SimError::RoundLimit {
                    max_rounds: opts.max_rounds,
                    still_running: n - done_count,
                });
            }

            // Time-leap scheduler: fast-forward over provably quiet
            // stretches. Sound because every active node at this point
            // woke in an earlier round (this round's wake-ups have not
            // happened yet), so all of them decide in every skipped round
            // — and all have committed those decisions to `Listen`, which
            // means no transmissions, hence no deliveries other than
            // `(∅)`, no forced wake-ups, and no cache invalidations
            // during the skipped stretch.
            if opts.leap {
                if self.active.is_empty() {
                    // Nothing is awake: the next possible event is the
                    // next spontaneous wake-up (the loop condition
                    // guarantees one exists).
                    let next_tag = config.tag(self.by_tag[tag_ptr]).min(opts.max_rounds);
                    if next_tag > r {
                        rounds_leapt += next_tag - r;
                        r = next_tag;
                        continue;
                    }
                } else {
                    let mut target = u64::MAX;
                    let mut all_quiet = true;
                    for &v in &self.active {
                        let vi = v as usize;
                        if self.quiet_horizon[vi] <= r {
                            match self.nodes[vi].quiet_until(self.arena.view(vi)) {
                                Some(q) => self.quiet_horizon[vi] = self.wake[vi].saturating_add(q),
                                None => {
                                    all_quiet = false;
                                    break;
                                }
                            }
                            if self.quiet_horizon[vi] <= r {
                                all_quiet = false;
                                break;
                            }
                        }
                        target = target.min(self.quiet_horizon[vi]);
                    }
                    if tag_ptr < n {
                        target = target.min(config.tag(self.by_tag[tag_ptr]));
                    }
                    target = target.min(opts.max_rounds);
                    if all_quiet && target > r {
                        // Every active node would have decided (and
                        // listened) in each skipped round: deliver the
                        // silent observations in bulk.
                        let skipped = (target - r) as usize;
                        for &v in &self.active {
                            self.arena.push_silence_n(v as usize, skipped);
                        }
                        rounds_leapt += skipped as u64;
                        r = target;
                        continue;
                    }
                }
            }

            let mut event = RoundEvent {
                round: r,
                ..Default::default()
            };

            // 1. Decide.
            self.actions.clear();
            for &v in &self.active {
                if self.wake[v as usize] < r {
                    let action = self.nodes[v as usize].decide(self.arena.view(v as usize));
                    self.actions.push((v, action));
                }
            }

            // 2. Collect transmitters and stamp neighbour counters.
            self.transmitters.clear();
            self.touched.clear();
            for &(v, action) in &self.actions {
                if let Action::Transmit(m) = action {
                    self.transmitters.push((v, m));
                }
            }
            for &(u, m) in &self.transmitters {
                for &w in csr.neighbors(u) {
                    let wi = w as usize;
                    if self.cnt_stamp[wi] != r {
                        self.cnt_stamp[wi] = r;
                        self.cnt[wi] = 0;
                        self.touched.push(w);
                    }
                    self.cnt[wi] += 1;
                    self.heard_msg[wi] = m;
                }
            }
            stats.transmissions += self.transmitters.len() as u64;

            // 3. Deliver to acting nodes.
            let mut retired = false;
            for &(v, action) in &self.actions {
                let vi = v as usize;
                match action {
                    Action::Transmit(_) => {
                        // A transmitter hears nothing: (∅). It was no
                        // committed listener, whatever it once claimed.
                        self.quiet_horizon[vi] = 0;
                        self.arena.push(vi, Obs::Silence);
                    }
                    Action::Listen => {
                        let heard = if self.cnt_stamp[vi] == r {
                            self.cnt[vi]
                        } else {
                            0
                        };
                        let msg = if heard == 1 {
                            self.heard_msg[vi]
                        } else {
                            Msg(0)
                        };
                        let obs = M::listener_obs(heard, msg);
                        record_listener_obs(obs, &mut stats);
                        if !matches!(obs, Obs::Silence) {
                            // Quiet claims hold only while the channel
                            // stays silent for the node: re-ask later.
                            self.quiet_horizon[vi] = 0;
                        }
                        if trace.is_some() {
                            match obs {
                                Obs::Heard(m) => event.received.push((v, m)),
                                Obs::Collision | Obs::Noise => event.collisions.push(v),
                                Obs::Silence => {}
                            }
                        }
                        let t = self.arena.pos(vi);
                        self.arena.push(vi, obs);
                        if !matches!(obs, Obs::Silence) {
                            // Streaming hook: non-silent entries are fed
                            // to the node as they land (see
                            // `DripNode::observe`).
                            self.nodes[vi].observe(t, obs);
                        }
                    }
                    Action::Terminate => {
                        self.done[vi] = r;
                        done_count += 1;
                        retired = true;
                        if trace.is_some() {
                            event.terminated.push(v);
                        }
                    }
                }
            }
            if retired {
                let done = &self.done;
                self.active.retain(|&v| done[v as usize] == ASLEEP);
            }

            // 4. Forced wake-ups: sleeping neighbours of transmitters, as
            //    the model dictates. Under the default model a collision
            //    leaves them asleep; other models may wake them with (~).
            for &w in &self.touched {
                let wi = w as usize;
                if self.wake[wi] == ASLEEP {
                    let msg = if self.cnt[wi] == 1 {
                        self.heard_msg[wi]
                    } else {
                        Msg(0)
                    };
                    if let Some(obs) = M::wake_obs(self.cnt[wi], msg) {
                        self.wake[wi] = r;
                        let t = self.arena.pos(wi);
                        self.arena.push(wi, obs);
                        if !matches!(obs, Obs::Silence) {
                            self.nodes[wi].observe(t, obs);
                        }
                        self.active.push(w);
                        stats.forced_wakeups += 1;
                        if trace.is_some() {
                            event.woke.push((w, obs));
                        }
                    }
                }
            }

            // 5. Spontaneous wake-ups at tag == r.
            while tag_ptr < n && config.tag(self.by_tag[tag_ptr]) == r {
                let w = self.by_tag[tag_ptr];
                tag_ptr += 1;
                let wi = w as usize;
                if self.wake[wi] == ASLEEP {
                    self.wake[wi] = r;
                    self.arena.push(wi, Obs::Silence);
                    self.active.push(w);
                    if trace.is_some() {
                        event.woke.push((w, Obs::Silence));
                    }
                }
            }

            if let Some(t) = trace.as_mut() {
                // An eventful round hands its transmitter buffer to the
                // trace outright (no clone); the next round starts from
                // the empty vector the take leaves behind. A quiet round
                // has nothing to hand over.
                if !self.transmitters.is_empty() || !event.is_quiet() {
                    event.transmitters = std::mem::take(&mut self.transmitters);
                    t.events.push(event);
                }
            }

            rounds_executed = r + 1;
            rounds_stepped += 1;
            r += 1;
        }

        Ok(ResidentRun {
            rounds: rounds_executed,
            rounds_stepped,
            rounds_leapt,
            completion_round: self.done.iter().copied().max().unwrap_or(0),
            stats,
            trace,
        })
    }
}

/// Summary of a run whose histories stayed resident in the workspace
/// arena (see [`SimWorkspace::run_kind_resident`]): everything an
/// [`Execution`] reports except the materialized per-node vectors.
#[derive(Debug, Clone)]
pub struct ResidentRun {
    /// Number of global rounds simulated (identical to
    /// [`Execution::rounds`], leap or no leap).
    pub rounds: u64,
    /// Global rounds executed one by one.
    pub rounds_stepped: u64,
    /// Global rounds the time-leap scheduler skipped as provably quiet.
    pub rounds_leapt: u64,
    /// Global round by which every node had terminated (`max` over the
    /// done plane; 0 for an empty configuration).
    pub completion_round: u64,
    /// Aggregate counters.
    pub stats: ExecStats,
    /// Recorded trace, when requested via [`RunOpts::record_trace`].
    pub trace: Option<Trace>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_segments_grow_and_relocate_correctly() {
        // Long histories force many segment relocations; the final owned
        // histories must be exactly the per-round observations.
        let mut arena = ObsArena::new(3);
        for i in 0..100u64 {
            arena.push(0, Obs::Heard(Msg(i)));
            if i % 2 == 0 {
                arena.push(1, Obs::Silence);
            }
            if i % 3 == 0 {
                arena.push(2, Obs::Collision);
            }
        }
        assert_eq!(arena.view(0).len(), 100);
        assert_eq!(arena.view(0).message_at(73), Some(Msg(73)));
        let hs = arena.histories();
        assert_eq!(hs[0].len(), 100);
        assert_eq!(hs[1].len(), 50);
        assert_eq!(hs[2].len(), 34);
        assert!(hs[1].all_silent());
        assert!((0..100).all(|i| hs[0].message_at(i) == Some(Msg(i as u64))));
    }

    #[test]
    fn arena_push_silence_n_appends_bulk_silence() {
        let mut arena = ObsArena::new(2);
        arena.push(0, Obs::Heard(Msg(1)));
        arena.push_silence_n(0, 1000);
        arena.push(0, Obs::Heard(Msg(2)));
        arena.push_silence_n(1, 3);
        let hs = arena.histories();
        assert_eq!(hs[0].len(), 1002);
        assert_eq!(hs[0].message_at(0), Some(Msg(1)));
        assert!(hs[0].as_slice()[1..1001].iter().all(|o| o.is_silence()));
        assert_eq!(hs[0].message_at(1001), Some(Msg(2)));
        assert_eq!(hs[1].len(), 3);
        assert!(hs[1].all_silent());
    }

    #[test]
    fn arena_len_only_mode_counts_without_storing() {
        let mut arena = ObsArena::default();
        arena.set_mode(false, true);
        arena.reset(2);
        arena.push(0, Obs::Heard(Msg(7)));
        arena.push_silence_n(0, 1000);
        arena.push(0, Obs::Collision);
        arena.push_silence_n(1, 3);
        // Lengths are exact in every accessor…
        assert_eq!(arena.pos(0), 1002);
        assert_eq!(arena.pos(1), 3);
        assert_eq!(arena.view(0).len(), 1002);
        assert_eq!(arena.view(1).len(), 3);
        // …but nothing was stored: views report silence everywhere and no
        // backing buffer grew.
        assert_eq!(arena.view(0).message_at(0), None);
        assert_eq!(arena.view(0).get(1001), Some(Obs::Silence));
        assert_eq!(arena.data.capacity(), 0);
        assert_eq!(arena.events.capacity(), 0);
    }

    #[test]
    fn arena_reset_clears_segments_but_keeps_capacity() {
        let mut arena = ObsArena::new(2);
        for i in 0..500u64 {
            arena.push(0, Obs::Heard(Msg(i)));
            arena.push(1, Obs::Silence);
        }
        let warm = arena.data.capacity();
        assert!(warm >= 1000);
        arena.reset(3);
        assert_eq!(arena.data.len(), 0);
        assert_eq!(arena.data.capacity(), warm, "backing capacity survives");
        assert_eq!(arena.view(0).len(), 0);
        // segments work as new after the reset, and the silence-tail
        // invariant holds for the recycled buffer
        arena.push(2, Obs::Heard(Msg(9)));
        arena.push_silence_n(2, 20);
        let hs = arena.histories();
        assert!(hs[0].is_empty() && hs[1].is_empty());
        assert_eq!(hs[2].len(), 21);
        assert_eq!(hs[2].message_at(0), Some(Msg(9)));
        assert!(hs[2].as_slice()[1..].iter().all(|o| o.is_silence()));
    }

    #[test]
    fn workspace_reuse_matches_fresh_runs_across_sizes() {
        use crate::drip::{SilentFactory, WaitThenTransmitFactory};
        use radio_graph::{generators, Configuration};

        let small = Configuration::new(generators::path(3), vec![0, 1, 2]).unwrap();
        let large = Configuration::new(generators::star(8), vec![0, 1, 1, 1, 2, 3, 4, 9]).unwrap();
        let wtt = WaitThenTransmitFactory {
            wait: 1,
            msg: Msg(7),
            lifetime: 12,
        };
        let silent = SilentFactory { lifetime: 5 };

        let mut ws = SimWorkspace::new();
        // grow, shrink, grow again — every run must equal its fresh twin
        for (config, factory) in [
            (&large, &wtt as &dyn DripFactory),
            (&small, &silent as &dyn DripFactory),
            (&large, &wtt as &dyn DripFactory),
        ] {
            let reused = ws.run(config, factory, RunOpts::default()).unwrap();
            let fresh = crate::Executor::run(config, factory, RunOpts::default()).unwrap();
            assert_eq!(reused.histories, fresh.histories);
            assert_eq!(reused.wake_round, fresh.wake_round);
            assert_eq!(reused.done_round, fresh.done_round);
            assert_eq!(reused.rounds, fresh.rounds);
            assert_eq!(reused.stats, fresh.stats);
        }
    }

    #[test]
    fn workspace_survives_a_round_limit_error() {
        use crate::drip::SilentFactory;
        use radio_graph::{generators, Configuration};

        let config = Configuration::new(generators::path(2), vec![0, 0]).unwrap();
        let mut ws = SimWorkspace::new();
        let err = ws
            .run(
                &config,
                &SilentFactory { lifetime: 100 },
                RunOpts::with_max_rounds(10),
            )
            .unwrap_err();
        assert!(matches!(err, SimError::RoundLimit { .. }));
        // the aborted run must not poison the next one
        let ok = ws
            .run(&config, &SilentFactory { lifetime: 4 }, RunOpts::default())
            .unwrap();
        let fresh =
            crate::Executor::run(&config, &SilentFactory { lifetime: 4 }, RunOpts::default())
                .unwrap();
        assert_eq!(ok.histories, fresh.histories);
        assert_eq!(ok.rounds, fresh.rounds);
    }

    #[test]
    fn traced_run_hands_transmitter_buffers_to_the_trace() {
        use crate::drip::WaitThenTransmitFactory;
        use radio_graph::{generators, Configuration};

        let config = Configuration::new(generators::path(3), vec![0, 9, 9]).unwrap();
        let factory = WaitThenTransmitFactory {
            wait: 0,
            msg: Msg(5),
            lifetime: 8,
        };
        let mut ws = SimWorkspace::new();
        let reused = ws
            .run(&config, &factory, RunOpts::default().traced())
            .unwrap();
        let fresh = crate::Executor::run(&config, &factory, RunOpts::default().traced()).unwrap();
        assert_eq!(
            reused.trace.as_ref().unwrap().events,
            fresh.trace.as_ref().unwrap().events
        );
        // the transmission rounds made it into the trace with their payload
        assert!(reused
            .trace
            .unwrap()
            .events
            .iter()
            .any(|e| !e.transmitters.is_empty()));
    }
}
