//! Reusable per-run engine state — the batch-execution substrate.
//!
//! A single election allocates a dozen vectors (arena segments, wake/done
//! rounds, active lists, round-stamped counters, quiescence horizons).
//! That is irrelevant for one run and dominant for a campaign of millions:
//! the batch layers (`parallel`, `radio_bench::campaign`) therefore run
//! every simulation through a long-lived [`SimWorkspace`], which owns all
//! of that state and recycles it run after run.
//!
//! [`SimWorkspace::reset_for`] re-dimensions the buffers for the next
//! configuration *without freeing them*: once a workspace has warmed up to
//! the largest configuration in a batch, back-to-back runs allocate
//! nothing in the hot loop (the only steady-state allocations left are the
//! per-node DRIP boxes the factory spawns and the owned histories of the
//! returned [`Execution`] — both part of the run's inputs/outputs, not the
//! engine).
//!
//! The one-shot entry points ([`Executor::run`](crate::Executor::run),
//! [`ModelKind::run`](crate::ModelKind::run)) are thin wrappers that build
//! a fresh workspace per call, so single-run callers see no API change —
//! and the differential suite (`tests/workspace_reuse.rs`) pins that a
//! workspace reused across a shuffled mix of configurations, channel
//! models, and leap modes produces bit-identical executions to fresh runs.

use radio_graph::{Configuration, NodeId};

use crate::drip::DripFactory;
use crate::engine::{ExecStats, Execution, RunOpts, SimError};
use crate::history::{History, HistoryView};
use crate::model::{
    record_listener_obs, Beeping, CollisionDetection, ModelKind, NoCollisionDetection, RadioModel,
};
use crate::msg::{Action, Msg, Obs};
use crate::trace::{RoundEvent, Trace};

/// One shared observation arena: every node's history is an
/// `(offset, len, capacity)` segment of a single flat `Vec<Obs>`.
///
/// Appending into a full segment relocates it to the end of the arena with
/// doubled capacity (amortized O(1), total memory ≤ ~2× the live
/// observations); the backing vector itself grows geometrically, so
/// steady-state rounds perform no allocation at all. [`ObsArena::reset`]
/// clears the segments while keeping the backing vector's capacity — how a
/// [`SimWorkspace`] carries its warmed-up arena from run to run.
#[derive(Debug, Default)]
pub(crate) struct ObsArena {
    data: Vec<Obs>,
    off: Vec<usize>,
    len: Vec<u32>,
    cap: Vec<u32>,
}

impl ObsArena {
    /// Initial per-node segment capacity (allocated on first push).
    const FIRST_CAP: u32 = 8;

    #[cfg(test)]
    fn new(n: usize) -> ObsArena {
        let mut arena = ObsArena::default();
        arena.reset(n);
        arena
    }

    /// Re-dimensions for `n` empty segments, retaining all buffer capacity.
    pub(crate) fn reset(&mut self, n: usize) {
        self.data.clear();
        self.off.clear();
        self.off.resize(n, 0);
        self.len.clear();
        self.len.resize(n, 0);
        self.cap.clear();
        self.cap.resize(n, 0);
    }

    #[inline]
    pub(crate) fn push(&mut self, v: usize, obs: Obs) {
        if self.len[v] == self.cap[v] {
            self.grow(v, self.len[v] as usize + 1);
        }
        self.data[self.off[v] + self.len[v] as usize] = obs;
        self.len[v] += 1;
    }

    /// Appends `k` `(∅)` entries to segment `v` in one go — how the
    /// time-leap scheduler materializes a skipped silent stretch.
    ///
    /// O(1) past capacity checks: a segment's unused tail `[len..cap)`
    /// still holds the `Obs::Silence` the backing vector was resized with
    /// (pushes only ever write at `len`), so appending silence is just a
    /// length bump.
    pub(crate) fn push_silence_n(&mut self, v: usize, k: usize) {
        let need = self.len[v] as usize + k;
        if need > self.cap[v] as usize {
            self.grow(v, need);
        }
        self.len[v] += k as u32;
    }

    #[cold]
    fn grow(&mut self, v: usize, need: usize) {
        // At least double (amortization), but satisfy big jumps — a
        // time-leap can demand millions of slots at once — exactly, so a
        // huge silent run is not over-allocated (and over-filled) by up
        // to 2×.
        let new_cap = (self.cap[v] as usize * 2)
            .max(Self::FIRST_CAP as usize)
            .max(need);
        let new_off = self.data.len();
        let old_off = self.off[v];
        let live = self.len[v] as usize;
        // Relocate by appending: the live prefix is copied once (not
        // silence-filled first and then overwritten), only the fresh tail
        // is filled — establishing the all-`Silence`-beyond-`len`
        // invariant `push_silence_n` relies on.
        self.data.extend_from_within(old_off..old_off + live);
        self.data.resize(new_off + new_cap, Obs::Silence);
        self.off[v] = new_off;
        self.cap[v] = u32::try_from(new_cap).expect("history exceeds u32 capacity");
    }

    #[inline]
    pub(crate) fn slice(&self, v: usize) -> &[Obs] {
        &self.data[self.off[v]..self.off[v] + self.len[v] as usize]
    }

    #[inline]
    pub(crate) fn view(&self, v: usize) -> HistoryView<'_> {
        HistoryView::new(self.slice(v))
    }

    /// Materializes all segments as owned histories, leaving the arena
    /// intact for the next run.
    pub(crate) fn histories(&self) -> Vec<History> {
        (0..self.off.len())
            .map(|v| History::from_entries(self.slice(v).to_vec()))
            .collect()
    }
}

/// Sentinel for "has not happened yet" in the wake/done planes — shared
/// with the batched engine (`crate::batch`), which must agree with the
/// sequential loop bit for bit.
pub(crate) const ASLEEP: u64 = u64::MAX;

/// Reusable engine state for back-to-back simulations.
///
/// Create one per worker thread, then call [`SimWorkspace::run`] /
/// [`SimWorkspace::run_model`] / [`SimWorkspace::run_kind`] as many times
/// as needed — each call resets and recycles every internal buffer, so a
/// warmed-up workspace executes runs without engine-side allocation. The
/// produced [`Execution`]s are bit-identical to one-shot
/// [`Executor`](crate::Executor) runs.
#[derive(Default)]
pub struct SimWorkspace {
    nodes: Vec<Box<dyn crate::drip::DripNode>>,
    arena: ObsArena,
    wake: Vec<u64>,
    done: Vec<u64>,
    by_tag: Vec<NodeId>,
    active: Vec<NodeId>,
    actions: Vec<(NodeId, Action)>,
    transmitters: Vec<(NodeId, Msg)>,
    touched: Vec<NodeId>,
    cnt: Vec<u32>,
    cnt_stamp: Vec<u64>,
    heard_msg: Vec<Msg>,
    quiet_horizon: Vec<u64>,
}

impl std::fmt::Debug for SimWorkspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimWorkspace")
            .field("nodes", &self.nodes.len())
            .field("arena_obs", &self.arena.data.len())
            .finish()
    }
}

impl SimWorkspace {
    /// An empty workspace; buffers are dimensioned lazily by the first run.
    pub fn new() -> SimWorkspace {
        SimWorkspace::default()
    }

    /// Re-dimensions every buffer for `config` without freeing capacity:
    /// the per-run state (arena segments, wake/done/counter/horizon
    /// vectors, active lists) is cleared in place. Called automatically at
    /// the start of every run.
    pub fn reset_for(&mut self, config: &Configuration) {
        let n = config.size();
        self.nodes.clear();
        self.arena.reset(n);
        self.wake.clear();
        self.wake.resize(n, ASLEEP);
        self.done.clear();
        self.done.resize(n, ASLEEP);
        self.by_tag.clear();
        self.by_tag.extend(0..n as NodeId);
        self.by_tag.sort_by_key(|&v| config.tag(v));
        self.active.clear();
        self.actions.clear();
        self.transmitters.clear();
        self.touched.clear();
        self.cnt.clear();
        self.cnt.resize(n, 0);
        // Stamps compare against round numbers that restart at 0 each run,
        // so stale stamps must be cleared or a new run's round `r` could
        // collide with an old one's.
        self.cnt_stamp.clear();
        self.cnt_stamp.resize(n, u64::MAX);
        self.heard_msg.clear();
        self.heard_msg.resize(n, Msg(0));
        self.quiet_horizon.clear();
        self.quiet_horizon.resize(n, 0);
    }

    /// Runs `factory`'s DRIP on `config` under the paper's channel model
    /// ([`NoCollisionDetection`]), recycling this workspace's buffers.
    pub fn run(
        &mut self,
        config: &Configuration,
        factory: &dyn DripFactory,
        opts: RunOpts,
    ) -> Result<Execution, SimError> {
        self.run_model::<NoCollisionDetection>(config, factory, opts)
    }

    /// [`SimWorkspace::run`] under a runtime-selected channel model.
    pub fn run_kind(
        &mut self,
        model: ModelKind,
        config: &Configuration,
        factory: &dyn DripFactory,
        opts: RunOpts,
    ) -> Result<Execution, SimError> {
        match model {
            ModelKind::NoCollisionDetection => {
                self.run_model::<NoCollisionDetection>(config, factory, opts)
            }
            ModelKind::CollisionDetection => {
                self.run_model::<CollisionDetection>(config, factory, opts)
            }
            ModelKind::Beeping => self.run_model::<Beeping>(config, factory, opts),
        }
    }

    /// [`SimWorkspace::run`] under an explicit channel model `M`.
    pub fn run_model<M: RadioModel>(
        &mut self,
        config: &Configuration,
        factory: &dyn DripFactory,
        opts: RunOpts,
    ) -> Result<Execution, SimError> {
        self.reset_for(config);
        let n = config.size();
        let csr = config.csr();
        self.nodes.extend((0..n).map(|_| factory.spawn()));

        let mut tag_ptr = 0usize;
        let mut done_count = 0usize;
        let mut stats = ExecStats::default();
        let mut trace = if opts.record_trace {
            Some(Trace::default())
        } else {
            None
        };
        let mut rounds_executed = 0u64;
        let mut rounds_stepped = 0u64;
        let mut rounds_leapt = 0u64;

        let mut r: u64 = 0;
        while done_count < n {
            if r >= opts.max_rounds {
                return Err(SimError::RoundLimit {
                    max_rounds: opts.max_rounds,
                    still_running: n - done_count,
                });
            }

            // Time-leap scheduler: fast-forward over provably quiet
            // stretches. Sound because every active node at this point
            // woke in an earlier round (this round's wake-ups have not
            // happened yet), so all of them decide in every skipped round
            // — and all have committed those decisions to `Listen`, which
            // means no transmissions, hence no deliveries other than
            // `(∅)`, no forced wake-ups, and no cache invalidations
            // during the skipped stretch.
            if opts.leap {
                if self.active.is_empty() {
                    // Nothing is awake: the next possible event is the
                    // next spontaneous wake-up (the loop condition
                    // guarantees one exists).
                    let next_tag = config.tag(self.by_tag[tag_ptr]).min(opts.max_rounds);
                    if next_tag > r {
                        rounds_leapt += next_tag - r;
                        r = next_tag;
                        continue;
                    }
                } else {
                    let mut target = u64::MAX;
                    let mut all_quiet = true;
                    for &v in &self.active {
                        let vi = v as usize;
                        if self.quiet_horizon[vi] <= r {
                            match self.nodes[vi].quiet_until(self.arena.view(vi)) {
                                Some(q) => self.quiet_horizon[vi] = self.wake[vi].saturating_add(q),
                                None => {
                                    all_quiet = false;
                                    break;
                                }
                            }
                            if self.quiet_horizon[vi] <= r {
                                all_quiet = false;
                                break;
                            }
                        }
                        target = target.min(self.quiet_horizon[vi]);
                    }
                    if tag_ptr < n {
                        target = target.min(config.tag(self.by_tag[tag_ptr]));
                    }
                    target = target.min(opts.max_rounds);
                    if all_quiet && target > r {
                        // Every active node would have decided (and
                        // listened) in each skipped round: deliver the
                        // silent observations in bulk.
                        let skipped = (target - r) as usize;
                        for &v in &self.active {
                            self.arena.push_silence_n(v as usize, skipped);
                        }
                        rounds_leapt += skipped as u64;
                        r = target;
                        continue;
                    }
                }
            }

            let mut event = RoundEvent {
                round: r,
                ..Default::default()
            };

            // 1. Decide.
            self.actions.clear();
            for &v in &self.active {
                if self.wake[v as usize] < r {
                    let action = self.nodes[v as usize].decide(self.arena.view(v as usize));
                    self.actions.push((v, action));
                }
            }

            // 2. Collect transmitters and stamp neighbour counters.
            self.transmitters.clear();
            self.touched.clear();
            for &(v, action) in &self.actions {
                if let Action::Transmit(m) = action {
                    self.transmitters.push((v, m));
                }
            }
            for &(u, m) in &self.transmitters {
                for &w in csr.neighbors(u) {
                    let wi = w as usize;
                    if self.cnt_stamp[wi] != r {
                        self.cnt_stamp[wi] = r;
                        self.cnt[wi] = 0;
                        self.touched.push(w);
                    }
                    self.cnt[wi] += 1;
                    self.heard_msg[wi] = m;
                }
            }
            stats.transmissions += self.transmitters.len() as u64;

            // 3. Deliver to acting nodes.
            let mut retired = false;
            for &(v, action) in &self.actions {
                let vi = v as usize;
                match action {
                    Action::Transmit(_) => {
                        // A transmitter hears nothing: (∅). It was no
                        // committed listener, whatever it once claimed.
                        self.quiet_horizon[vi] = 0;
                        self.arena.push(vi, Obs::Silence);
                    }
                    Action::Listen => {
                        let heard = if self.cnt_stamp[vi] == r {
                            self.cnt[vi]
                        } else {
                            0
                        };
                        let msg = if heard == 1 {
                            self.heard_msg[vi]
                        } else {
                            Msg(0)
                        };
                        let obs = M::listener_obs(heard, msg);
                        record_listener_obs(obs, &mut stats);
                        if !matches!(obs, Obs::Silence) {
                            // Quiet claims hold only while the channel
                            // stays silent for the node: re-ask later.
                            self.quiet_horizon[vi] = 0;
                        }
                        if trace.is_some() {
                            match obs {
                                Obs::Heard(m) => event.received.push((v, m)),
                                Obs::Collision | Obs::Noise => event.collisions.push(v),
                                Obs::Silence => {}
                            }
                        }
                        self.arena.push(vi, obs);
                    }
                    Action::Terminate => {
                        self.done[vi] = r;
                        done_count += 1;
                        retired = true;
                        if trace.is_some() {
                            event.terminated.push(v);
                        }
                    }
                }
            }
            if retired {
                let done = &self.done;
                self.active.retain(|&v| done[v as usize] == ASLEEP);
            }

            // 4. Forced wake-ups: sleeping neighbours of transmitters, as
            //    the model dictates. Under the default model a collision
            //    leaves them asleep; other models may wake them with (~).
            for &w in &self.touched {
                let wi = w as usize;
                if self.wake[wi] == ASLEEP {
                    let msg = if self.cnt[wi] == 1 {
                        self.heard_msg[wi]
                    } else {
                        Msg(0)
                    };
                    if let Some(obs) = M::wake_obs(self.cnt[wi], msg) {
                        self.wake[wi] = r;
                        self.arena.push(wi, obs);
                        self.active.push(w);
                        stats.forced_wakeups += 1;
                        if trace.is_some() {
                            event.woke.push((w, obs));
                        }
                    }
                }
            }

            // 5. Spontaneous wake-ups at tag == r.
            while tag_ptr < n && config.tag(self.by_tag[tag_ptr]) == r {
                let w = self.by_tag[tag_ptr];
                tag_ptr += 1;
                let wi = w as usize;
                if self.wake[wi] == ASLEEP {
                    self.wake[wi] = r;
                    self.arena.push(wi, Obs::Silence);
                    self.active.push(w);
                    if trace.is_some() {
                        event.woke.push((w, Obs::Silence));
                    }
                }
            }

            if let Some(t) = trace.as_mut() {
                // An eventful round hands its transmitter buffer to the
                // trace outright (no clone); the next round starts from
                // the empty vector the take leaves behind. A quiet round
                // has nothing to hand over.
                if !self.transmitters.is_empty() || !event.is_quiet() {
                    event.transmitters = std::mem::take(&mut self.transmitters);
                    t.events.push(event);
                }
            }

            rounds_executed = r + 1;
            rounds_stepped += 1;
            r += 1;
        }

        Ok(Execution {
            wake_round: std::mem::take(&mut self.wake),
            done_round: std::mem::take(&mut self.done),
            histories: self.arena.histories(),
            rounds: rounds_executed,
            rounds_stepped,
            rounds_leapt,
            stats,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_segments_grow_and_relocate_correctly() {
        // Long histories force many segment relocations; the final owned
        // histories must be exactly the per-round observations.
        let mut arena = ObsArena::new(3);
        for i in 0..100u64 {
            arena.push(0, Obs::Heard(Msg(i)));
            if i % 2 == 0 {
                arena.push(1, Obs::Silence);
            }
            if i % 3 == 0 {
                arena.push(2, Obs::Collision);
            }
        }
        assert_eq!(arena.view(0).len(), 100);
        assert_eq!(arena.view(0).message_at(73), Some(Msg(73)));
        let hs = arena.histories();
        assert_eq!(hs[0].len(), 100);
        assert_eq!(hs[1].len(), 50);
        assert_eq!(hs[2].len(), 34);
        assert!(hs[1].all_silent());
        assert!((0..100).all(|i| hs[0].message_at(i) == Some(Msg(i as u64))));
    }

    #[test]
    fn arena_push_silence_n_appends_bulk_silence() {
        let mut arena = ObsArena::new(2);
        arena.push(0, Obs::Heard(Msg(1)));
        arena.push_silence_n(0, 1000);
        arena.push(0, Obs::Heard(Msg(2)));
        arena.push_silence_n(1, 3);
        let hs = arena.histories();
        assert_eq!(hs[0].len(), 1002);
        assert_eq!(hs[0].message_at(0), Some(Msg(1)));
        assert!(hs[0].as_slice()[1..1001].iter().all(|o| o.is_silence()));
        assert_eq!(hs[0].message_at(1001), Some(Msg(2)));
        assert_eq!(hs[1].len(), 3);
        assert!(hs[1].all_silent());
    }

    #[test]
    fn arena_reset_clears_segments_but_keeps_capacity() {
        let mut arena = ObsArena::new(2);
        for i in 0..500u64 {
            arena.push(0, Obs::Heard(Msg(i)));
            arena.push(1, Obs::Silence);
        }
        let warm = arena.data.capacity();
        assert!(warm >= 1000);
        arena.reset(3);
        assert_eq!(arena.data.len(), 0);
        assert_eq!(arena.data.capacity(), warm, "backing capacity survives");
        assert_eq!(arena.view(0).len(), 0);
        // segments work as new after the reset, and the silence-tail
        // invariant holds for the recycled buffer
        arena.push(2, Obs::Heard(Msg(9)));
        arena.push_silence_n(2, 20);
        let hs = arena.histories();
        assert!(hs[0].is_empty() && hs[1].is_empty());
        assert_eq!(hs[2].len(), 21);
        assert_eq!(hs[2].message_at(0), Some(Msg(9)));
        assert!(hs[2].as_slice()[1..].iter().all(|o| o.is_silence()));
    }

    #[test]
    fn workspace_reuse_matches_fresh_runs_across_sizes() {
        use crate::drip::{SilentFactory, WaitThenTransmitFactory};
        use radio_graph::{generators, Configuration};

        let small = Configuration::new(generators::path(3), vec![0, 1, 2]).unwrap();
        let large = Configuration::new(generators::star(8), vec![0, 1, 1, 1, 2, 3, 4, 9]).unwrap();
        let wtt = WaitThenTransmitFactory {
            wait: 1,
            msg: Msg(7),
            lifetime: 12,
        };
        let silent = SilentFactory { lifetime: 5 };

        let mut ws = SimWorkspace::new();
        // grow, shrink, grow again — every run must equal its fresh twin
        for (config, factory) in [
            (&large, &wtt as &dyn DripFactory),
            (&small, &silent as &dyn DripFactory),
            (&large, &wtt as &dyn DripFactory),
        ] {
            let reused = ws.run(config, factory, RunOpts::default()).unwrap();
            let fresh = crate::Executor::run(config, factory, RunOpts::default()).unwrap();
            assert_eq!(reused.histories, fresh.histories);
            assert_eq!(reused.wake_round, fresh.wake_round);
            assert_eq!(reused.done_round, fresh.done_round);
            assert_eq!(reused.rounds, fresh.rounds);
            assert_eq!(reused.stats, fresh.stats);
        }
    }

    #[test]
    fn workspace_survives_a_round_limit_error() {
        use crate::drip::SilentFactory;
        use radio_graph::{generators, Configuration};

        let config = Configuration::new(generators::path(2), vec![0, 0]).unwrap();
        let mut ws = SimWorkspace::new();
        let err = ws
            .run(
                &config,
                &SilentFactory { lifetime: 100 },
                RunOpts::with_max_rounds(10),
            )
            .unwrap_err();
        assert!(matches!(err, SimError::RoundLimit { .. }));
        // the aborted run must not poison the next one
        let ok = ws
            .run(&config, &SilentFactory { lifetime: 4 }, RunOpts::default())
            .unwrap();
        let fresh =
            crate::Executor::run(&config, &SilentFactory { lifetime: 4 }, RunOpts::default())
                .unwrap();
        assert_eq!(ok.histories, fresh.histories);
        assert_eq!(ok.rounds, fresh.rounds);
    }

    #[test]
    fn traced_run_hands_transmitter_buffers_to_the_trace() {
        use crate::drip::WaitThenTransmitFactory;
        use radio_graph::{generators, Configuration};

        let config = Configuration::new(generators::path(3), vec![0, 9, 9]).unwrap();
        let factory = WaitThenTransmitFactory {
            wait: 0,
            msg: Msg(5),
            lifetime: 8,
        };
        let mut ws = SimWorkspace::new();
        let reused = ws
            .run(&config, &factory, RunOpts::default().traced())
            .unwrap();
        let fresh = crate::Executor::run(&config, &factory, RunOpts::default().traced()).unwrap();
        assert_eq!(
            reused.trace.as_ref().unwrap().events,
            fresh.trace.as_ref().unwrap().events
        );
        // the transmission rounds made it into the trace with their payload
        assert!(reused
            .trace
            .unwrap()
            .events
            .iter()
            .any(|e| !e.transmitters.is_empty()));
    }
}
