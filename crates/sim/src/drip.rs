//! DRIP traits and a library of elementary DRIPs.
//!
//! A **DRIP** (Distributed Radio Interaction Protocol, paper Section 2.2) is
//! a function `D` from local histories to actions; every node runs the same
//! `D`. Two representations are provided:
//!
//! * [`PureDrip`] / [`PureFactory`] — literally a function
//!   `Fn(HistoryView) -> Action`, the paper's definition verbatim. Great
//!   for
//!   tests and adversary candidates.
//! * [`DripNode`] / [`DripFactory`] — a per-node state machine spawned from
//!   a shared factory. The engine calls [`DripNode::decide`] exactly once
//!   per local round in order, so implementations may cache derived state
//!   instead of re-scanning their history; the contract is that the decision
//!   must remain a function of the history alone (anonymity/uniformity).
//!
//! The factory receives no node identity — the only per-configuration
//! knowledge a *dedicated* algorithm may embed is whatever the factory
//! itself closes over (e.g. the canonical schedule of `anon-radio`), which
//! mirrors the paper's "algorithm dedicated to configuration G".

use crate::history::HistoryView;
use crate::msg::{Action, Msg};

/// A per-node DRIP state machine.
pub trait DripNode {
    /// Returns the action for the next local round `i`, given the history
    /// `H[0..i-1]` (so `history.len() == i ≥ 1`; entry 0 is the wake-up
    /// observation).
    ///
    /// The history arrives as a borrowed [`HistoryView`] — in the engine's
    /// hot loop it points straight into the shared observation arena, so
    /// deciding a round allocates nothing. Call
    /// [`History::view`] to drive a node from an owned history.
    ///
    /// The engine guarantees calls happen in increasing local-round order
    /// and never again after `Action::Terminate` is returned. Calls are
    /// once per local round, **except** that the time-leap scheduler may
    /// skip the calls a [`DripNode::quiet_until`] claim covers: when the
    /// node has committed to listening through local round `q − 1` and
    /// only silence was observed meanwhile, the next `decide` may arrive
    /// with `history` extended by the skipped `(∅)` entries. A node that
    /// returns `Some(q)` must therefore behave identically whether or not
    /// those covered calls happen.
    fn decide(&mut self, history: HistoryView<'_>) -> Action;

    /// Quiescence hint for the time-leap scheduler.
    ///
    /// Called with the same history the next [`DripNode::decide`] would
    /// receive (`history.len()` = the next local round `i`). Returning
    /// `Some(q)` commits the node to `Action::Listen` for every local
    /// round `j` with `i ≤ j < q`, **provided** all observations it makes
    /// in those rounds are `(∅)` — the engine only relies on the claim
    /// while the channel stays silent, and re-asks once anything else is
    /// heard. Returning `None` (the default) makes no claim; the engine
    /// then executes the round normally.
    ///
    /// The claim licenses the engine to skip the covered `decide` calls
    /// entirely, appending the silent observations in bulk (see
    /// `decide`'s contract). Implementations must not mutate state here.
    fn quiet_until(&self, history: HistoryView<'_>) -> Option<u64> {
        let _ = history;
        None
    }

    /// Streaming-observation hook: the engine calls this whenever a
    /// *non-silent* observation is recorded for this node, with `t` the
    /// local round the entry lands at (`H[t] = obs`). Silence — including
    /// the bulk `(∅)` stretches a time-leap appends — is never reported;
    /// a node that cares about silent rounds reads them off the growing
    /// `history.len()` in [`DripNode::decide`].
    ///
    /// The default is a no-op. Implementations that fold their history
    /// incrementally (e.g. the canonical DRIP's streaming mode) use this
    /// to avoid ever re-reading history content, which lets the engine
    /// run them with length-only histories
    /// ([`RunOpts::len_only`](crate::RunOpts::len_only)) — no observation
    /// storage at all.
    fn observe(&mut self, t: u64, obs: crate::msg::Obs) {
        let _ = (t, obs);
    }

    /// After termination: whether this node elected itself, if the
    /// implementation tracks that itself. `None` (the default) means the
    /// caller must derive leadership from the recorded history (the
    /// classic decision-function route). Nodes that fold their history
    /// online return `Some(..)` from the round they terminate, which is
    /// what lets a length-only run still produce an election outcome.
    fn leader_claim(&self) -> Option<bool> {
        None
    }
}

/// Spawns identical [`DripNode`]s — one per node of the network.
pub trait DripFactory: Sync {
    /// Creates the state machine installed at each node.
    fn spawn(&self) -> Box<dyn DripNode>;

    /// Human-readable protocol name (used in traces and experiment tables).
    fn name(&self) -> String {
        "drip".to_string()
    }
}

/// The paper's definition made executable: a pure function of the history.
pub struct PureDrip<F: Fn(HistoryView<'_>) -> Action> {
    f: std::sync::Arc<F>,
}

impl<F: Fn(HistoryView<'_>) -> Action> DripNode for PureDrip<F> {
    fn decide(&mut self, history: HistoryView<'_>) -> Action {
        (self.f)(history)
    }
}

/// Factory for [`PureDrip`]s sharing one decision function.
pub struct PureFactory<F: Fn(HistoryView<'_>) -> Action> {
    f: std::sync::Arc<F>,
    name: String,
}

impl<F: Fn(HistoryView<'_>) -> Action> PureFactory<F> {
    /// Wraps a pure decision function as a DRIP factory.
    pub fn new(name: impl Into<String>, f: F) -> PureFactory<F> {
        PureFactory {
            f: std::sync::Arc::new(f),
            name: name.into(),
        }
    }
}

impl<F: Fn(HistoryView<'_>) -> Action + Send + Sync + 'static> DripFactory for PureFactory<F> {
    fn spawn(&self) -> Box<dyn DripNode> {
        Box::new(PureDrip {
            f: std::sync::Arc::clone(&self.f),
        })
    }

    fn name(&self) -> String {
        self.name.clone()
    }
}

// ---------------------------------------------------------------------------
// Elementary DRIPs
// ---------------------------------------------------------------------------

/// Listens for `lifetime` rounds, then terminates. Never transmits.
pub struct SilentFactory {
    /// Local round at which to terminate.
    pub lifetime: u64,
}

impl DripFactory for SilentFactory {
    fn spawn(&self) -> Box<dyn DripNode> {
        let lifetime = self.lifetime;
        Box::new(StepDrip::with_quiet(
            Box::new(move |i, _| {
                if i >= lifetime {
                    Action::Terminate
                } else {
                    Action::Listen
                }
            }),
            // Listens in every round before the terminating one.
            Box::new(move |i, _| (i < lifetime).then_some(lifetime)),
        ))
    }

    fn name(&self) -> String {
        format!("silent({})", self.lifetime)
    }
}

/// Transmits `msg` every round from local round `start` until terminating
/// at local round `lifetime`.
pub struct BeaconFactory {
    /// First transmitting local round.
    pub start: u64,
    /// Local round at which to terminate.
    pub lifetime: u64,
    /// The transmitted message.
    pub msg: Msg,
}

impl DripFactory for BeaconFactory {
    fn spawn(&self) -> Box<dyn DripNode> {
        let (start, lifetime, msg) = (self.start, self.lifetime, self.msg);
        Box::new(StepDrip::with_quiet(
            Box::new(move |i, _| {
                if i >= lifetime {
                    Action::Terminate
                } else if i >= start {
                    Action::Transmit(msg)
                } else {
                    Action::Listen
                }
            }),
            // Quiet only during the initial listening window.
            Box::new(move |i, _| (i < start.min(lifetime)).then_some(start.min(lifetime))),
        ))
    }

    fn name(&self) -> String {
        format!("beacon(start={}, life={})", self.start, self.lifetime)
    }
}

/// Listens for `wait` rounds, transmits `msg` once in local round
/// `wait + 1`, then listens until terminating at `lifetime`.
pub struct WaitThenTransmitFactory {
    /// Number of initial listening rounds.
    pub wait: u64,
    /// The transmitted message.
    pub msg: Msg,
    /// Local round at which to terminate.
    pub lifetime: u64,
}

impl DripFactory for WaitThenTransmitFactory {
    fn spawn(&self) -> Box<dyn DripNode> {
        let (wait, msg, lifetime) = (self.wait, self.msg, self.lifetime);
        Box::new(StepDrip::with_quiet(
            Box::new(move |i, _| {
                if i >= lifetime {
                    Action::Terminate
                } else if i == wait + 1 {
                    Action::Transmit(msg)
                } else {
                    Action::Listen
                }
            }),
            // Two quiet stretches: before the transmission and after it.
            Box::new(move |i, _| {
                if i >= lifetime || i == (wait + 1).min(lifetime) {
                    None
                } else if i < wait + 1 {
                    Some((wait + 1).min(lifetime))
                } else {
                    Some(lifetime)
                }
            }),
        ))
    }

    fn name(&self) -> String {
        format!("wait-then-transmit(wait={})", self.wait)
    }
}

/// Echo: transmits once in the round right after first hearing a message
/// (re-broadcasting it), otherwise listens; terminates at `lifetime`.
/// A building block for wake-up chains in tests.
pub struct EchoFactory {
    /// Local round at which to terminate.
    pub lifetime: u64,
}

impl DripFactory for EchoFactory {
    fn spawn(&self) -> Box<dyn DripNode> {
        let lifetime = self.lifetime;
        Box::new(StepDrip::with_quiet(
            Box::new(move |i, h: HistoryView| {
                if i >= lifetime {
                    return Action::Terminate;
                }
                match h.first_message() {
                    Some(r) if (r + 1) as u64 == i => {
                        Action::Transmit(h.message_at(r).expect("entry is Heard"))
                    }
                    _ => Action::Listen,
                }
            }),
            // While no message was heard, continued silence means listening
            // until termination — the quiet_until contract is conditioned
            // on exactly that. A heard message pins the echo round.
            Box::new(move |i, h: HistoryView| {
                if i >= lifetime {
                    return None;
                }
                let next_act = match h.first_message() {
                    // The echo round is still ahead.
                    Some(r) if (r + 1) as u64 >= i => ((r + 1) as u64).min(lifetime),
                    // Echo already sent (or nothing heard): silent to the end.
                    _ => lifetime,
                };
                (next_act > i).then_some(next_act)
            }),
        ))
    }

    fn name(&self) -> String {
        format!("echo(life={})", self.lifetime)
    }
}

/// The boxed step function of a [`StepDrip`].
type StepFn = Box<dyn Fn(u64, HistoryView<'_>) -> Action + Send>;

/// The boxed quiescence hint of a [`StepDrip`] (see
/// [`DripNode::quiet_until`]).
type QuietFn = Box<dyn Fn(u64, HistoryView<'_>) -> Option<u64> + Send>;

/// Internal adapter: a DRIP given as `(local_round, history) -> action`,
/// optionally with a matching quiescence hint. The round argument is
/// redundant (it equals `history.len()`) but makes the elementary DRIPs
/// above read like the paper's prose.
struct StepDrip {
    step: StepFn,
    quiet: Option<QuietFn>,
}

impl StepDrip {
    fn with_quiet(step: StepFn, quiet: QuietFn) -> StepDrip {
        StepDrip {
            step,
            quiet: Some(quiet),
        }
    }
}

impl DripNode for StepDrip {
    fn decide(&mut self, history: HistoryView<'_>) -> Action {
        (self.step)(history.len() as u64, history)
    }

    fn quiet_until(&self, history: HistoryView<'_>) -> Option<u64> {
        self.quiet
            .as_ref()
            .and_then(|q| q(history.len() as u64, history))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::History;
    use crate::msg::Obs;

    fn hist(n: usize) -> History {
        History::from_entries(vec![Obs::Silence; n])
    }

    #[test]
    fn silent_listens_then_terminates() {
        let f = SilentFactory { lifetime: 3 };
        let mut node = f.spawn();
        assert_eq!(node.decide(hist(1).view()), Action::Listen);
        assert_eq!(node.decide(hist(2).view()), Action::Listen);
        assert_eq!(node.decide(hist(3).view()), Action::Terminate);
        assert_eq!(f.name(), "silent(3)");
    }

    #[test]
    fn beacon_transmits_in_window() {
        let f = BeaconFactory {
            start: 2,
            lifetime: 4,
            msg: Msg(5),
        };
        let mut node = f.spawn();
        assert_eq!(node.decide(hist(1).view()), Action::Listen);
        assert_eq!(node.decide(hist(2).view()), Action::Transmit(Msg(5)));
        assert_eq!(node.decide(hist(3).view()), Action::Transmit(Msg(5)));
        assert_eq!(node.decide(hist(4).view()), Action::Terminate);
    }

    #[test]
    fn wait_then_transmit_fires_once() {
        let f = WaitThenTransmitFactory {
            wait: 2,
            msg: Msg::ONE,
            lifetime: 6,
        };
        let mut node = f.spawn();
        assert_eq!(node.decide(hist(1).view()), Action::Listen);
        assert_eq!(node.decide(hist(2).view()), Action::Listen);
        assert_eq!(node.decide(hist(3).view()), Action::Transmit(Msg::ONE));
        assert_eq!(node.decide(hist(4).view()), Action::Listen);
        assert_eq!(node.decide(hist(6).view()), Action::Terminate);
    }

    #[test]
    fn echo_rebroadcasts_first_message() {
        let f = EchoFactory { lifetime: 10 };
        let mut node = f.spawn();
        // woken by message in round 0 → transmit in round 1
        let woken = History::from_entries(vec![Obs::Heard(Msg(3))]);
        assert_eq!(node.decide(woken.view()), Action::Transmit(Msg(3)));
        // heard in round 2 → transmit in round 3 only
        let mut node2 = f.spawn();
        let h = History::from_entries(vec![Obs::Silence, Obs::Silence, Obs::Heard(Msg(8))]);
        assert_eq!(node2.decide(h.view()), Action::Transmit(Msg(8)));
        let h4 = History::from_entries(vec![
            Obs::Silence,
            Obs::Silence,
            Obs::Heard(Msg(8)),
            Obs::Silence,
        ]);
        assert_eq!(node2.decide(h4.view()), Action::Listen);
    }

    #[test]
    fn quiet_hints_match_step_behaviour() {
        // silent: committed listener until the terminating round
        let silent = SilentFactory { lifetime: 5 }.spawn();
        assert_eq!(silent.quiet_until(hist(1).view()), Some(5));
        assert_eq!(silent.quiet_until(hist(4).view()), Some(5));
        assert_eq!(silent.quiet_until(hist(5).view()), None);

        // beacon: quiet only before `start`
        let beacon = BeaconFactory {
            start: 3,
            lifetime: 6,
            msg: Msg(1),
        }
        .spawn();
        assert_eq!(beacon.quiet_until(hist(1).view()), Some(3));
        assert_eq!(beacon.quiet_until(hist(3).view()), None);
        assert_eq!(beacon.quiet_until(hist(4).view()), None);

        // wait-then-transmit: quiet before and after the single transmission
        let wtt = WaitThenTransmitFactory {
            wait: 2,
            msg: Msg(1),
            lifetime: 8,
        }
        .spawn();
        assert_eq!(wtt.quiet_until(hist(1).view()), Some(3));
        assert_eq!(wtt.quiet_until(hist(3).view()), None, "transmit round");
        assert_eq!(wtt.quiet_until(hist(4).view()), Some(8));
        assert_eq!(wtt.quiet_until(hist(8).view()), None, "terminate round");

        // pure DRIPs make no claim (trait default)
        let pure = PureFactory::new("listen", |_h: HistoryView| Action::Listen).spawn();
        assert_eq!(pure.quiet_until(hist(1).view()), None);
    }

    #[test]
    fn echo_quiet_hint_tracks_the_first_message() {
        let f = EchoFactory { lifetime: 10 };
        let node = f.spawn();
        // nothing heard: silence means silent to the end
        assert_eq!(node.quiet_until(hist(3).view()), Some(10));
        // message at local 2 → echo at 3: claim stops there
        let h = History::from_entries(vec![Obs::Silence, Obs::Silence, Obs::Heard(Msg(4))]);
        assert_eq!(node.quiet_until(h.view()), None, "echo round is next");
        // echo sent: quiet until termination
        let mut h4 = h.clone();
        h4.push(Obs::Silence);
        h4.push(Obs::Silence);
        assert_eq!(node.quiet_until(h4.view()), Some(10));
    }

    #[test]
    fn pure_factory_shares_one_function() {
        let f = PureFactory::new("always-listen", |_h: HistoryView| Action::Listen);
        let mut a = f.spawn();
        let mut b = f.spawn();
        assert_eq!(a.decide(hist(1).view()), Action::Listen);
        assert_eq!(b.decide(hist(5).view()), Action::Listen);
        assert_eq!(f.name(), "always-listen");
    }
}
