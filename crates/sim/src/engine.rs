//! The round-by-round executor of the radio model.
//!
//! [`Executor::run`] plays a [`DripFactory`] on a
//! [`radio_graph::Configuration`] and produces an
//! [`Execution`]: per-node histories, wake and termination rounds, and
//! aggregate statistics. The engine is fully deterministic — same
//! configuration, DRIP, and channel model, same execution, bit for bit.
//!
//! Channel semantics are pluggable: [`Executor::run_model`] is generic
//! over a [`RadioModel`], which decides what listeners perceive and what
//! wakes sleepers. [`Executor::run`] is the paper's model
//! ([`NoCollisionDetection`]).
//!
//! # Round anatomy (global round `r`)
//!
//! 1. **Decide** — every awake, non-terminated node whose wake round is
//!    `< r` computes its action from its history (its local round is
//!    `r − wake`).
//! 2. **Transmit** — transmitters are collected; for every neighbour of a
//!    transmitter the engine counts transmitting neighbours (round-stamped
//!    counters, no per-round clearing).
//! 3. **Deliver** — transmitters record silence (they hear nothing);
//!    listeners record what [`RadioModel::listener_obs`] dictates;
//!    terminators are retired.
//! 4. **Forced wake-ups** — sleeping neighbours of transmitters wake
//!    exactly when [`RadioModel::wake_obs`] says so, with the entry it
//!    returns as `H[0]`. Under the default model that is "exactly one
//!    message heard" and sleeping nodes under a collision stay asleep
//!    (noise is not a message).
//! 5. **Spontaneous wake-ups** — sleeping nodes whose tag equals `r` wake
//!    with `H[0] = (∅)`.
//!
//! Step 4 runs before step 5 so a message arriving exactly in a node's tag
//! round yields the forced-style `H[0] = (M)` — in every model.
//!
//! # Time-leap scheduling
//!
//! Real workloads are dominated by silence (the patient transform listens
//! for σ rounds, the canonical schedule is almost entirely transmission-
//! free), so the engine is event-driven: before executing a round it
//! checks whether a stretch of rounds is provably uneventful and, if so,
//! jumps straight over it ([`RunOpts::leap`], on by default):
//!
//! * **Everyone asleep** — nothing can happen before the next pending
//!   wake-up tag: jump there directly.
//! * **Everyone a committed listener** — every active node advertises a
//!   quiescence horizon via
//!   [`DripNode::quiet_until`](crate::drip::DripNode::quiet_until); if all
//!   do, no transmissions (hence no deliveries, forced wake-ups, or
//!   terminations) can occur before the earliest of {min horizon, next
//!   tag}: jump there, appending the skipped `(∅)` observations in bulk
//!   (the arena's `push_silence_n`).
//!
//! Leaping is a pure wall-clock optimization: the resulting [`Execution`]
//! (histories, wake/done rounds, stats, trace round numbers) is
//! bit-identical to a step-by-step run — the differential suite enforces
//! this against both the non-leaping mode and the naive reference engine
//! ([`crate::engine_ref`], which never leaps). Only
//! [`Execution::rounds_stepped`] / [`Execution::rounds_leapt`] reveal the
//! difference.
//!
//! # Hot-loop memory layout
//!
//! All per-node engine state is struct-of-arrays, and all observations
//! live in one shared observation arena: per node an
//! `(offset, len, capacity)` segment into a single flat `Vec<Obs>`,
//! relocated with geometric growth when full. Steady-state rounds
//! therefore allocate nothing — no per-node `Vec<Obs>` ever exists during
//! the run — and a node's history reaches its DRIP as a borrowed
//! [`HistoryView`](crate::HistoryView) straight into the arena. Owned
//! [`History`] values are materialized once, when the [`Execution`] is
//! assembled.
//!
//! # Batch execution
//!
//! The run loop itself lives in [`SimWorkspace`](crate::SimWorkspace),
//! which owns all of the state above and recycles it across runs;
//! [`Executor`] is the stateless one-shot façade (a fresh workspace per
//! call). Batch workloads — [`crate::parallel`], the campaign layer —
//! keep one long-lived workspace per worker thread instead.

use radio_graph::{Configuration, NodeId};

use crate::drip::DripFactory;
use crate::history::History;
use crate::model::{NoCollisionDetection, RadioModel};
use crate::msg::Obs;
use crate::trace::Trace;
use crate::workspace::SimWorkspace;

/// Execution limits and instrumentation switches.
#[derive(Debug, Clone, Copy)]
pub struct RunOpts {
    /// Abort with [`SimError::RoundLimit`] if any node is still running
    /// once exactly this many global rounds (`0..max_rounds`) have been
    /// played. `max_rounds` itself is never executed.
    pub max_rounds: u64,
    /// Record a [`Trace`] of eventful rounds.
    pub record_trace: bool,
    /// Enable the time-leap scheduler: fast-forward over stretches that
    /// are provably free of transmissions, wake-ups, and terminations
    /// (see [`DripNode::quiet_until`](crate::drip::DripNode::quiet_until)).
    /// On by default; the produced [`Execution`] is bit-identical either
    /// way — only [`Execution::rounds_stepped`] /
    /// [`Execution::rounds_leapt`] and wall-clock time differ.
    pub leap: bool,
    /// Store histories sparsely: only non-silent observations are kept,
    /// silence exists virtually (see
    /// [`HistoryView`](crate::history::HistoryView)). Semantically
    /// invisible — every accessor except `HistoryView::as_slice` answers
    /// identically and results are bit-for-bit the same — but
    /// silence-dominated million-node histories shrink by orders of
    /// magnitude. Off by default because DRIPs that read raw slices
    /// (e.g. the patient transform) would panic; the canonical election
    /// path enables it.
    pub sparse_histories: bool,
    /// Store history *lengths* only: no observation content is retained
    /// at all. Non-silent observations are still delivered to the nodes
    /// through [`DripNode::observe`](crate::drip::DripNode::observe) as
    /// they happen, and the election outcome is read from
    /// [`DripNode::leader_claim`](crate::drip::DripNode::leader_claim) —
    /// so this mode is only sound for DRIPs that fold their history
    /// online (the canonical DRIP's streaming mode). Views still answer
    /// `len()` correctly but report every entry as `(∅)`; materializing
    /// an [`Execution`] in this mode is a contract violation (debug
    /// asserted). This is the million-node election mode: per-node
    /// memory drops to one counter.
    pub len_only_histories: bool,
}

impl Default for RunOpts {
    fn default() -> RunOpts {
        RunOpts {
            max_rounds: 50_000_000,
            record_trace: false,
            leap: true,
            sparse_histories: false,
            len_only_histories: false,
        }
    }
}

impl RunOpts {
    /// Default options with a custom round limit.
    pub fn with_max_rounds(max_rounds: u64) -> RunOpts {
        RunOpts {
            max_rounds,
            ..Default::default()
        }
    }

    /// Enables trace recording.
    pub fn traced(mut self) -> RunOpts {
        self.record_trace = true;
        self
    }

    /// Disables the time-leap scheduler: every global round is executed
    /// one by one (the pre-leap engine behaviour).
    pub fn no_leap(mut self) -> RunOpts {
        self.leap = false;
        self
    }

    /// Enables sparse (silence-virtualizing) history storage — see
    /// [`RunOpts::sparse_histories`].
    pub fn sparse(mut self) -> RunOpts {
        self.sparse_histories = true;
        self
    }

    /// Enables length-only history storage — see
    /// [`RunOpts::len_only_histories`]. Only sound for DRIPs that fold
    /// their history online via
    /// [`DripNode::observe`](crate::drip::DripNode::observe).
    pub fn len_only(mut self) -> RunOpts {
        self.len_only_histories = true;
        self
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The DRIP did not terminate on every node within `max_rounds`.
    RoundLimit {
        /// The configured limit that was hit.
        max_rounds: u64,
        /// Number of nodes still not terminated.
        still_running: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::RoundLimit {
                max_rounds,
                still_running,
            } => write!(
                f,
                "round limit {max_rounds} reached with {still_running} node(s) still running"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Aggregate counters over one execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Total transmissions over all nodes and rounds.
    pub transmissions: u64,
    /// Total messages successfully received by awake listeners.
    pub messages_received: u64,
    /// Total collision/noise observations by awake listeners (`(∗)` plus,
    /// under carrier-sensing models, `(~)`).
    pub collisions_observed: u64,
    /// Number of nodes woken by channel activity rather than their tag
    /// (a message under the default model; possibly noise under others).
    pub forced_wakeups: u64,
}

/// The result of running a DRIP on a configuration.
#[derive(Debug, Clone)]
pub struct Execution {
    /// Global round in which each node woke.
    pub wake_round: Vec<u64>,
    /// Global round in which each node decided `terminate`.
    pub done_round: Vec<u64>,
    /// Final local history of each node.
    pub histories: Vec<History>,
    /// Number of global rounds simulated (index of the last eventful round
    /// plus one). Identical whether or not the engine leapt.
    pub rounds: u64,
    /// Global rounds the engine actually executed one by one. Always
    /// `rounds_stepped + rounds_leapt == rounds`; without time-leap the
    /// whole run is stepped.
    pub rounds_stepped: u64,
    /// Global rounds the time-leap scheduler skipped as provably quiet.
    pub rounds_leapt: u64,
    /// Aggregate counters.
    pub stats: ExecStats,
    /// Recorded trace, when requested via [`RunOpts::record_trace`].
    pub trace: Option<Trace>,
}

impl Execution {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.histories.len()
    }

    /// The local round in which node `v` terminated (the paper's
    /// `done_v`).
    pub fn done_local(&self, v: NodeId) -> u64 {
        self.done_round[v as usize] - self.wake_round[v as usize]
    }

    /// History of node `v`.
    pub fn history(&self, v: NodeId) -> &History {
        &self.histories[v as usize]
    }

    /// The wake-up observation `H[0]` of node `v`.
    pub fn wake_obs(&self, v: NodeId) -> Obs {
        self.histories[v as usize][0]
    }

    /// True if node `v` woke spontaneously (in its tag round, hearing
    /// nothing).
    pub fn woke_spontaneously(&self, v: NodeId) -> bool {
        self.wake_obs(v).is_silence()
    }

    /// Nodes grouped by identical history — the partition the whole theory
    /// revolves around. Groups are in first-seen order.
    ///
    /// Grouping is a single pass through an [`radio_util::FxHashMap`] keyed
    /// on the history contents (one hash of each node's observation
    /// segment), not a linear scan over existing groups per node.
    pub fn history_classes(&self) -> Vec<Vec<NodeId>> {
        let mut groups: Vec<Vec<NodeId>> = Vec::new();
        let mut index: radio_util::FxHashMap<&History, usize> = radio_util::FxHashMap::default();
        for (v, h) in self.histories.iter().enumerate() {
            match index.get(h) {
                Some(&g) => groups[g].push(v as NodeId),
                None => {
                    index.insert(h, groups.len());
                    groups.push(vec![v as NodeId]);
                }
            }
        }
        groups
    }

    /// Nodes whose history is unique in the execution.
    pub fn unique_history_nodes(&self) -> Vec<NodeId> {
        self.history_classes()
            .into_iter()
            .filter(|g| g.len() == 1)
            .map(|g| g[0])
            .collect()
    }
}

/// The simulator. Stateless; [`Executor::run`] may be called freely from
/// multiple threads. Each call builds a fresh [`SimWorkspace`] — callers
/// running many simulations back to back should hold a workspace of their
/// own and call [`SimWorkspace::run`] instead.
#[derive(Debug, Clone, Copy, Default)]
pub struct Executor;

impl Executor {
    /// Runs `factory`'s DRIP on `config` under the paper's channel model
    /// ([`NoCollisionDetection`]) until every node has terminated, or
    /// fails with [`SimError::RoundLimit`].
    pub fn run(
        config: &Configuration,
        factory: &dyn DripFactory,
        opts: RunOpts,
    ) -> Result<Execution, SimError> {
        Self::run_model::<NoCollisionDetection>(config, factory, opts)
    }

    /// [`Executor::run`] under an explicit channel model `M`.
    pub fn run_model<M: RadioModel>(
        config: &Configuration,
        factory: &dyn DripFactory,
        opts: RunOpts,
    ) -> Result<Execution, SimError> {
        SimWorkspace::new().run_model::<M>(config, factory, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drip::{BeaconFactory, EchoFactory, SilentFactory, WaitThenTransmitFactory};
    use crate::model::{Beeping, CollisionDetection};
    use crate::msg::Msg;
    use radio_graph::{generators, Configuration};

    fn cfg(graph: radio_graph::Graph, tags: Vec<u64>) -> Configuration {
        Configuration::new(graph, tags).unwrap()
    }

    #[test]
    fn silent_drip_runs_and_terminates() {
        let c = cfg(generators::path(3), vec![0, 1, 2]);
        let ex = Executor::run(&c, &SilentFactory { lifetime: 4 }, RunOpts::default()).unwrap();
        assert_eq!(ex.wake_round, vec![0, 1, 2]);
        // each node terminates 4 local rounds after wake
        assert_eq!(ex.done_round, vec![4, 5, 6]);
        assert_eq!(ex.done_local(2), 4);
        assert!(ex.histories.iter().all(|h| h.all_silent()));
        assert_eq!(ex.stats.transmissions, 0);
        assert_eq!(ex.rounds, 7);
    }

    #[test]
    fn simultaneous_transmitters_hear_nothing() {
        // path 0-1-2, all awake at 0: everyone transmits in local round 1
        // (= global 1). The middle node has 2 transmitting neighbours but it
        // also transmits, so it hears nothing — the paper's "a node that
        // transmits in a given round does not hear anything".
        let c = cfg(generators::path(3), vec![0, 0, 0]);
        let ex = Executor::run(
            &c,
            &WaitThenTransmitFactory {
                wait: 0,
                msg: Msg(7),
                lifetime: 3,
            },
            RunOpts::default(),
        )
        .unwrap();
        assert_eq!(ex.stats.transmissions, 3);
        assert_eq!(ex.stats.messages_received, 0);
        assert_eq!(ex.stats.collisions_observed, 0);
        assert!(ex.histories.iter().all(|h| h.all_silent()));
    }

    #[test]
    fn staggered_transmission_delivers_message() {
        // node 0 wakes at 0 and transmits at global 1; nodes 1,2 wake at 5:
        // they are asleep during the transmission → node 1 is force-woken.
        let c = cfg(generators::path(3), vec![0, 5, 5]);
        let ex = Executor::run(
            &c,
            &WaitThenTransmitFactory {
                wait: 0,
                msg: Msg(9),
                lifetime: 8,
            },
            RunOpts::default(),
        )
        .unwrap();
        assert_eq!(ex.wake_round[1], 1, "forced wake-up at transmission round");
        assert_eq!(ex.wake_obs(1), Obs::Heard(Msg(9)));
        assert!(!ex.woke_spontaneously(1));
        // node 1, once awake, itself transmits in its local round 1
        // (global 2), force-waking node 2 well before its tag 5.
        assert_eq!(ex.wake_round[2], 2);
        assert_eq!(ex.wake_obs(2), Obs::Heard(Msg(9)));
        assert_eq!(ex.stats.forced_wakeups, 2);
    }

    #[test]
    fn collision_observed_by_listener() {
        // star: centre 0 (tag 0) with leaves 1,2,3 (tag 1). The centre
        // transmits at global 1 alone; the leaves are woken by it and all
        // transmit at global 2, while the centre listens → collision.
        let c = cfg(generators::star(4), vec![0, 1, 1, 1]);
        let ex = Executor::run(
            &c,
            &WaitThenTransmitFactory {
                wait: 0,
                msg: Msg(2),
                lifetime: 6,
            },
            RunOpts::default(),
        )
        .unwrap();
        // center transmits at global 1 (alone → leaves asleep get woken...
        // leaves are asleep at r=1 with tag 1: spontaneous wake also at 1.
        // Forced wake runs first: each leaf hears exactly one transmitter
        // (the center) → H[0]=(M).
        for leaf in 1..4 {
            assert_eq!(ex.wake_obs(leaf), Obs::Heard(Msg(2)));
            assert_eq!(ex.wake_round[leaf as usize], 1);
        }
        // leaves transmit at global 2 (their local round 1): center listens
        // and observes a collision (3 transmitting neighbours).
        assert_eq!(ex.history(0).get(2), Some(Obs::Collision));
        assert_eq!(ex.stats.collisions_observed, 1);
        let _ = c;
    }

    #[test]
    fn collisions_do_not_wake_sleepers() {
        // path 1-0-2 shape: use star(3): center 0, leaves 1,2. Leaves wake
        // at 0, transmit at global 1 simultaneously; center tag is 9. The
        // collision at the sleeping center must NOT wake it.
        let c = cfg(generators::star(3), vec![9, 0, 0]);
        let ex = Executor::run(
            &c,
            &WaitThenTransmitFactory {
                wait: 0,
                msg: Msg(1),
                lifetime: 12,
            },
            RunOpts::default(),
        )
        .unwrap();
        assert_eq!(
            ex.wake_round[0], 9,
            "collision must not wake the sleeping centre"
        );
        assert!(ex.woke_spontaneously(0));
        assert_eq!(ex.stats.forced_wakeups, 0);
        // and the collision is not even observed (nobody awake listened)
        assert_eq!(ex.stats.collisions_observed, 0);
    }

    #[test]
    fn collision_detection_model_wakes_sleepers_with_noise() {
        // Same scenario as collisions_do_not_wake_sleepers, but under the
        // CollisionDetection model the sleeping centre IS woken — by noise,
        // recording (~) as its wake-up entry.
        let c = cfg(generators::star(3), vec![9, 0, 0]);
        let ex = Executor::run_model::<CollisionDetection>(
            &c,
            &WaitThenTransmitFactory {
                wait: 0,
                msg: Msg(1),
                lifetime: 12,
            },
            RunOpts::default(),
        )
        .unwrap();
        assert_eq!(ex.wake_round[0], 1, "noise wakes the centre at global 1");
        assert_eq!(ex.wake_obs(0), Obs::Noise);
        assert!(!ex.woke_spontaneously(0));
        assert_eq!(ex.stats.forced_wakeups, 1);
    }

    #[test]
    fn beeping_model_delivers_beeps_not_messages() {
        // path 0-1, node 0 transmits at global 1; under Beeping node 1 is
        // woken by a content-free beep, and no message is ever received.
        let c = cfg(generators::path(2), vec![0, 9]);
        let ex = Executor::run_model::<Beeping>(
            &c,
            &WaitThenTransmitFactory {
                wait: 0,
                msg: Msg(4),
                lifetime: 5,
            },
            RunOpts::default(),
        )
        .unwrap();
        assert_eq!(ex.wake_round[1], 1);
        assert_eq!(ex.wake_obs(1), Obs::Noise);
        assert_eq!(ex.stats.messages_received, 0);
        assert_eq!(ex.stats.forced_wakeups, 1);
        // node 0 listens from local 2 on; node 1 beeps back at global 2
        assert_eq!(ex.history(0).get(2), Some(Obs::Noise));
    }

    #[test]
    fn message_in_tag_round_is_forced_style() {
        // path 0-1: node 0 wakes at 0, transmits at global 1; node 1's tag
        // is exactly 1 → wake with H[0]=(M).
        let c = cfg(generators::path(2), vec![0, 1]);
        let ex = Executor::run(
            &c,
            &WaitThenTransmitFactory {
                wait: 0,
                msg: Msg(4),
                lifetime: 5,
            },
            RunOpts::default(),
        )
        .unwrap();
        assert_eq!(ex.wake_round[1], 1);
        assert_eq!(
            ex.wake_obs(1),
            Obs::Heard(Msg(4)),
            "tag-round message is forced-style"
        );
        assert_eq!(ex.stats.forced_wakeups, 1);
    }

    #[test]
    fn round_limit_errors() {
        let c = cfg(generators::path(2), vec![0, 0]);
        // lifetime beyond the limit → RoundLimit
        let err = Executor::run(
            &c,
            &SilentFactory { lifetime: 100 },
            RunOpts::with_max_rounds(10),
        )
        .unwrap_err();
        assert_eq!(
            err,
            SimError::RoundLimit {
                max_rounds: 10,
                still_running: 2
            }
        );
    }

    #[test]
    fn round_limit_boundary_is_exact() {
        // silent(4) on tags [0,1,2] needs rounds 0..=6: exactly 7 rounds.
        let run = |max_rounds, leap| {
            let opts = if leap {
                RunOpts::with_max_rounds(max_rounds)
            } else {
                RunOpts::with_max_rounds(max_rounds).no_leap()
            };
            Executor::run(
                &cfg(generators::path(3), vec![0, 1, 2]),
                &SilentFactory { lifetime: 4 },
                opts,
            )
        };
        for leap in [false, true] {
            let ex = run(7, leap).expect("exactly enough rounds");
            assert_eq!(ex.rounds, 7);
            let err = run(6, leap).unwrap_err();
            assert_eq!(
                err,
                SimError::RoundLimit {
                    max_rounds: 6,
                    still_running: 1
                },
                "leap={leap}: 6 rounds must not be enough"
            );
        }
    }

    #[test]
    fn echo_chain_wakes_a_path() {
        // node 0 wakes at 0 and transmits at 1 (wait=0); echo nodes relay
        // the message down the path, force-waking each in turn.
        // Combine: node 0 should transmit spontaneously; others echo. A
        // single anonymous DRIP: transmit in local round 1 iff woken
        // spontaneously AND global... can't see global. Trick: wait-then-
        // transmit with wait=0 transmits at local 1 regardless — every
        // newly woken node rebroadcasts: exactly an echo chain.
        let n = 6;
        let c = cfg(generators::path(n), vec![0, 9, 9, 9, 9, 9]);
        let ex = Executor::run(
            &c,
            &WaitThenTransmitFactory {
                wait: 0,
                msg: Msg(1),
                lifetime: 20,
            },
            RunOpts::default(),
        )
        .unwrap();
        // wake wave: node v woken at round v by node v-1's transmission
        for v in 0..n {
            assert_eq!(ex.wake_round[v], v as u64, "node {v}");
        }
        assert_eq!(ex.stats.forced_wakeups, (n - 1) as u64);
        let _ = EchoFactory { lifetime: 1 }; // keep the import exercised
    }

    #[test]
    fn leap_engine_matches_step_engine_and_skips_quiet_rounds() {
        // Huge tag span: the step engine must iterate through the whole
        // stretch, the leap engine jumps it — with identical results. The
        // ends transmit simultaneously, so their collision leaves the
        // sleeping centre asleep until its distant tag.
        let span = 100_000u64;
        let c = cfg(generators::path(3), vec![0, span, 0]);
        let f = WaitThenTransmitFactory {
            wait: 3,
            msg: Msg(5),
            lifetime: 20,
        };
        let leap = Executor::run(&c, &f, RunOpts::default()).unwrap();
        let step = Executor::run(&c, &f, RunOpts::default().no_leap()).unwrap();
        assert_eq!(leap.wake_round, step.wake_round);
        assert_eq!(leap.done_round, step.done_round);
        assert_eq!(leap.histories, step.histories);
        assert_eq!(leap.rounds, step.rounds);
        assert_eq!(leap.stats, step.stats);
        // accounting: every round is either stepped or leapt
        assert_eq!(leap.rounds_stepped + leap.rounds_leapt, leap.rounds);
        assert_eq!(step.rounds_stepped, step.rounds);
        assert_eq!(step.rounds_leapt, 0);
        // and the leap engine actually leapt the dead stretch
        assert!(leap.rounds > span, "the last node only wakes at {span}");
        assert!(
            leap.rounds_stepped < 64,
            "leap engine stepped {} rounds of {}",
            leap.rounds_stepped,
            leap.rounds
        );
    }

    #[test]
    fn leap_preserves_traces_and_their_round_numbers() {
        // Ends of the path transmit simultaneously at round 3, so the
        // sleeping centre stays asleep (collision), the ends run out, the
        // engine leaps the dead stretch, and the centre wakes at its tag
        // with traffic on both sides of the leap.
        let c = cfg(generators::path(3), vec![0, 5_000, 0]);
        let f = WaitThenTransmitFactory {
            wait: 2,
            msg: Msg(1),
            lifetime: 9,
        };
        let leap = Executor::run(&c, &f, RunOpts::default().traced()).unwrap();
        let step = Executor::run(&c, &f, RunOpts::default().no_leap().traced()).unwrap();
        assert!(leap.rounds_stepped < 20, "dead stretch must be leapt");
        let (lt, st) = (leap.trace.unwrap(), step.trace.unwrap());
        assert_eq!(lt.events, st.events, "trace must be round-for-round equal");
        // sparse round numbers survive the leap
        assert!(lt.round(5_000).is_some(), "spontaneous wake at 5000");
        assert!(lt.round(5_003).is_some(), "centre transmits after the leap");
    }

    #[test]
    fn trace_records_eventful_rounds_only() {
        let c = cfg(generators::path(2), vec![0, 3]);
        let ex = Executor::run(
            &c,
            &WaitThenTransmitFactory {
                wait: 1,
                msg: Msg(1),
                lifetime: 6,
            },
            RunOpts::default().traced(),
        )
        .unwrap();
        let trace = ex.trace.as_ref().unwrap();
        // round 0: node 0 wakes; round 2: node 0 transmits (local 2 = wait+1)
        // and node 1 is woken...
        assert!(trace.round(0).is_some());
        let r2 = trace.round(2).expect("transmission round recorded");
        assert_eq!(r2.transmitters, vec![(0, Msg(1))]);
        assert_eq!(r2.woke, vec![(1, Obs::Heard(Msg(1)))]);
        // quiet round 1 is skipped
        assert!(trace.round(1).is_none());
    }

    #[test]
    fn history_classes_group_identical_histories() {
        // symmetric path with uniform tags: all three nodes silent forever,
        // but end nodes (degree 1) and middle node still have identical
        // histories (all silence) → one class.
        let c = cfg(generators::path(3), vec![0, 0, 0]);
        let ex = Executor::run(&c, &SilentFactory { lifetime: 5 }, RunOpts::default()).unwrap();
        let classes = ex.history_classes();
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0], vec![0, 1, 2]);
        assert!(ex.unique_history_nodes().is_empty());
    }

    #[test]
    fn beacon_floods_and_terminates() {
        let c = cfg(generators::cycle(5), vec![0, 0, 0, 0, 0]);
        let ex = Executor::run(
            &c,
            &BeaconFactory {
                start: 1,
                lifetime: 3,
                msg: Msg(1),
            },
            RunOpts::default(),
        )
        .unwrap();
        // all transmit rounds 1,2 → 10 transmissions
        assert_eq!(ex.stats.transmissions, 10);
        // everyone transmits simultaneously → nobody ever hears anything
        assert_eq!(ex.stats.messages_received, 0);
        assert_eq!(ex.rounds, 4);
    }
}
