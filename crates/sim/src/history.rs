//! Per-node local histories.
//!
//! A [`History`] is the vector `H_v[0 .. i-1]` of the paper: entry `r` is
//! what node `v` perceived in its local round `r` (entry 0 describes the
//! wake-up). The DRIP of a node at local round `i` is a function of exactly
//! this vector, so histories are the *only* information the engine ever
//! exposes to an algorithm.
//!
//! Two forms exist:
//!
//! * [`History`] — owned, growable; what executions return and tests
//!   construct.
//! * [`HistoryView`] — a borrowed, `Copy` read-only view. The engine's hot
//!   loop keeps all observations in one shared arena and hands DRIPs views
//!   into it, so deciding a round allocates nothing. Every read accessor
//!   exists on both forms (the owned form delegates to its view).

use std::fmt;
use std::ops::Index;

use crate::msg::{Msg, Obs};

/// A node's local history: `self[r]` is the observation of local round `r`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct History {
    entries: Vec<Obs>,
}

impl History {
    /// Empty history (before wake-up).
    pub fn new() -> History {
        History {
            entries: Vec::new(),
        }
    }

    /// History from explicit entries (tests, decision functions).
    pub fn from_entries(entries: Vec<Obs>) -> History {
        History { entries }
    }

    /// Borrowed read-only view of the whole history.
    #[inline]
    pub fn view(&self) -> HistoryView<'_> {
        HistoryView::new(&self.entries)
    }

    /// Number of recorded rounds. When the engine asks a DRIP for the action
    /// of local round `i`, `len() == i` (entries `0..=i-1` are present).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True before wake-up.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends an observation. Used by the engine while recording, and by
    /// tools that synthesize histories round-by-round (e.g. the
    /// silence-probing adversary of Proposition 4.4).
    #[inline]
    pub fn push(&mut self, obs: Obs) {
        self.entries.push(obs);
    }

    /// All entries as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Obs] {
        &self.entries
    }

    /// Entry accessor returning `None` out of range.
    #[inline]
    pub fn get(&self, r: usize) -> Option<Obs> {
        self.entries.get(r).copied()
    }

    /// Iterator over `(local_round, Obs)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Obs)> + '_ {
        self.entries.iter().copied().enumerate()
    }

    /// The local round of the first non-silent entry, if any.
    pub fn first_nonsilent(&self) -> Option<usize> {
        self.view().first_nonsilent()
    }

    /// The local round of the first received message, if any (the paper's
    /// `rcv_w`). Collisions do not count.
    pub fn first_message(&self) -> Option<usize> {
        self.view().first_message()
    }

    /// The message received in local round `r`, if entry `r` is `Heard`.
    pub fn message_at(&self, r: usize) -> Option<Msg> {
        self.view().message_at(r)
    }

    /// True when every entry is silence — the "no information ever" state
    /// the impossibility proofs revolve around.
    pub fn all_silent(&self) -> bool {
        self.view().all_silent()
    }

    /// Sub-history `H[from .. from+len]` as a fresh `History` (used by the
    /// patient transform, which replays a suffix into an inner DRIP).
    pub fn window(&self, from: usize, len: usize) -> History {
        History {
            entries: self.entries[from..from + len].to_vec(),
        }
    }

    /// Compact single-line rendering, e.g. `[∅ ∅ '1' ∗ ∅]`.
    pub fn render(&self) -> String {
        self.view().render()
    }
}

impl Index<usize> for History {
    type Output = Obs;

    fn index(&self, r: usize) -> &Obs {
        &self.entries[r]
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

impl<'a> IntoIterator for &'a History {
    type Item = &'a Obs;
    type IntoIter = std::slice::Iter<'a, Obs>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

/// A borrowed read-only history — what the engine hands a DRIP each round.
///
/// `Copy`-cheap. Mirrors every read accessor of [`History`];
/// [`HistoryView::to_history`] materializes an owned copy when one is
/// needed.
///
/// Two backing representations exist, indistinguishable through the
/// accessors:
///
/// * **dense** — a fat pointer into a contiguous `[Obs]` run (the owned
///   form, the batch engine, the default workspace arena);
/// * **sparse** — the non-silent entries only, as sorted
///   `(local_round, obs)` events plus a virtual length; every other round
///   reads as `(∅)`. Produced by the engine's silence-virtualizing arena
///   ([`RunOpts::sparse_histories`](crate::RunOpts::sparse_histories)),
///   where million-node histories dominated by silence would otherwise
///   dwarf the configuration they came from.
///
/// The one dense-only accessor is [`HistoryView::as_slice`], which
/// panics on a sparse view — code meant to run under the sparse arena
/// must read through `get`/`iter`/the query methods.
#[derive(Debug, Clone, Copy)]
pub struct HistoryView<'a> {
    repr: Repr<'a>,
}

#[derive(Debug, Clone, Copy)]
enum Repr<'a> {
    Dense(&'a [Obs]),
    Sparse {
        /// Non-silent entries as `(absolute_round, obs)`, sorted by round,
        /// all within `[base, base + len)`.
        events: &'a [(u64, Obs)],
        /// Absolute round of the view's entry 0 (non-zero after
        /// [`HistoryView::window`]).
        base: u64,
        /// Virtual length: rounds `0..len` exist, silence unless an event
        /// says otherwise.
        len: u64,
    },
}

/// The `&Obs` the sparse `Index` impl returns for virtual entries.
static SILENCE: Obs = Obs::Silence;

impl<'a> HistoryView<'a> {
    /// Dense view over raw entries.
    #[inline]
    pub fn new(entries: &'a [Obs]) -> HistoryView<'a> {
        HistoryView {
            repr: Repr::Dense(entries),
        }
    }

    /// Sparse view: `len` rounds of silence except the given sorted
    /// `(round, obs)` events. Only the engine's arena constructs these.
    #[inline]
    pub(crate) fn sparse(events: &'a [(u64, Obs)], len: u64) -> HistoryView<'a> {
        HistoryView {
            repr: Repr::Sparse {
                events,
                base: 0,
                len,
            },
        }
    }

    /// Number of recorded rounds (see [`History::len`]).
    #[inline]
    pub fn len(&self) -> usize {
        match self.repr {
            Repr::Dense(entries) => entries.len(),
            Repr::Sparse { len, .. } => len as usize,
        }
    }

    /// True before wake-up.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All entries as a contiguous slice.
    ///
    /// # Panics
    /// Panics on a sparse view (silence is virtual there — no contiguous
    /// run exists). Use `get`/`iter` or [`HistoryView::to_history`].
    #[inline]
    pub fn as_slice(&self) -> &'a [Obs] {
        match self.repr {
            Repr::Dense(entries) => entries,
            Repr::Sparse { .. } => {
                panic!("HistoryView::as_slice on a sparse view; use get()/iter()/to_history()")
            }
        }
    }

    /// Entry accessor returning `None` out of range.
    #[inline]
    pub fn get(&self, r: usize) -> Option<Obs> {
        match self.repr {
            Repr::Dense(entries) => entries.get(r).copied(),
            Repr::Sparse { events, base, len } => {
                if (r as u64) >= len {
                    return None;
                }
                let abs = base + r as u64;
                match events.binary_search_by_key(&abs, |&(p, _)| p) {
                    Ok(i) => Some(events[i].1),
                    Err(_) => Some(Obs::Silence),
                }
            }
        }
    }

    /// Iterator over `(local_round, Obs)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Obs)> + 'a {
        let me = *self;
        (0..me.len()).map(move |r| (r, me.get(r).expect("r < len")))
    }

    /// The local round of the first non-silent entry, if any.
    pub fn first_nonsilent(&self) -> Option<usize> {
        match self.repr {
            Repr::Dense(entries) => entries.iter().position(|o| !o.is_silence()),
            Repr::Sparse { events, base, .. } => events.first().map(|&(p, _)| (p - base) as usize),
        }
    }

    /// The local round of the first received message, if any (the paper's
    /// `rcv_w`). Collisions do not count.
    pub fn first_message(&self) -> Option<usize> {
        match self.repr {
            Repr::Dense(entries) => entries.iter().position(|o| o.is_message()),
            Repr::Sparse { events, base, .. } => events
                .iter()
                .find(|(_, o)| o.is_message())
                .map(|&(p, _)| (p - base) as usize),
        }
    }

    /// The message received in local round `r`, if entry `r` is `Heard`.
    pub fn message_at(&self, r: usize) -> Option<Msg> {
        match self.get(r) {
            Some(Obs::Heard(m)) => Some(m),
            _ => None,
        }
    }

    /// True when every entry is silence.
    pub fn all_silent(&self) -> bool {
        match self.repr {
            Repr::Dense(entries) => entries.iter().all(|o| o.is_silence()),
            Repr::Sparse { events, .. } => events.is_empty(),
        }
    }

    /// Sub-view `H[from .. from+len]` — no allocation.
    pub fn window(&self, from: usize, len: usize) -> HistoryView<'a> {
        match self.repr {
            Repr::Dense(entries) => HistoryView::new(&entries[from..from + len]),
            Repr::Sparse {
                events,
                base,
                len: total,
            } => {
                assert!(from + len <= total as usize, "window out of range");
                let lo = base + from as u64;
                let hi = lo + len as u64;
                let a = events.partition_point(|&(p, _)| p < lo);
                let b = events.partition_point(|&(p, _)| p < hi);
                HistoryView {
                    repr: Repr::Sparse {
                        events: &events[a..b],
                        base: lo,
                        len: len as u64,
                    },
                }
            }
        }
    }

    /// Materializes an owned [`History`].
    pub fn to_history(&self) -> History {
        match self.repr {
            Repr::Dense(entries) => History {
                entries: entries.to_vec(),
            },
            Repr::Sparse { events, base, len } => {
                let mut entries = vec![Obs::Silence; len as usize];
                for &(p, o) in events {
                    entries[(p - base) as usize] = o;
                }
                History { entries }
            }
        }
    }

    /// Compact single-line rendering, e.g. `[∅ ∅ '1' ∗ ∅]`.
    pub fn render(&self) -> String {
        let cells: Vec<String> = self
            .iter()
            .map(|(_, o)| match o {
                Obs::Silence => "∅".to_string(),
                Obs::Heard(m) => format!("'{}'", m.0),
                Obs::Collision => "∗".to_string(),
                Obs::Noise => "~".to_string(),
            })
            .collect();
        format!("[{}]", cells.join(" "))
    }
}

/// Equality is semantic — a dense view and a sparse view of the same
/// history compare equal regardless of representation.
impl PartialEq for HistoryView<'_> {
    fn eq(&self, other: &Self) -> bool {
        match (&self.repr, &other.repr) {
            (Repr::Dense(a), Repr::Dense(b)) => a == b,
            _ => {
                self.len() == other.len()
                    && self.iter().zip(other.iter()).all(|((_, a), (_, b))| a == b)
            }
        }
    }
}

impl Eq for HistoryView<'_> {}

/// Hashes the full logical entry sequence (length-prefixed), so equal
/// views hash equally across representations.
impl std::hash::Hash for HistoryView<'_> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_usize(self.len());
        for (_, o) in self.iter() {
            o.hash(state);
        }
    }
}

impl Index<usize> for HistoryView<'_> {
    type Output = Obs;

    fn index(&self, r: usize) -> &Obs {
        match self.repr {
            Repr::Dense(entries) => &entries[r],
            Repr::Sparse { events, base, len } => {
                assert!((r as u64) < len, "index {r} out of range (len {len})");
                let abs = base + r as u64;
                match events.binary_search_by_key(&abs, |&(p, _)| p) {
                    Ok(i) => &events[i].1,
                    Err(_) => &SILENCE,
                }
            }
        }
    }
}

impl fmt::Display for HistoryView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

impl<'a> From<&'a History> for HistoryView<'a> {
    fn from(h: &'a History) -> HistoryView<'a> {
        h.view()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> History {
        History::from_entries(vec![
            Obs::Silence,
            Obs::Silence,
            Obs::Heard(Msg(9)),
            Obs::Collision,
            Obs::Silence,
        ])
    }

    #[test]
    fn len_and_index() {
        let h = sample();
        assert_eq!(h.len(), 5);
        assert!(!h.is_empty());
        assert_eq!(h[2], Obs::Heard(Msg(9)));
        assert_eq!(h.get(4), Some(Obs::Silence));
        assert_eq!(h.get(5), None);
    }

    #[test]
    fn first_positions() {
        let h = sample();
        assert_eq!(h.first_nonsilent(), Some(2));
        assert_eq!(h.first_message(), Some(2));
        assert_eq!(h.message_at(2), Some(Msg(9)));
        assert_eq!(h.message_at(3), None);
        let all = History::from_entries(vec![Obs::Silence; 3]);
        assert!(all.all_silent());
        assert_eq!(all.first_message(), None);
        // collision before any message: first_nonsilent differs from
        // first_message
        let h2 = History::from_entries(vec![Obs::Silence, Obs::Collision, Obs::Heard(Msg(1))]);
        assert_eq!(h2.first_nonsilent(), Some(1));
        assert_eq!(h2.first_message(), Some(2));
    }

    #[test]
    fn window_extracts_suffix() {
        let h = sample();
        let w = h.window(2, 3);
        assert_eq!(
            w.as_slice(),
            &[Obs::Heard(Msg(9)), Obs::Collision, Obs::Silence]
        );
    }

    #[test]
    fn render_is_compact() {
        assert_eq!(sample().render(), "[∅ ∅ '9' ∗ ∅]");
        assert_eq!(History::new().render(), "[]");
        let noisy = History::from_entries(vec![Obs::Noise]);
        assert_eq!(noisy.render(), "[~]");
    }

    #[test]
    fn equality_and_hash_are_structural() {
        let mut set = radio_util::FxHashSet::default();
        set.insert(sample());
        assert!(set.contains(&sample()));
        assert!(!set.contains(&History::new()));
    }

    #[test]
    fn view_mirrors_owned_accessors() {
        let h = sample();
        let v = h.view();
        assert_eq!(v.len(), h.len());
        assert_eq!(v.get(2), h.get(2));
        assert_eq!(v[3], h[3]);
        assert_eq!(v.first_message(), h.first_message());
        assert_eq!(v.first_nonsilent(), h.first_nonsilent());
        assert_eq!(v.message_at(2), h.message_at(2));
        assert_eq!(v.all_silent(), h.all_silent());
        assert_eq!(v.render(), h.render());
        assert_eq!(v.window(1, 3).as_slice(), h.window(1, 3).as_slice());
        assert_eq!(v.to_history(), h);
        let collected: Vec<(usize, Obs)> = v.iter().collect();
        assert_eq!(collected.len(), 5);
    }

    #[test]
    fn view_window_is_zero_copy_subslice() {
        let h = sample();
        let v = h.view().window(2, 2);
        assert_eq!(v.as_slice(), &[Obs::Heard(Msg(9)), Obs::Collision]);
        assert_eq!(HistoryView::from(&h).len(), 5);
    }
}
