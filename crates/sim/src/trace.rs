//! Optional round-by-round event recording.
//!
//! Tracing is off by default (the hot loop stays allocation-free); when
//! [`crate::RunOpts::record_trace`] is set, the engine captures a
//! [`RoundEvent`] for every *eventful* round (any transmission, wake-up, or
//! termination) so examples and debugging sessions can print a faithful
//! narrative of an execution.

use radio_graph::NodeId;

use crate::msg::{Msg, Obs};

/// Everything that happened in one global round.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundEvent {
    /// Global round number.
    pub round: u64,
    /// Nodes that transmitted, with their messages.
    pub transmitters: Vec<(NodeId, Msg)>,
    /// Nodes that woke up this round, with their `H[0]` observation
    /// (`Heard`/`Noise` = forced wake-up, `Silence` = spontaneous).
    pub woke: Vec<(NodeId, Obs)>,
    /// Listeners that perceived a collision (or, under carrier-sensing
    /// models, noise).
    pub collisions: Vec<NodeId>,
    /// Listeners that received a message, with the message.
    pub received: Vec<(NodeId, Msg)>,
    /// Nodes that decided to terminate this round.
    pub terminated: Vec<NodeId>,
}

impl RoundEvent {
    /// True when nothing happened (such rounds are not recorded).
    pub fn is_quiet(&self) -> bool {
        self.transmitters.is_empty()
            && self.woke.is_empty()
            && self.collisions.is_empty()
            && self.received.is_empty()
            && self.terminated.is_empty()
    }

    /// One-line rendering, e.g.
    /// `r=    5 | tx: v1'1' v2'1' | woke: v0(forced) | rx: - | coll: v3 | done: -`.
    pub fn render(&self) -> String {
        fn list<T: std::fmt::Display>(xs: &[T]) -> String {
            if xs.is_empty() {
                "-".to_string()
            } else {
                xs.iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join(" ")
            }
        }
        let tx: Vec<String> = self
            .transmitters
            .iter()
            .map(|(v, m)| format!("v{v}{m}"))
            .collect();
        let woke: Vec<String> = self
            .woke
            .iter()
            .map(|(v, o)| match o {
                Obs::Heard(_) | Obs::Noise => format!("v{v}(forced)"),
                _ => format!("v{v}(spont)"),
            })
            .collect();
        let rx: Vec<String> = self
            .received
            .iter()
            .map(|(v, m)| format!("v{v}←{m}"))
            .collect();
        let coll: Vec<String> = self.collisions.iter().map(|v| format!("v{v}")).collect();
        let done: Vec<String> = self.terminated.iter().map(|v| format!("v{v}")).collect();
        format!(
            "r={:>5} | tx: {} | woke: {} | rx: {} | coll: {} | done: {}",
            self.round,
            list(&tx),
            list(&woke),
            list(&rx),
            list(&coll),
            list(&done)
        )
    }
}

/// The recorded eventful rounds of an execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Events, in round order; quiet rounds are omitted.
    pub events: Vec<RoundEvent>,
}

impl Trace {
    /// Multi-line rendering of the whole trace.
    pub fn render(&self) -> String {
        self.events
            .iter()
            .map(RoundEvent::render)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// The event for a specific round, if that round was eventful.
    ///
    /// Events are stored in strictly increasing round order (at most one
    /// per round), so the lookup is a binary search — which matters under
    /// the time-leap scheduler, where recorded round numbers are sparse
    /// (a trace may span millions of global rounds in a handful of
    /// events).
    pub fn round(&self, r: u64) -> Option<&RoundEvent> {
        self.events
            .binary_search_by_key(&r, |e| e.round)
            .ok()
            .map(|i| &self.events[i])
    }
}

/// Renders all node histories as a global-time matrix: one row per node,
/// one column per global round, `·` before wake-up / after termination,
/// `∅`/digit/`∗` for silence/message/collision. The go-to view for seeing
/// symmetric histories stay symmetric.
///
/// ```text
/// v0 t=2  · · ∅ ∅ 1 ∅ …
/// v1 t=0  ∅ ∅ ∅ 1 ∅ ∅ …
/// ```
pub fn render_history_matrix(execution: &crate::engine::Execution, tags: &[u64]) -> String {
    use std::fmt::Write as _;
    let n = execution.node_count();
    let rounds = execution.rounds;
    let mut out = String::new();
    for (v, &tag) in tags.iter().enumerate().take(n) {
        let wake = execution.wake_round[v];
        let _ = write!(out, "v{v:<3} t={tag:<4} ");
        for r in 0..rounds {
            if r < wake {
                out.push_str("· ");
                continue;
            }
            match execution.histories[v].get((r - wake) as usize) {
                None => out.push_str("· "),
                Some(crate::msg::Obs::Silence) => out.push_str("∅ "),
                Some(crate::msg::Obs::Heard(m)) => {
                    let _ = write!(out, "{} ", m.0 % 10);
                }
                Some(crate::msg::Obs::Collision) => out.push_str("∗ "),
                Some(crate::msg::Obs::Noise) => out.push_str("~ "),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_matrix_renders_rows_and_phases() {
        use crate::drip::WaitThenTransmitFactory;
        use crate::engine::{Executor, RunOpts};
        let config =
            radio_graph::Configuration::new(radio_graph::generators::path(3), vec![0, 2, 2])
                .unwrap();
        let ex = Executor::run(
            &config,
            &WaitThenTransmitFactory {
                wait: 0,
                msg: Msg(1),
                lifetime: 5,
            },
            RunOpts::default(),
        )
        .unwrap();
        let matrix = render_history_matrix(&ex, config.tags());
        let lines: Vec<&str> = matrix.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("v0"));
        // node 1 woken by node 0's round-1 transmission: shows a `1` digit
        assert!(lines[1].contains('1'));
        // pre-wake rounds render as dots for late wakers
        assert!(lines[1].contains('·'));
    }

    #[test]
    fn quiet_detection() {
        let mut e = RoundEvent {
            round: 3,
            ..Default::default()
        };
        assert!(e.is_quiet());
        e.transmitters.push((1, Msg::ONE));
        assert!(!e.is_quiet());
    }

    #[test]
    fn render_contains_all_sections() {
        let e = RoundEvent {
            round: 5,
            transmitters: vec![(1, Msg::ONE)],
            woke: vec![(0, Obs::Heard(Msg::ONE)), (2, Obs::Silence)],
            collisions: vec![3],
            received: vec![(4, Msg::ONE)],
            terminated: vec![5],
        };
        let s = e.render();
        assert!(s.contains("v1'1'"));
        assert!(s.contains("v0(forced)"));
        assert!(s.contains("v2(spont)"));
        assert!(s.contains("v3"));
        assert!(s.contains("v4←'1'"));
        assert!(s.contains("done: v5"));
    }

    #[test]
    fn trace_lookup_by_round() {
        let t = Trace {
            events: vec![
                RoundEvent {
                    round: 1,
                    terminated: vec![0],
                    ..Default::default()
                },
                RoundEvent {
                    round: 4,
                    terminated: vec![1],
                    ..Default::default()
                },
            ],
        };
        assert!(t.round(1).is_some());
        assert!(t.round(2).is_none());
        assert_eq!(t.render().lines().count(), 2);
    }

    #[test]
    fn round_lookup_handles_sparse_round_numbers() {
        // Time-leap traces skip huge quiet stretches: lookups must work
        // before, between, at, and past the recorded rounds.
        let t = Trace {
            events: [0u64, 7, 1_000_000]
                .iter()
                .map(|&round| RoundEvent {
                    round,
                    terminated: vec![0],
                    ..Default::default()
                })
                .collect(),
        };
        assert_eq!(t.round(0).map(|e| e.round), Some(0));
        assert_eq!(t.round(7).map(|e| e.round), Some(7));
        assert_eq!(t.round(1_000_000).map(|e| e.round), Some(1_000_000));
        assert!(t.round(6).is_none());
        assert!(t.round(999_999).is_none());
        assert!(t.round(1_000_001).is_none());
    }
}
