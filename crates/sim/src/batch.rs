//! Cross-run batched execution: B independent runs through one fused
//! hot loop.
//!
//! Campaign workloads are fleets of *small* runs (the paper's grids stay
//! at n ≤ 64), and one-run-per-worker parallelism ([`crate::parallel`])
//! stops scaling there: each tiny run pays full per-run scheduler and
//! dispatch overhead, and its outputs are materialized (owned histories,
//! wake/done vectors) even when the caller only folds a handful of
//! counters. [`BatchWorkspace`] executes a whole *batch* of member runs
//! inside one engine pass instead:
//!
//! * **SoA across runs** — the per-node state planes (wake, done,
//!   round-stamped counters, quiescence horizons, sorted tag order,
//!   neighbour bitmasks) are single flat `[Σ nₘ]` vectors indexed by
//!   `member.base + v`, and every member's observation segments live in
//!   one shared [`ObsArena`]. A warmed-up workspace runs batch after
//!   batch without engine-side allocation, exactly like
//!   [`SimWorkspace`](crate::SimWorkspace) does for single runs.
//! * **Merged event queue** — each member carries its own round clock;
//!   between steps it *fast-forwards* through the same time-leap
//!   decisions the sequential engine would take (committing leapt
//!   silence as it goes, so `quiet_until` is re-asked against the grown
//!   history exactly as in the sequential loop). The fused scheduler
//!   then pops the globally-next round `r* = min_m rₘ` across the whole
//!   batch and sweeps every member sitting at `r*` in member order —
//!   same-round delivery for many small graphs becomes one contiguous
//!   sweep over adjacent state.
//! * **Beeping bitset fast path** — under the 2-symbol
//!   [`Beeping`](crate::model::Beeping) alphabet, untraced members with
//!   n ≤ 64 deliver observations by mask: a listener's observation is
//!   `adj_mask[v] & tx_mask ≠ 0 ? Noise : Silence`, and the per-edge
//!   counter stamping runs only in rounds where a sleeping node is
//!   adjacent to a transmitter (so forced wake-ups keep the sequential
//!   engine's exact `touched` order, which the stepped/leapt split
//!   depends on through the active-list scan order).
//!
//! # Bit-for-bit contract
//!
//! A batched member executes (steps) exactly the rounds the sequential
//! engine would and commits exactly the same leaps, so its outputs —
//! histories, wake/done rounds, stats, trace, and the
//! `rounds_stepped`/`rounds_leapt` split — are bit-identical to
//! [`SimWorkspace::run_kind`](crate::SimWorkspace::run_kind) on the same
//! `(config, factory, model, opts)`. Batch size, batch composition, and
//! member order are invisible in every output.
//! `tests/batch_differential.rs` pins this across the family zoo × all
//! three channel models × leap/step × ragged batch sizes.

use radio_graph::{Configuration, NodeId};

use crate::drip::DripFactory;
use crate::engine::{ExecStats, Execution, RunOpts, SimError};
use crate::history::{History, HistoryView};
use crate::model::{
    record_listener_obs, Beeping, CollisionDetection, ModelKind, NoCollisionDetection, RadioModel,
};
use crate::msg::{Action, Msg, Obs};
use crate::trace::{RoundEvent, Trace};
use crate::workspace::{ObsArena, ASLEEP};

/// True when the channel model `M` is [`Beeping`] — resolved at
/// monomorphization time, so the fast-path branches fold away for the
/// other models.
fn is_beeping<M: RadioModel>() -> bool {
    std::any::TypeId::of::<M>() == std::any::TypeId::of::<Beeping>()
}

/// One member of a batch: a configuration plus the DRIP factory to run
/// on it. Members are independent — different graphs, tag vectors, and
/// factories may share a batch (the engine requires nothing but the
/// common channel model and [`RunOpts`]).
#[derive(Clone, Copy)]
pub struct BatchRun<'a> {
    /// The configuration this member simulates.
    pub config: &'a Configuration,
    /// Spawns the member's per-node DRIPs.
    pub factory: &'a dyn DripFactory,
}

/// Per-member scheduler state: the member's round clock, cursors, and
/// result counters. Flat-plane offsets (`base`, `n`) locate the member's
/// node slice inside the workspace's SoA planes.
#[derive(Debug, Default)]
struct MemberState {
    /// Offset of the member's node 0 in every flat plane.
    base: usize,
    /// Node count.
    n: usize,
    /// The member's current global round.
    r: u64,
    /// Cursor into the member's sorted `by_tag` segment.
    tag_ptr: usize,
    /// Nodes terminated so far.
    done_count: usize,
    rounds_executed: u64,
    rounds_stepped: u64,
    rounds_leapt: u64,
    stats: ExecStats,
    /// Bit v set ⟺ node v is still asleep (maintained only for n ≤ 64;
    /// the Beeping fast path uses it to prove "no forced wake-up this
    /// round" without touching the edge lists).
    asleep_mask: u64,
    /// Terminal failure (round limit); other members keep running.
    error: Option<SimError>,
    /// All nodes terminated.
    finished: bool,
}

/// Reusable batched-engine state: flat per-node planes across all
/// members of a batch plus per-member scheduler state, recycled batch
/// after batch.
///
/// Create one per worker thread, then call [`BatchWorkspace::run_kind`]
/// (materializing [`Execution`]s) or [`BatchWorkspace::run_kind_with`]
/// (streaming per-member views, no materialization) as many times as
/// needed.
#[derive(Default)]
pub struct BatchWorkspace {
    nodes: Vec<Box<dyn crate::drip::DripNode>>,
    arena: ObsArena,
    wake: Vec<u64>,
    done: Vec<u64>,
    by_tag: Vec<NodeId>,
    cnt: Vec<u32>,
    cnt_stamp: Vec<u64>,
    heard_msg: Vec<Msg>,
    quiet_horizon: Vec<u64>,
    /// Neighbour bitmask per node (Beeping fast path, n ≤ 64 members).
    adj_mask: Vec<u64>,
    members: Vec<MemberState>,
    /// Per-member active lists (member-local node ids), recycled slots.
    active: Vec<Vec<NodeId>>,
    traces: Vec<Option<Trace>>,
    /// Shared per-round scratch — one member steps at a time inside a
    /// sweep, so a single set suffices for the whole batch.
    actions: Vec<(NodeId, Action)>,
    transmitters: Vec<(NodeId, Msg)>,
    touched: Vec<NodeId>,
    /// Members still running, in member order.
    runnable: Vec<usize>,
    /// Members stepping at the popped round `r*` this iteration.
    sweep: Vec<usize>,
}

impl std::fmt::Debug for BatchWorkspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchWorkspace")
            .field("members", &self.members.len())
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

/// Read-only view of one completed member run — everything an
/// [`Execution`] would carry, borrowed straight from the workspace
/// planes so metric-folding callers skip the owned-history
/// materialization entirely.
#[derive(Clone, Copy)]
pub struct MemberView<'a> {
    ws: &'a BatchWorkspace,
    m: usize,
}

impl<'a> MemberView<'a> {
    /// Node count of the member's configuration.
    pub fn size(&self) -> usize {
        self.ws.members[self.m].n
    }

    /// Global rounds simulated (identical to the sequential engine).
    pub fn rounds(&self) -> u64 {
        self.ws.members[self.m].rounds_executed
    }

    /// Rounds executed one by one.
    pub fn rounds_stepped(&self) -> u64 {
        self.ws.members[self.m].rounds_stepped
    }

    /// Rounds skipped by the time-leap scheduler.
    pub fn rounds_leapt(&self) -> u64 {
        self.ws.members[self.m].rounds_leapt
    }

    /// Aggregate counters.
    pub fn stats(&self) -> &'a ExecStats {
        &self.ws.members[self.m].stats
    }

    /// Node `v`'s final local history, borrowed from the shared arena.
    pub fn history(&self, v: NodeId) -> HistoryView<'a> {
        self.ws
            .arena
            .view(self.ws.members[self.m].base + v as usize)
    }

    /// Global round node `v` woke in ([`ASLEEP`-sentinel-free]: every
    /// node of a completed run woke).
    pub fn wake_round(&self, v: NodeId) -> u64 {
        self.ws.wake[self.ws.members[self.m].base + v as usize]
    }

    /// Global round node `v` terminated in.
    pub fn done_round(&self, v: NodeId) -> u64 {
        self.ws.done[self.ws.members[self.m].base + v as usize]
    }
}

impl BatchWorkspace {
    /// An empty workspace; planes are dimensioned lazily by the first
    /// batch.
    pub fn new() -> BatchWorkspace {
        BatchWorkspace::default()
    }

    /// Approximate footprint of the batch planes in bytes (capacities, not
    /// lengths — the high-water mark across every batch this workspace has
    /// run; boxed node and trace internals excluded). Feeds the campaign
    /// `mem_hw` column.
    pub fn mem_bytes(&self) -> u64 {
        fn plane<T>(v: &Vec<T>) -> u64 {
            (v.capacity() * std::mem::size_of::<T>()) as u64
        }
        self.arena.mem_bytes()
            + plane(&self.nodes)
            + plane(&self.wake)
            + plane(&self.done)
            + plane(&self.by_tag)
            + plane(&self.cnt)
            + plane(&self.cnt_stamp)
            + plane(&self.heard_msg)
            + plane(&self.quiet_horizon)
            + plane(&self.adj_mask)
            + plane(&self.members)
            + plane(&self.active)
            + self.active.iter().map(plane).sum::<u64>()
            + plane(&self.traces)
            + plane(&self.actions)
            + plane(&self.transmitters)
            + plane(&self.touched)
            + plane(&self.runnable)
            + plane(&self.sweep)
    }

    /// Runs every member under the paper's channel model and returns
    /// their materialized [`Execution`]s in member order.
    pub fn run(
        &mut self,
        runs: &[BatchRun<'_>],
        opts: RunOpts,
    ) -> Vec<Result<Execution, SimError>> {
        self.run_model::<NoCollisionDetection>(runs, opts)
    }

    /// [`BatchWorkspace::run`] under a runtime-selected channel model.
    pub fn run_kind(
        &mut self,
        model: ModelKind,
        runs: &[BatchRun<'_>],
        opts: RunOpts,
    ) -> Vec<Result<Execution, SimError>> {
        self.execute_kind(model, runs, opts);
        (0..runs.len()).map(|m| self.take_execution(m)).collect()
    }

    /// [`BatchWorkspace::run`] under an explicit channel model `M`.
    pub fn run_model<M: RadioModel>(
        &mut self,
        runs: &[BatchRun<'_>],
        opts: RunOpts,
    ) -> Vec<Result<Execution, SimError>> {
        self.execute::<M>(runs, opts);
        (0..runs.len()).map(|m| self.take_execution(m)).collect()
    }

    /// Runs the batch and visits every member's outcome in member order
    /// *without* materializing executions: `finish` receives either a
    /// borrowed [`MemberView`] (histories live in the shared arena) or
    /// the member's [`SimError`]. This is the campaign path — per-run
    /// metrics are folded straight off the planes, skipping the n+1
    /// owned-history allocations an [`Execution`] costs.
    pub fn run_kind_with<R>(
        &mut self,
        model: ModelKind,
        runs: &[BatchRun<'_>],
        opts: RunOpts,
        mut finish: impl FnMut(usize, Result<MemberView<'_>, &SimError>) -> R,
    ) -> Vec<R> {
        self.execute_kind(model, runs, opts);
        (0..runs.len())
            .map(|m| match &self.members[m].error {
                Some(e) => finish(m, Err(e)),
                None => finish(m, Ok(MemberView { ws: self, m })),
            })
            .collect()
    }

    fn execute_kind(&mut self, model: ModelKind, runs: &[BatchRun<'_>], opts: RunOpts) {
        match model {
            ModelKind::NoCollisionDetection => self.execute::<NoCollisionDetection>(runs, opts),
            ModelKind::CollisionDetection => self.execute::<CollisionDetection>(runs, opts),
            ModelKind::Beeping => self.execute::<Beeping>(runs, opts),
        }
    }

    /// Re-dimensions every plane for the batch without freeing capacity,
    /// spawns the members' DRIPs, sorts each member's tag order, and
    /// (for Beeping-fast-path-eligible members) builds the neighbour
    /// bitmasks.
    fn reset_for<M: RadioModel>(&mut self, runs: &[BatchRun<'_>], opts: RunOpts) {
        let total: usize = runs.iter().map(|run| run.config.size()).sum();
        self.nodes.clear();
        self.arena.reset(total);
        self.wake.clear();
        self.wake.resize(total, ASLEEP);
        self.done.clear();
        self.done.resize(total, ASLEEP);
        self.by_tag.clear();
        self.cnt.clear();
        self.cnt.resize(total, 0);
        // Stamps compare against round numbers that restart at 0 each
        // batch; stale stamps from a previous batch must be cleared.
        self.cnt_stamp.clear();
        self.cnt_stamp.resize(total, u64::MAX);
        self.heard_msg.clear();
        self.heard_msg.resize(total, Msg(0));
        self.quiet_horizon.clear();
        self.quiet_horizon.resize(total, 0);
        self.adj_mask.clear();
        self.adj_mask.resize(total, 0);
        self.actions.clear();
        self.transmitters.clear();
        self.touched.clear();
        self.members.clear();
        if self.active.len() < runs.len() {
            self.active.resize_with(runs.len(), Vec::new);
        }
        for list in &mut self.active {
            list.clear();
        }
        self.traces.clear();
        self.traces.resize_with(runs.len(), || None);

        // The mask path must not run for traced members: it reorders the
        // forced-wake scan, which a trace's `woke` order would expose.
        let masks = is_beeping::<M>() && !opts.record_trace;
        let mut base = 0usize;
        for (m, run) in runs.iter().enumerate() {
            let n = run.config.size();
            self.by_tag.extend(0..n as NodeId);
            self.by_tag[base..base + n].sort_by_key(|&v| run.config.tag(v));
            self.nodes.extend((0..n).map(|_| run.factory.spawn()));
            if masks && n <= 64 {
                let csr = run.config.csr();
                for v in 0..n {
                    let mut mask = 0u64;
                    for &w in csr.neighbors(v as NodeId) {
                        mask |= 1u64 << w;
                    }
                    self.adj_mask[base + v] = mask;
                }
            }
            self.members.push(MemberState {
                base,
                n,
                asleep_mask: if n >= 64 { u64::MAX } else { (1u64 << n) - 1 },
                ..MemberState::default()
            });
            if opts.record_trace {
                self.traces[m] = Some(Trace::default());
            }
            base += n;
        }
    }

    /// The fused loop: fast-forward every member, then repeatedly pop
    /// the globally-next round `r* = min_m rₘ` and sweep all members
    /// sitting at `r*` through one stepped round each (member order —
    /// deterministic, never hash- or thread-dependent).
    fn execute<M: RadioModel>(&mut self, runs: &[BatchRun<'_>], opts: RunOpts) {
        self.reset_for::<M>(runs, opts);
        self.runnable.clear();
        for (m, run) in runs.iter().enumerate() {
            self.fast_forward(m, run.config, opts);
            if self.members[m].error.is_none() {
                self.runnable.push(m);
            }
        }
        while !self.runnable.is_empty() {
            let mut r_star = u64::MAX;
            for i in 0..self.runnable.len() {
                r_star = r_star.min(self.members[self.runnable[i]].r);
            }
            self.sweep.clear();
            for i in 0..self.runnable.len() {
                let m = self.runnable[i];
                if self.members[m].r == r_star {
                    self.sweep.push(m);
                }
            }
            let mut retired = false;
            for i in 0..self.sweep.len() {
                let m = self.sweep[i];
                self.step_round::<M>(m, runs[m].config);
                if self.members[m].done_count == self.members[m].n {
                    self.members[m].finished = true;
                    retired = true;
                } else {
                    self.fast_forward(m, runs[m].config, opts);
                    retired |= self.members[m].error.is_some();
                }
            }
            if retired {
                let members = &self.members;
                self.runnable
                    .retain(|&m| !members[m].finished && members[m].error.is_none());
            }
        }
    }

    /// Replays the sequential engine's per-round-entry decisions to a
    /// fixpoint for member `m`: the round-limit check, the all-asleep
    /// jump to the next tag, and the all-quiet leap — committing each
    /// leap's bulk silence before re-deciding, exactly as the sequential
    /// loop's `continue` does (a grown history can extend a node's next
    /// `quiet_until` claim, so multiple consecutive leaps are possible).
    /// On return the member either must step at `rₘ`, is finished, or
    /// has failed on the round limit.
    fn fast_forward(&mut self, m: usize, config: &Configuration, opts: RunOpts) {
        let BatchWorkspace {
            nodes,
            arena,
            wake,
            by_tag,
            quiet_horizon,
            members,
            active,
            ..
        } = self;
        let mem = &mut members[m];
        let active = &active[m];
        loop {
            if mem.r >= opts.max_rounds {
                mem.error = Some(SimError::RoundLimit {
                    max_rounds: opts.max_rounds,
                    still_running: mem.n - mem.done_count,
                });
                return;
            }
            if !opts.leap {
                return;
            }
            if active.is_empty() {
                // Nothing awake: jump to the next spontaneous wake-up
                // (one exists — the member has non-terminated nodes).
                let next_tag = config
                    .tag(by_tag[mem.base + mem.tag_ptr])
                    .min(opts.max_rounds);
                if next_tag > mem.r {
                    mem.rounds_leapt += next_tag - mem.r;
                    mem.r = next_tag;
                    continue;
                }
                return;
            }
            let mut target = u64::MAX;
            let mut all_quiet = true;
            for &v in active {
                let gi = mem.base + v as usize;
                if quiet_horizon[gi] <= mem.r {
                    match nodes[gi].quiet_until(arena.view(gi)) {
                        Some(q) => quiet_horizon[gi] = wake[gi].saturating_add(q),
                        None => {
                            all_quiet = false;
                            break;
                        }
                    }
                    if quiet_horizon[gi] <= mem.r {
                        all_quiet = false;
                        break;
                    }
                }
                target = target.min(quiet_horizon[gi]);
            }
            if mem.tag_ptr < mem.n {
                target = target.min(config.tag(by_tag[mem.base + mem.tag_ptr]));
            }
            target = target.min(opts.max_rounds);
            if all_quiet && target > mem.r {
                let skipped = (target - mem.r) as usize;
                for &v in active {
                    arena.push_silence_n(mem.base + v as usize, skipped);
                }
                mem.rounds_leapt += skipped as u64;
                mem.r = target;
                continue;
            }
            return;
        }
    }

    /// One stepped round for member `m` — the sequential engine's round
    /// anatomy (decide, collect + stamp, deliver, forced wake-ups,
    /// spontaneous wake-ups) over the member's plane slice.
    fn step_round<M: RadioModel>(&mut self, m: usize, config: &Configuration) {
        let BatchWorkspace {
            nodes,
            arena,
            wake,
            done,
            by_tag,
            cnt,
            cnt_stamp,
            heard_msg,
            quiet_horizon,
            adj_mask,
            members,
            active,
            traces,
            actions,
            transmitters,
            touched,
            ..
        } = self;
        let mem = &mut members[m];
        let base = mem.base;
        let n = mem.n;
        let r = mem.r;
        let csr = config.csr();
        let trace = &mut traces[m];
        // Fast path: Beeping's 2-symbol alphabet over a u64 node set.
        // Gated off for traced members (the mask wake scan would reorder
        // `woke` entries) and n > 64.
        let fast = is_beeping::<M>() && n <= 64 && trace.is_none();

        let mut event = RoundEvent {
            round: r,
            ..Default::default()
        };

        // 1. Decide.
        actions.clear();
        for &v in active[m].iter() {
            let gi = base + v as usize;
            if wake[gi] < r {
                let action = nodes[gi].decide(arena.view(gi));
                actions.push((v, action));
            }
        }

        // 2. Collect transmitters and stamp neighbour counters. The fast
        //    path proves "no sleeper adjacent to any transmitter" with
        //    two mask folds and then skips the per-edge stamping
        //    entirely; when a forced wake-up is possible it falls back
        //    to the exact stamping loop, preserving the sequential
        //    `touched` (first-touch) order.
        transmitters.clear();
        touched.clear();
        for &(v, action) in actions.iter() {
            if let Action::Transmit(msg) = action {
                transmitters.push((v, msg));
            }
        }
        mem.stats.transmissions += transmitters.len() as u64;
        let mut tx_mask = 0u64;
        let mut stamp = !fast;
        if fast {
            let mut wake_union = 0u64;
            for &(u, _) in transmitters.iter() {
                tx_mask |= 1u64 << u;
                wake_union |= adj_mask[base + u as usize];
            }
            stamp = wake_union & mem.asleep_mask != 0;
        }
        if stamp {
            for &(u, msg) in transmitters.iter() {
                for &w in csr.neighbors(u) {
                    let wi = base + w as usize;
                    if cnt_stamp[wi] != r {
                        cnt_stamp[wi] = r;
                        cnt[wi] = 0;
                        touched.push(w);
                    }
                    cnt[wi] += 1;
                    heard_msg[wi] = msg;
                }
            }
        }

        // 3. Deliver to acting nodes.
        let mut retired = false;
        for &(v, action) in actions.iter() {
            let gi = base + v as usize;
            match action {
                Action::Transmit(_) => {
                    quiet_horizon[gi] = 0;
                    arena.push(gi, Obs::Silence);
                }
                Action::Listen => {
                    let obs = if fast {
                        // Beeping: silence iff no neighbour transmits —
                        // exactly M::listener_obs(count, _) for the
                        // 0 / ≥1 split the mask resolves.
                        if adj_mask[gi] & tx_mask != 0 {
                            Obs::Noise
                        } else {
                            Obs::Silence
                        }
                    } else {
                        let heard = if cnt_stamp[gi] == r { cnt[gi] } else { 0 };
                        let msg = if heard == 1 { heard_msg[gi] } else { Msg(0) };
                        M::listener_obs(heard, msg)
                    };
                    record_listener_obs(obs, &mut mem.stats);
                    if !matches!(obs, Obs::Silence) {
                        quiet_horizon[gi] = 0;
                    }
                    if trace.is_some() {
                        match obs {
                            Obs::Heard(msg) => event.received.push((v, msg)),
                            Obs::Collision | Obs::Noise => event.collisions.push(v),
                            Obs::Silence => {}
                        }
                    }
                    arena.push(gi, obs);
                }
                Action::Terminate => {
                    done[gi] = r;
                    mem.done_count += 1;
                    retired = true;
                    if trace.is_some() {
                        event.terminated.push(v);
                    }
                }
            }
        }
        if retired {
            let done = &*done;
            active[m].retain(|&v| done[base + v as usize] == ASLEEP);
        }

        // 4. Forced wake-ups over `touched` (empty when the fast path
        //    proved no sleeper is adjacent to a transmitter — the
        //    sequential loop would have found the same nobody).
        for &w in touched.iter() {
            let wi = base + w as usize;
            if wake[wi] == ASLEEP {
                let msg = if cnt[wi] == 1 { heard_msg[wi] } else { Msg(0) };
                if let Some(obs) = M::wake_obs(cnt[wi], msg) {
                    wake[wi] = r;
                    arena.push(wi, obs);
                    active[m].push(w);
                    mem.stats.forced_wakeups += 1;
                    if n <= 64 {
                        mem.asleep_mask &= !(1u64 << w);
                    }
                    if trace.is_some() {
                        event.woke.push((w, obs));
                    }
                }
            }
        }

        // 5. Spontaneous wake-ups at tag == r.
        while mem.tag_ptr < n && config.tag(by_tag[base + mem.tag_ptr]) == r {
            let w = by_tag[base + mem.tag_ptr];
            mem.tag_ptr += 1;
            let wi = base + w as usize;
            if wake[wi] == ASLEEP {
                wake[wi] = r;
                arena.push(wi, Obs::Silence);
                active[m].push(w);
                if n <= 64 {
                    mem.asleep_mask &= !(1u64 << w);
                }
                if trace.is_some() {
                    event.woke.push((w, Obs::Silence));
                }
            }
        }

        if let Some(t) = trace.as_mut() {
            if !transmitters.is_empty() || !event.is_quiet() {
                event.transmitters = std::mem::take(transmitters);
                t.events.push(event);
            }
        }

        mem.rounds_executed = r + 1;
        mem.rounds_stepped += 1;
        mem.r = r + 1;
    }

    /// Materializes member `m`'s outcome as an owned [`Execution`]
    /// (copying its plane slices and arena segments), leaving the
    /// workspace intact for the next batch.
    fn take_execution(&mut self, m: usize) -> Result<Execution, SimError> {
        if let Some(e) = &self.members[m].error {
            return Err(e.clone());
        }
        let mem = &self.members[m];
        let (base, n) = (mem.base, mem.n);
        Ok(Execution {
            wake_round: self.wake[base..base + n].to_vec(),
            done_round: self.done[base..base + n].to_vec(),
            histories: (0..n)
                .map(|v| History::from_entries(self.arena.slice(base + v).to_vec()))
                .collect(),
            rounds: mem.rounds_executed,
            rounds_stepped: mem.rounds_stepped,
            rounds_leapt: mem.rounds_leapt,
            stats: mem.stats,
            trace: self.traces[m].take(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drip::{SilentFactory, WaitThenTransmitFactory};
    use crate::SimWorkspace;
    use radio_graph::{generators, Configuration};

    fn zoo() -> Vec<(Configuration, WaitThenTransmitFactory)> {
        let mut out = Vec::new();
        for (i, n) in [3usize, 4, 5, 6, 8].into_iter().enumerate() {
            let graph = if i % 2 == 0 {
                generators::path(n)
            } else {
                generators::star(n)
            };
            let tags: Vec<u64> = (0..n as u64).map(|v| (v * 3 + i as u64) % 7).collect();
            let config = Configuration::new(graph, tags).unwrap();
            let factory = WaitThenTransmitFactory {
                wait: i as u64 % 3,
                msg: Msg(i as u64 + 1),
                lifetime: 10 + i as u64,
            };
            out.push((config, factory));
        }
        out
    }

    fn assert_matches_sequential(model: ModelKind, opts: RunOpts) {
        let zoo = zoo();
        let runs: Vec<BatchRun<'_>> = zoo
            .iter()
            .map(|(config, factory)| BatchRun {
                config,
                factory: factory as &dyn DripFactory,
            })
            .collect();
        let mut batch = BatchWorkspace::new();
        let batched = batch.run_kind(model, &runs, opts);
        let mut seq = SimWorkspace::new();
        for ((config, factory), got) in zoo.iter().zip(&batched) {
            let want = seq.run_kind(model, config, factory, opts).unwrap();
            let got = got.as_ref().unwrap();
            assert_eq!(got.histories, want.histories, "{model:?}");
            assert_eq!(got.wake_round, want.wake_round);
            assert_eq!(got.done_round, want.done_round);
            assert_eq!(got.rounds, want.rounds);
            assert_eq!(got.rounds_stepped, want.rounds_stepped, "stepped split");
            assert_eq!(got.rounds_leapt, want.rounds_leapt, "leapt split");
            assert_eq!(got.stats, want.stats);
            assert_eq!(got.trace, want.trace);
        }
    }

    #[test]
    fn batched_matches_sequential_across_models_and_modes() {
        for model in ModelKind::ALL {
            for opts in [
                RunOpts::default(),
                RunOpts::default().no_leap(),
                RunOpts::default().traced(),
            ] {
                assert_matches_sequential(model, opts);
            }
        }
    }

    #[test]
    fn workspace_recycles_across_batches() {
        let zoo = zoo();
        let runs: Vec<BatchRun<'_>> = zoo
            .iter()
            .map(|(config, factory)| BatchRun {
                config,
                factory: factory as &dyn DripFactory,
            })
            .collect();
        let mut ws = BatchWorkspace::new();
        let first = ws.run(&runs, RunOpts::default());
        // a second pass through the same warmed workspace, and a ragged
        // sub-batch, both reproduce the first pass bit for bit
        let second = ws.run(&runs, RunOpts::default());
        for (a, b) in first.iter().zip(&second) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.histories, b.histories);
            assert_eq!(a.rounds_stepped, b.rounds_stepped);
        }
        let ragged = ws.run(&runs[3..], RunOpts::default());
        assert_eq!(
            ragged[0].as_ref().unwrap().histories,
            first[3].as_ref().unwrap().histories,
            "batch composition is invisible"
        );
    }

    #[test]
    fn round_limit_fails_only_the_affected_member() {
        let never = Configuration::new(generators::path(2), vec![0, 0]).unwrap();
        let fine = Configuration::new(generators::path(3), vec![0, 1, 2]).unwrap();
        let silent = SilentFactory { lifetime: 100 };
        let quick = SilentFactory { lifetime: 3 };
        let runs = [
            BatchRun {
                config: &never,
                factory: &silent,
            },
            BatchRun {
                config: &fine,
                factory: &quick,
            },
        ];
        let mut ws = BatchWorkspace::new();
        let out = ws.run(&runs, RunOpts::with_max_rounds(10));
        assert!(matches!(
            out[0],
            Err(SimError::RoundLimit {
                max_rounds: 10,
                still_running: 2
            })
        ));
        let ok = out[1].as_ref().unwrap();
        let fresh = crate::Executor::run(&fine, &quick, RunOpts::with_max_rounds(10)).unwrap();
        assert_eq!(ok.histories, fresh.histories);
        // the failed batch must not poison the next one
        let again = ws.run(&runs[1..], RunOpts::default());
        assert_eq!(again[0].as_ref().unwrap().histories, fresh.histories);
    }

    #[test]
    fn member_views_expose_the_execution_surface() {
        let zoo = zoo();
        let runs: Vec<BatchRun<'_>> = zoo
            .iter()
            .map(|(config, factory)| BatchRun {
                config,
                factory: factory as &dyn DripFactory,
            })
            .collect();
        let mut ws = BatchWorkspace::new();
        let mut seq = SimWorkspace::new();
        let checks = ws.run_kind_with(
            ModelKind::Beeping,
            &runs,
            RunOpts::default(),
            |m, outcome| {
                let view = outcome.expect("zoo members complete");
                let (config, factory) = &zoo[m];
                let want = seq
                    .run_kind(ModelKind::Beeping, config, factory, RunOpts::default())
                    .unwrap();
                for v in 0..config.size() as NodeId {
                    assert_eq!(
                        view.history(v).as_slice(),
                        want.history(v).as_slice(),
                        "member {m} node {v}"
                    );
                    assert_eq!(view.wake_round(v), want.wake_round[v as usize]);
                    assert_eq!(view.done_round(v), want.done_round[v as usize]);
                }
                assert_eq!(view.rounds(), want.rounds);
                assert_eq!(view.rounds_stepped(), want.rounds_stepped);
                assert_eq!(view.rounds_leapt(), want.rounds_leapt);
                assert_eq!(*view.stats(), want.stats);
                m
            },
        );
        assert_eq!(checks, (0..zoo.len()).collect::<Vec<_>>());
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut ws = BatchWorkspace::new();
        assert!(ws.run(&[], RunOpts::default()).is_empty());
    }
}
