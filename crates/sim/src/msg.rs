//! Messages, observations, and actions — the alphabet of the radio model.

use std::fmt;

/// A transmitted message.
///
/// The paper allows arbitrary strings; every algorithm it constructs
/// transmits only the constant `'1'`, and the impossibility arguments need
/// only message *equality*. A 64-bit token is therefore a faithful and
/// `Copy`-cheap substitution (documented in `DESIGN.md §2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Msg(pub u64);

impl Msg {
    /// The constant message `'1'` used by the canonical DRIP.
    pub const ONE: Msg = Msg(1);
}

impl fmt::Display for Msg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "'{}'", self.0)
    }
}

/// One entry of a node's local history: what the node perceived in one
/// local round. Matches the paper's `(∅)` / `(M)` / `(∗)`, plus the `(~)`
/// carrier-sense entry some [`RadioModel`](crate::model::RadioModel)s
/// produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Obs {
    /// `(∅)`: the node transmitted (hearing nothing), or listened and heard
    /// silence, or woke spontaneously (round 0).
    Silence,
    /// `(M)`: the node listened and exactly one neighbour transmitted `M`,
    /// or the node was woken by message `M` (round 0).
    Heard(Msg),
    /// `(∗)`: the node listened while two or more neighbours transmitted.
    Collision,
    /// `(~)`: carrier sensed, nothing decodable. Produced only by channel
    /// models with carrier-sensing semantics: a collision-detection radio
    /// woken from sleep by noise, or any busy round of the beeping model.
    /// Never appears under the default (paper) model.
    Noise,
}

impl Obs {
    /// True for `Heard(_)`.
    #[inline]
    pub fn is_message(&self) -> bool {
        matches!(self, Obs::Heard(_))
    }

    /// True for `Silence`.
    #[inline]
    pub fn is_silence(&self) -> bool {
        matches!(self, Obs::Silence)
    }

    /// True for `Collision`.
    #[inline]
    pub fn is_collision(&self) -> bool {
        matches!(self, Obs::Collision)
    }

    /// True for `Noise`.
    #[inline]
    pub fn is_noise(&self) -> bool {
        matches!(self, Obs::Noise)
    }
}

impl fmt::Display for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Obs::Silence => write!(f, "(∅)"),
            Obs::Heard(m) => write!(f, "({m})"),
            Obs::Collision => write!(f, "(∗)"),
            Obs::Noise => write!(f, "(~)"),
        }
    }
}

/// The action a DRIP chooses for one local round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Stay silent and listen.
    Listen,
    /// Transmit `Msg` to all neighbours.
    Transmit(Msg),
    /// Terminate permanently (the engine will never consult this node
    /// again).
    Terminate,
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Listen => write!(f, "listen"),
            Action::Transmit(m) => write!(f, "transmit({m})"),
            Action::Terminate => write!(f, "terminate"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_predicates() {
        assert!(Obs::Silence.is_silence());
        assert!(Obs::Heard(Msg::ONE).is_message());
        assert!(Obs::Collision.is_collision());
        assert!(!Obs::Collision.is_message());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Obs::Silence.to_string(), "(∅)");
        assert_eq!(Obs::Heard(Msg(7)).to_string(), "('7')");
        assert_eq!(Obs::Collision.to_string(), "(∗)");
        assert_eq!(Action::Listen.to_string(), "listen");
        assert_eq!(Action::Transmit(Msg::ONE).to_string(), "transmit('1')");
        assert_eq!(Action::Terminate.to_string(), "terminate");
    }

    #[test]
    fn msg_one_constant() {
        assert_eq!(Msg::ONE, Msg(1));
    }
}
