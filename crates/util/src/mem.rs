//! Process-level memory probes for the scale path.
//!
//! Workspace high-water marks (`mem_bytes()` on the sim/batch/classifier
//! workspaces) track what the engine *allocated on purpose*; the peak-RSS
//! probe here tracks what the process actually held, allocator slack and
//! all. The campaign CLI and the `scale_path` bench row report both, so a
//! regression in either shows up in the same trajectory as time.

/// Peak resident set size of the current process in bytes, read from the
/// kernel's `VmHWM` accounting in `/proc/self/status`. Returns `None` on
/// non-Linux platforms or if the probe fails — callers treat the probe as
/// best-effort observability, never as input to computation.
pub fn peak_rss_bytes() -> Option<u64> {
    if cfg!(target_os = "linux") {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        parse_vm_hwm(&status)
    } else {
        None
    }
}

/// Parses the `VmHWM:  12345 kB` line out of a `/proc/<pid>/status` dump.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let rest = status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))?;
    let kb: u64 = rest.trim().strip_suffix("kB")?.trim().parse().ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_proc_status_format() {
        let status = "Name:\tcargo\nVmPeak:\t  999 kB\nVmHWM:\t   5124 kB\nVmRSS:\t 400 kB\n";
        assert_eq!(parse_vm_hwm(status), Some(5124 * 1024));
        assert_eq!(parse_vm_hwm("Name:\tcargo\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tgarbage\n"), None);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn probe_reports_a_plausible_peak() {
        let peak = peak_rss_bytes().expect("probe works on linux");
        // any real test process holds between 1 MiB and 1 TiB
        assert!(peak > 1 << 20 && peak < 1 << 40, "peak {peak}");
    }
}
