//! Shared utilities for the `anon-radio` workspace.
//!
//! This crate deliberately has no domain knowledge: it provides the small,
//! heavily reused building blocks that every other crate in the workspace
//! leans on:
//!
//! * [`fxhash`] — the FxHash function (as used by rustc) plus `HashMap`/
//!   `HashSet` aliases keyed by it. Classifier refinement hashes millions of
//!   small integer-rich keys, where SipHash is needlessly slow and HashDoS
//!   resistance is irrelevant.
//! * [`stats`] — descriptive statistics and log–log slope fits used by the
//!   experiment harness to compare measured scaling against the paper's
//!   asymptotic bounds.
//! * [`table`] — a tiny table model rendering to aligned Markdown and CSV;
//!   every experiment in `radio-bench` reports through it.
//! * [`rng`] — deterministic seed derivation so that every workload in the
//!   repository is reproducible bit-for-bit from a single root seed.
//! * [`mem`] — best-effort process memory probes (Linux peak RSS) backing
//!   the campaign `mem_hw` observability column and the scale benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fxhash;
pub mod mem;
pub mod rng;
pub mod stats;
pub mod table;

pub use fxhash::{FxHashMap, FxHashSet};
