//! FxHash: the fast, non-cryptographic hash function used by the Rust
//! compiler, reimplemented here so the workspace stays within its allowed
//! dependency set.
//!
//! The algorithm hashes one machine word at a time with
//! `state = (state.rotate_left(5) ^ word) * K` where `K` is a fixed odd
//! constant. It is extremely fast for the short, integer-dense keys used by
//! the classifier's partition refinement (class ids, label triples) and by
//! graph deduplication. It offers no HashDoS resistance — all inputs in this
//! workspace are generated locally, never attacker-controlled.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc implementation (64-bit).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A [`Hasher`] implementing FxHash over 64-bit words.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8 bytes at a time, then the tail in one padded word. The
        // tail padding means `write(b"ab")` != `write(b"ab\0")`, because the
        // length is mixed into the final word.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            tail[7] = tail[7].wrapping_add(rem.len() as u8);
            self.add_word(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add_word(v as u64);
        self.add_word((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with FxHash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with FxHash.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hashes a single value with FxHash; convenient for fingerprinting.
pub fn hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        let a = hash_one(&(1u32, 2u64, "abc"));
        let b = hash_one(&(1u32, 2u64, "abc"));
        assert_eq!(a, b);
    }

    #[test]
    fn distinguishes_nearby_keys() {
        assert_ne!(hash_one(&1u64), hash_one(&2u64));
        assert_ne!(hash_one(&(1u32, 2u32)), hash_one(&(2u32, 1u32)));
    }

    #[test]
    fn byte_tail_is_length_sensitive() {
        let mut h1 = FxHasher::default();
        h1.write(b"ab");
        let mut h2 = FxHasher::default();
        h2.write(b"ab\0");
        assert_ne!(h1.finish(), h2.finish());
    }

    #[test]
    fn long_byte_streams_chunk_correctly() {
        // Same logical content split differently must match only when the
        // write boundaries match (Hasher contract does not require stream
        // splitting invariance, but a single write must be stable).
        let data: Vec<u8> = (0..=63).collect();
        let mut h1 = FxHasher::default();
        h1.write(&data);
        let mut h2 = FxHasher::default();
        h2.write(&data);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
    }

    #[test]
    fn spread_over_small_ints_is_reasonable() {
        // 1024 consecutive integers should not collide in the low 10 bits
        // too catastrophically; check bucket occupancy with 256 buckets.
        let mut buckets = [0u32; 256];
        for i in 0..1024u64 {
            buckets[(hash_one(&i) % 256) as usize] += 1;
        }
        let max = *buckets.iter().max().unwrap();
        assert!(
            max <= 32,
            "suspiciously lumpy distribution: max bucket {max}"
        );
    }
}
