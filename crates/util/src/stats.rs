//! Descriptive statistics and scaling fits for the experiment harness.
//!
//! The paper's claims are asymptotic (`O(n³Δ)` classifier, `O(n²σ)` election,
//! `Ω(n)`/`Ω(σ)` lower bounds). The experiments validate *shape*, so the
//! harness needs, beyond plain summaries, a least-squares slope on log–log
//! axes: a measured slope ≈ k over a decade of inputs is the empirical
//! counterpart of "grows like x^k".

/// Summary statistics over a sample of `f64` values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Median (average of the middle two for even `n`).
    pub median: f64,
}

impl Summary {
    /// Computes summary statistics. Returns `None` on an empty sample.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
        let sum: f64 = sorted.iter().sum();
        let mean = sum / n as f64;
        let var = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        };
        Some(Summary {
            n,
            min: sorted[0],
            max: sorted[n - 1],
            mean,
            std_dev: var.sqrt(),
            median,
        })
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) using nearest-rank on a sorted copy.
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    Some(sorted[idx])
}

/// Result of an ordinary least-squares line fit `y = a + b·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Intercept.
    pub intercept: f64,
    /// Slope.
    pub slope: f64,
    /// Coefficient of determination (1 = perfect fit).
    pub r2: f64,
}

/// Ordinary least-squares fit of `y` against `x`.
///
/// Returns `None` if fewer than two points or if `x` is constant.
pub fn linear_fit(x: &[f64], y: &[f64]) -> Option<LineFit> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxx: f64 = x.iter().map(|v| (v - mx) * (v - mx)).sum();
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let syy: f64 = y.iter().map(|v| (v - my) * (v - my)).sum();
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(LineFit {
        intercept,
        slope,
        r2,
    })
}

/// Least-squares slope on log–log axes: fits `ln y = a + k·ln x` and returns
/// the exponent estimate `k` (plus fit quality).
///
/// Points with non-positive coordinates are skipped (they have no logarithm);
/// returns `None` if fewer than two usable points remain.
pub fn loglog_slope(x: &[f64], y: &[f64]) -> Option<LineFit> {
    let pts: Vec<(f64, f64)> = x
        .iter()
        .zip(y)
        .filter(|(&a, &b)| a > 0.0 && b > 0.0)
        .map(|(&a, &b)| (a.ln(), b.ln()))
        .collect();
    let (lx, ly): (Vec<f64>, Vec<f64>) = pts.into_iter().unzip();
    linear_fit(&lx, &ly)
}

/// Constant-memory streaming summary: count/mean/std-dev via Welford's
/// recurrence, exact min/max, and approximate quantiles from a
/// deterministic reservoir sample.
///
/// The campaign runner folds millions of per-run metrics into one of these
/// per grid cell, so nothing here may grow with the number of samples: the
/// reservoir holds at most [`StreamingStats::RESERVOIR`] values (quantiles
/// are exact while `count` fits the reservoir, Algorithm-R approximations
/// beyond). Replacement indices come from [`crate::rng::splitmix64`] of the
/// running count, so the same push sequence always yields the same summary
/// — campaign outputs stay bit-reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    reservoir: Vec<f64>,
}

impl Default for StreamingStats {
    fn default() -> StreamingStats {
        StreamingStats::new()
    }
}

impl StreamingStats {
    /// Number of samples retained for quantile estimation.
    pub const RESERVOIR: usize = 256;

    /// An empty summary.
    pub fn new() -> StreamingStats {
        StreamingStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            reservoir: Vec::new(),
        }
    }

    /// Folds one sample into the summary.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        if self.reservoir.len() < Self::RESERVOIR {
            self.reservoir.push(x);
        } else {
            // Algorithm R with a deterministic index stream: sample i
            // (0-based) replaces a reservoir slot with probability R/(i+1).
            let i = self.count - 1;
            let j = (crate::rng::splitmix64(i) % self.count) as usize;
            if j < Self::RESERVOIR {
                self.reservoir[j] = x;
            }
        }
    }

    /// Number of samples folded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no sample has been folded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Population standard deviation (`None` when empty).
    pub fn std_dev(&self) -> Option<f64> {
        (self.count > 0).then_some((self.m2 / self.count as f64).sqrt())
    }

    /// The `q`-quantile estimate from the reservoir (nearest rank). Exact
    /// while `count ≤ RESERVOIR`; an unbiased sample estimate beyond.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.reservoir.is_empty() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let mut sorted = self.reservoir.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
        let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        Some(sorted[idx])
    }

    /// Folds another summary into this one — how a resumed campaign's
    /// per-shard halves combine into whole-campaign aggregates.
    ///
    /// Count, mean, variance (Chan's parallel recurrence), min, and max
    /// merge exactly. The quantile reservoirs merge approximately: when
    /// the combined samples exceed the capacity, each side contributes a
    /// count-proportional share drawn as an *evenly strided* subsample of
    /// its reservoir (not a prefix — while a side is under capacity its
    /// reservoir is in arrival order, and a prefix would bias the merged
    /// quantiles toward its earliest samples). Deterministic.
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let (na, nb) = (self.count as f64, other.count as f64);
        let delta = other.mean - self.mean;
        self.mean += delta * nb / (na + nb);
        self.m2 += other.m2 + delta * delta * na * nb / (na + nb);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if self.reservoir.len() + other.reservoir.len() <= Self::RESERVOIR {
            self.reservoir.extend_from_slice(&other.reservoir);
        } else {
            fn strided(xs: &[f64], k: usize) -> Vec<f64> {
                (0..k).map(|i| xs[i * xs.len() / k]).collect()
            }
            let total = self.count + other.count;
            let keep_a = ((Self::RESERVOIR as u64 * self.count) / total) as usize;
            let keep_a = keep_a
                .min(self.reservoir.len())
                .max(Self::RESERVOIR.saturating_sub(other.reservoir.len()));
            let mut merged = strided(&self.reservoir, keep_a);
            merged.extend(strided(&other.reservoir, Self::RESERVOIR - keep_a));
            self.reservoir = merged;
        }
        self.count += other.count;
    }

    /// Median estimate (see [`StreamingStats::quantile`]).
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// 95th-percentile estimate (see [`StreamingStats::quantile`]).
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }
}

/// Maximum of `y[i] / bound[i]`; the experiments use this to report how much
/// headroom a measured quantity keeps under a theoretical budget.
///
/// Returns `None` on empty or mismatched input, or when a bound is zero.
pub fn max_ratio(y: &[f64], bound: &[f64]) -> Option<f64> {
    if y.len() != bound.len() || y.is_empty() || bound.contains(&0.0) {
        return None;
    }
    y.iter()
        .zip(bound)
        .map(|(a, b)| a / b)
        .max_by(|p, q| p.partial_cmp(q).expect("NaN ratio"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert!(close(s.mean, 2.5));
        assert!(close(s.median, 2.5));
        assert!(close(s.min, 1.0));
        assert!(close(s.max, 4.0));
        // population std dev of 1..4 is sqrt(1.25)
        assert!(close(s.std_dev, 1.25f64.sqrt()));
    }

    #[test]
    fn summary_median_odd() {
        let s = Summary::of(&[9.0, 1.0, 5.0]).unwrap();
        assert!(close(s.median, 5.0));
    }

    #[test]
    fn quantile_endpoints() {
        let xs = [3.0, 1.0, 2.0];
        assert!(close(quantile(&xs, 0.0).unwrap(), 1.0));
        assert!(close(quantile(&xs, 1.0).unwrap(), 3.0));
        assert!(close(quantile(&xs, 0.5).unwrap(), 2.0));
        assert!(quantile(&xs, 1.5).is_none());
        assert!(quantile(&[], 0.5).is_none());
    }

    #[test]
    fn linear_fit_exact_line() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.0, 5.0, 7.0, 9.0]; // y = 1 + 2x
        let f = linear_fit(&x, &y).unwrap();
        assert!(close(f.slope, 2.0));
        assert!(close(f.intercept, 1.0));
        assert!(close(f.r2, 1.0));
    }

    #[test]
    fn linear_fit_rejects_degenerate() {
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        assert!(linear_fit(&[1.0, 1.0], &[2.0, 3.0]).is_none());
        assert!(linear_fit(&[1.0, 2.0], &[2.0]).is_none());
    }

    #[test]
    fn loglog_recovers_power_law() {
        // y = 5 x^3
        let x: Vec<f64> = (1..=20).map(|v| v as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 5.0 * v.powi(3)).collect();
        let f = loglog_slope(&x, &y).unwrap();
        assert!((f.slope - 3.0).abs() < 1e-6, "slope {}", f.slope);
        assert!((f.intercept - 5.0f64.ln()).abs() < 1e-6);
    }

    #[test]
    fn loglog_skips_nonpositive_points() {
        let x = [0.0, 1.0, 2.0, 4.0];
        let y = [7.0, 2.0, 4.0, 8.0]; // usable points follow y = 2x
        let f = loglog_slope(&x, &y).unwrap();
        assert!((f.slope - 1.0).abs() < 1e-9);
    }

    #[test]
    fn streaming_matches_batch_summary_on_small_samples() {
        let xs = [4.0, 1.0, 9.0, 2.5, 7.0];
        let mut s = StreamingStats::new();
        for &x in &xs {
            s.push(x);
        }
        let batch = Summary::of(&xs).unwrap();
        assert_eq!(s.count(), 5);
        assert!(close(s.mean().unwrap(), batch.mean));
        assert!(close(s.min().unwrap(), batch.min));
        assert!(close(s.max().unwrap(), batch.max));
        assert!(close(s.std_dev().unwrap(), batch.std_dev));
        // count ≤ reservoir: quantiles are exact nearest-rank
        assert!(close(s.p50().unwrap(), quantile(&xs, 0.5).unwrap()));
        assert!(close(s.p95().unwrap(), quantile(&xs, 0.95).unwrap()));
    }

    #[test]
    fn streaming_empty_is_none_everywhere() {
        let s = StreamingStats::new();
        assert!(s.is_empty());
        assert!(s.mean().is_none());
        assert!(s.min().is_none());
        assert!(s.max().is_none());
        assert!(s.std_dev().is_none());
        assert!(s.p50().is_none());
        assert!(s.quantile(1.5).is_none());
    }

    #[test]
    fn streaming_is_deterministic_and_bounded_past_reservoir() {
        let push_all = || {
            let mut s = StreamingStats::new();
            for i in 0..10_000u64 {
                s.push((i % 1000) as f64);
            }
            s
        };
        let a = push_all();
        let b = push_all();
        assert_eq!(a, b, "same sequence, same summary");
        assert_eq!(a.count(), 10_000);
        assert!(close(a.min().unwrap(), 0.0));
        assert!(close(a.max().unwrap(), 999.0));
        // mean of a uniform 0..999 cycle
        assert!((a.mean().unwrap() - 499.5).abs() < 1e-9);
        // quantile estimates stay within the sample range and roughly in
        // place (reservoir of 256 over a uniform distribution)
        let p50 = a.p50().unwrap();
        assert!((300.0..700.0).contains(&p50), "p50 {p50}");
        let p95 = a.p95().unwrap();
        assert!((850.0..=999.0).contains(&p95), "p95 {p95}");
    }

    #[test]
    fn streaming_merge_equals_sequential_folding() {
        // Split a sample arbitrarily: merging the halves must reproduce
        // the sequential moments exactly (quantiles are estimates, but
        // with both halves under capacity the reservoir is the full
        // sample, so they match too).
        let xs: Vec<f64> = (0..200).map(|i| ((i * 37) % 101) as f64).collect();
        let mut whole = StreamingStats::new();
        for &x in &xs {
            whole.push(x);
        }
        for split in [0usize, 1, 57, 199, 200] {
            let (mut a, mut b) = (StreamingStats::new(), StreamingStats::new());
            for &x in &xs[..split] {
                a.push(x);
            }
            for &x in &xs[split..] {
                b.push(x);
            }
            a.merge(&b);
            assert_eq!(a.count(), whole.count(), "split={split}");
            assert!(close(a.mean().unwrap(), whole.mean().unwrap()));
            assert!((a.std_dev().unwrap() - whole.std_dev().unwrap()).abs() < 1e-9);
            assert_eq!(a.min(), whole.min());
            assert_eq!(a.max(), whole.max());
            assert!(
                close(a.p50().unwrap(), whole.p50().unwrap()),
                "split={split}"
            );
        }
    }

    #[test]
    fn streaming_merge_subsamples_evenly_not_by_prefix() {
        // Side A arrives in ascending order and sits exactly at reservoir
        // capacity, so its reservoir IS the ordered stream; a prefix-keep
        // would contribute only A's smallest values. The strided subsample
        // must span A's whole range.
        let mut a = StreamingStats::new();
        for i in 0..256 {
            a.push(i as f64);
        }
        let mut b = StreamingStats::new();
        for _ in 0..256 {
            b.push(1000.0);
        }
        a.merge(&b);
        // A keeps 128 of 256 slots; its 25th-percentile entry of the
        // merged reservoir must come from deep in A's range (~128), not
        // from a 0..128 prefix (which would put ~64 there).
        let q25 = a.quantile(0.25).unwrap();
        assert!(q25 > 100.0, "strided subsample spans the range (q25={q25})");
        assert!(close(a.max().unwrap(), 1000.0));
        assert!(close(a.min().unwrap(), 0.0));
    }

    #[test]
    fn streaming_merge_bounds_the_reservoir_past_capacity() {
        let fill = |n: u64, offset: f64| {
            let mut s = StreamingStats::new();
            for i in 0..n {
                s.push(offset + i as f64);
            }
            s
        };
        let mut a = fill(1000, 0.0);
        let b = fill(3000, 1000.0);
        a.merge(&b);
        assert_eq!(a.count(), 4000);
        assert!(close(a.min().unwrap(), 0.0));
        assert!(close(a.max().unwrap(), 3999.0));
        assert!(close(a.mean().unwrap(), 3999.0 / 2.0));
        // p50 of uniform 0..4000 ≈ 2000; the merged reservoir (¼ from the
        // small side, ¾ from the large, by count) must keep it in range
        let p50 = a.p50().unwrap();
        assert!((1200.0..2800.0).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn max_ratio_works() {
        let r = max_ratio(&[2.0, 9.0, 4.0], &[1.0, 3.0, 4.0]).unwrap();
        assert!(close(r, 3.0));
        assert!(max_ratio(&[1.0], &[0.0]).is_none());
        assert!(max_ratio(&[], &[]).is_none());
    }
}
