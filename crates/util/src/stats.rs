//! Descriptive statistics and scaling fits for the experiment harness.
//!
//! The paper's claims are asymptotic (`O(n³Δ)` classifier, `O(n²σ)` election,
//! `Ω(n)`/`Ω(σ)` lower bounds). The experiments validate *shape*, so the
//! harness needs, beyond plain summaries, a least-squares slope on log–log
//! axes: a measured slope ≈ k over a decade of inputs is the empirical
//! counterpart of "grows like x^k".

/// Summary statistics over a sample of `f64` values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Median (average of the middle two for even `n`).
    pub median: f64,
}

impl Summary {
    /// Computes summary statistics. Returns `None` on an empty sample.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
        let sum: f64 = sorted.iter().sum();
        let mean = sum / n as f64;
        let var = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        };
        Some(Summary {
            n,
            min: sorted[0],
            max: sorted[n - 1],
            mean,
            std_dev: var.sqrt(),
            median,
        })
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) using nearest-rank on a sorted copy.
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    Some(sorted[idx])
}

/// Result of an ordinary least-squares line fit `y = a + b·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Intercept.
    pub intercept: f64,
    /// Slope.
    pub slope: f64,
    /// Coefficient of determination (1 = perfect fit).
    pub r2: f64,
}

/// Ordinary least-squares fit of `y` against `x`.
///
/// Returns `None` if fewer than two points or if `x` is constant.
pub fn linear_fit(x: &[f64], y: &[f64]) -> Option<LineFit> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxx: f64 = x.iter().map(|v| (v - mx) * (v - mx)).sum();
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let syy: f64 = y.iter().map(|v| (v - my) * (v - my)).sum();
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(LineFit {
        intercept,
        slope,
        r2,
    })
}

/// Least-squares slope on log–log axes: fits `ln y = a + k·ln x` and returns
/// the exponent estimate `k` (plus fit quality).
///
/// Points with non-positive coordinates are skipped (they have no logarithm);
/// returns `None` if fewer than two usable points remain.
pub fn loglog_slope(x: &[f64], y: &[f64]) -> Option<LineFit> {
    let pts: Vec<(f64, f64)> = x
        .iter()
        .zip(y)
        .filter(|(&a, &b)| a > 0.0 && b > 0.0)
        .map(|(&a, &b)| (a.ln(), b.ln()))
        .collect();
    let (lx, ly): (Vec<f64>, Vec<f64>) = pts.into_iter().unzip();
    linear_fit(&lx, &ly)
}

/// Maximum of `y[i] / bound[i]`; the experiments use this to report how much
/// headroom a measured quantity keeps under a theoretical budget.
///
/// Returns `None` on empty or mismatched input, or when a bound is zero.
pub fn max_ratio(y: &[f64], bound: &[f64]) -> Option<f64> {
    if y.len() != bound.len() || y.is_empty() || bound.contains(&0.0) {
        return None;
    }
    y.iter()
        .zip(bound)
        .map(|(a, b)| a / b)
        .max_by(|p, q| p.partial_cmp(q).expect("NaN ratio"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert!(close(s.mean, 2.5));
        assert!(close(s.median, 2.5));
        assert!(close(s.min, 1.0));
        assert!(close(s.max, 4.0));
        // population std dev of 1..4 is sqrt(1.25)
        assert!(close(s.std_dev, 1.25f64.sqrt()));
    }

    #[test]
    fn summary_median_odd() {
        let s = Summary::of(&[9.0, 1.0, 5.0]).unwrap();
        assert!(close(s.median, 5.0));
    }

    #[test]
    fn quantile_endpoints() {
        let xs = [3.0, 1.0, 2.0];
        assert!(close(quantile(&xs, 0.0).unwrap(), 1.0));
        assert!(close(quantile(&xs, 1.0).unwrap(), 3.0));
        assert!(close(quantile(&xs, 0.5).unwrap(), 2.0));
        assert!(quantile(&xs, 1.5).is_none());
        assert!(quantile(&[], 0.5).is_none());
    }

    #[test]
    fn linear_fit_exact_line() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.0, 5.0, 7.0, 9.0]; // y = 1 + 2x
        let f = linear_fit(&x, &y).unwrap();
        assert!(close(f.slope, 2.0));
        assert!(close(f.intercept, 1.0));
        assert!(close(f.r2, 1.0));
    }

    #[test]
    fn linear_fit_rejects_degenerate() {
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        assert!(linear_fit(&[1.0, 1.0], &[2.0, 3.0]).is_none());
        assert!(linear_fit(&[1.0, 2.0], &[2.0]).is_none());
    }

    #[test]
    fn loglog_recovers_power_law() {
        // y = 5 x^3
        let x: Vec<f64> = (1..=20).map(|v| v as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 5.0 * v.powi(3)).collect();
        let f = loglog_slope(&x, &y).unwrap();
        assert!((f.slope - 3.0).abs() < 1e-6, "slope {}", f.slope);
        assert!((f.intercept - 5.0f64.ln()).abs() < 1e-6);
    }

    #[test]
    fn loglog_skips_nonpositive_points() {
        let x = [0.0, 1.0, 2.0, 4.0];
        let y = [7.0, 2.0, 4.0, 8.0]; // usable points follow y = 2x
        let f = loglog_slope(&x, &y).unwrap();
        assert!((f.slope - 1.0).abs() < 1e-9);
    }

    #[test]
    fn max_ratio_works() {
        let r = max_ratio(&[2.0, 9.0, 4.0], &[1.0, 3.0, 4.0]).unwrap();
        assert!(close(r, 3.0));
        assert!(max_ratio(&[1.0], &[0.0]).is_none());
        assert!(max_ratio(&[], &[]).is_none());
    }
}
