//! A minimal table model with Markdown and CSV renderers.
//!
//! Every experiment in `radio-bench` reports its result through a [`Table`]:
//! the `experiments` binary prints the Markdown form to stdout and can save
//! the CSV form next to it. Keeping the model tiny (strings only, explicit
//! alignment) avoids a serialization dependency while staying easy to test.

use std::fmt::Write as _;

/// Column alignment in the Markdown rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (default for text).
    Left,
    /// Right-aligned (default for numbers).
    Right,
}

/// An in-memory table: a title, a header row, and data rows.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers, all columns
    /// right-aligned except the first.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        let headers: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
        let mut aligns = vec![Align::Right; headers.len()];
        if let Some(first) = aligns.first_mut() {
            *first = Align::Left;
        }
        Table {
            title: title.into(),
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Overrides the per-column alignment. Panics if the length differs from
    /// the header count.
    pub fn with_aligns(mut self, aligns: &[Align]) -> Table {
        assert_eq!(aligns.len(), self.headers.len(), "alignment arity mismatch");
        self.aligns = aligns.to_vec();
        self
    }

    /// Appends a data row. Panics if the arity differs from the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Convenience: appends a row of `Display`-able cells.
    pub fn push<T: std::fmt::Display>(&mut self, cells: &[T]) {
        self.push_row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Cell accessor (row, column) for tests and post-processing.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows
            .get(row)
            .and_then(|r| r.get(col))
            .map(String::as_str)
    }

    /// Renders the table as aligned GitHub-flavoured Markdown, preceded by a
    /// `###` title line. Widths are computed in characters (not bytes) so
    /// headers like `σ` or `⌈n/2⌉` align correctly.
    pub fn to_markdown(&self) -> String {
        fn width(s: &str) -> usize {
            s.chars().count()
        }
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| width(h)).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(width(cell));
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let pad = |s: &str, w: usize, a: Align| -> String {
            let fill = w.saturating_sub(width(s));
            match a {
                Align::Left => format!("{s}{}", " ".repeat(fill)),
                Align::Right => format!("{}{s}", " ".repeat(fill)),
            }
        };
        let _ = writeln!(
            out,
            "| {} |",
            (0..ncols)
                .map(|i| pad(&self.headers[i], widths[i], self.aligns[i]))
                .collect::<Vec<_>>()
                .join(" | ")
        );
        let _ = writeln!(
            out,
            "|{}|",
            (0..ncols)
                .map(|i| match self.aligns[i] {
                    Align::Left => format!(":{}", "-".repeat(widths[i] + 1)),
                    Align::Right => format!("{}:", "-".repeat(widths[i] + 1)),
                })
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "| {} |",
                (0..ncols)
                    .map(|i| pad(&row[i], widths[i], self.aligns[i]))
                    .collect::<Vec<_>>()
                    .join(" | ")
            );
        }
        out
    }

    /// Renders the table as RFC-4180-ish CSV (quoting cells containing
    /// commas, quotes or newlines).
    pub fn to_csv(&self) -> String {
        fn esc(cell: &str) -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a float with a fixed number of decimals, trimming `-0`.
pub fn fmt_f64(v: f64, decimals: usize) -> String {
    let s = format!("{v:.decimals$}");
    if s.starts_with("-0.") && s[3..].bytes().all(|b| b == b'0') {
        s[1..].to_string()
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push(&["alpha", "1"]);
        t.push(&["b", "22"]);
        let md = t.to_markdown();
        assert!(md.starts_with("### demo"));
        assert!(md.contains("| alpha |     1 |"), "got:\n{md}");
        assert!(md.contains("| b     |    22 |"));
        assert!(md.contains("|:------|------:|"));
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["has,comma".into(), "has\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\",\"has\"\"quote\""));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn row_arity_is_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push(&["only one"]);
    }

    #[test]
    fn cell_accessor() {
        let mut t = Table::new("x", &["a"]);
        t.push(&["v"]);
        assert_eq!(t.cell(0, 0), Some("v"));
        assert_eq!(t.cell(1, 0), None);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn fmt_f64_trims_negative_zero() {
        assert_eq!(fmt_f64(-0.0001, 2), "0.00");
        assert_eq!(fmt_f64(1.2345, 2), "1.23");
        assert_eq!(fmt_f64(-1.5, 1), "-1.5");
    }

    #[test]
    fn alignment_override() {
        let mut t = Table::new("x", &["a", "b"]).with_aligns(&[Align::Right, Align::Left]);
        t.push(&["1", "yy"]);
        let md = t.to_markdown();
        assert!(md.contains("|--:|:---|"), "got:\n{md}");
    }
}
