//! Deterministic seed derivation.
//!
//! Every randomized workload in the workspace (graph generators, tag
//! assignments, experiment sweeps) derives its RNG from a *root seed* and a
//! *stream path* so that:
//!
//! * rerunning any experiment reproduces it bit-for-bit,
//! * sibling workloads (e.g. the 100 seeds of one sweep cell) get
//!   statistically independent streams,
//! * adding a new workload never perturbs existing ones (streams are keyed,
//!   not sequential).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default root seed used by examples and experiments (`0xC0FFEE`).
pub const DEFAULT_ROOT_SEED: u64 = 0x00C0_FFEE;

/// SplitMix64 step: the standard 64-bit mixer, used to derive child seeds.
///
/// This is the finalizer from Vigna's SplitMix64; it is a bijection on
/// `u64`, so distinct inputs give distinct outputs.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a child seed from a parent seed and a stream label.
///
/// The label is hashed into the stream so that textually distinct labels
/// yield unrelated streams.
pub fn derive(parent: u64, label: &str) -> u64 {
    let mut acc = splitmix64(parent ^ 0xA076_1D64_78BD_642F);
    for &b in label.as_bytes() {
        acc = splitmix64(acc ^ u64::from(b));
    }
    acc
}

/// Derives a child seed from a parent seed and an index (e.g. repetition
/// number within a sweep cell).
#[inline]
pub fn derive_index(parent: u64, index: u64) -> u64 {
    splitmix64(parent ^ splitmix64(index ^ 0x9E6C_63D0_876A_46AD))
}

/// Builds a [`StdRng`] from a seed.
pub fn rng_from(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Builds a [`StdRng`] for `(root, label, index)` in one call.
pub fn stream(root: u64, label: &str, index: u64) -> StdRng {
    rng_from(derive_index(derive(root, label), index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_is_bijective_on_samples() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(splitmix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn derive_distinguishes_labels() {
        let a = derive(42, "graphs");
        let b = derive(42, "tags");
        let c = derive(43, "graphs");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn derive_index_distinguishes_indices() {
        let s = derive(7, "sweep");
        let xs: Vec<u64> = (0..100).map(|i| derive_index(s, i)).collect();
        let uniq: std::collections::HashSet<_> = xs.iter().collect();
        assert_eq!(uniq.len(), xs.len());
    }

    #[test]
    fn streams_are_reproducible() {
        let mut r1 = stream(1, "x", 3);
        let mut r2 = stream(1, "x", 3);
        let a: [u64; 4] = core::array::from_fn(|_| r1.random());
        let b: [u64; 4] = core::array::from_fn(|_| r2.random());
        assert_eq!(a, b);
    }

    #[test]
    fn streams_differ_across_paths() {
        let mut r1 = stream(1, "x", 3);
        let mut r2 = stream(1, "x", 4);
        let a: u64 = r1.random();
        let b: u64 = r2.random();
        assert_ne!(a, b);
    }
}
