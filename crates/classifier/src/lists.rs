//! Compilation of `Classifier`'s by-products into the canonical lists
//! `L_1 … L_{T+1}` (paper Section 3.3.1).
//!
//! The canonical DRIP for configuration `G` hard-codes, per phase `j`, a
//! list `L_j` whose `k`-th entry describes the representative of class `k`
//! at the start of the phase: the class it was in during the *previous*
//! phase (`oldClass`) and the label (≙ phase history) it acquired during
//! it. A node entering phase `j` matches its own previous block and phase
//! history against these entries to find its transmission block.
//!
//! `L_{T+1}` is the terminate marker. For feasible configurations we also
//! keep the entries `L_{T+1}` *would* have contained — the decision
//! function uses them to identify the leader class from the last phase's
//! history (the paper defines `f` extensionally; this is the constructive
//! equivalent).

use radio_graph::Configuration;

use crate::outcome::Outcome;
use crate::triple::Label;

/// One entry of a list `L_j`: the class representative's previous class
/// and its label from phase `j−1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListEntry {
    /// The class (= transmission block) the representative occupied in the
    /// previous phase.
    pub old_class: u32,
    /// The label summarizing the representative's history during the
    /// previous phase.
    pub label: Label,
}

/// One list `L_j`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Level {
    /// Phase `j` runs `entries.len()` transmission blocks; entry `k-1`
    /// describes class `k`.
    Blocks(Vec<ListEntry>),
    /// Phase `j` is the terminate marker: all nodes stop in its first
    /// round.
    Terminate,
}

impl Level {
    /// Number of transmission blocks (`numClasses_{G,j}`); 0 for
    /// `Terminate`.
    pub fn num_blocks(&self) -> usize {
        match self {
            Level::Blocks(entries) => entries.len(),
            Level::Terminate => 0,
        }
    }
}

/// The complete hard-coded knowledge of the canonical DRIP for one
/// configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalLists {
    /// The configuration's span σ.
    pub sigma: u64,
    /// `levels[j-1]` = `L_j`, for `j = 1 ..= T+1`; the last level is
    /// always [`Level::Terminate`].
    pub levels: Vec<Level>,
    /// The entries `L_{T+1}` would have contained (used by the decision
    /// function to locate the leader class from phase `T`'s history).
    pub final_entries: Vec<ListEntry>,
    /// The leader class `m̂` (smallest singleton of the final partition),
    /// when the configuration is feasible.
    pub leader_class: Option<u32>,
}

impl CanonicalLists {
    /// Compiles the lists from a classifier outcome. This is pure
    /// bookkeeping — no further graph computation — matching the paper's
    /// claim that the dedicated algorithm falls out of `Classifier`
    /// "without any additional computation".
    pub fn from_outcome(config: &Configuration, outcome: &Outcome) -> CanonicalLists {
        let t = outcome.iterations;
        let n = config.size();
        let ones = vec![1u32; n];

        // Class vector at the END of iteration `i` (1-based); iteration 0 =
        // the initial all-ones partition.
        let classes_after = |i: usize| -> &[u32] {
            if i == 0 {
                &ones
            } else {
                outcome.records[i - 1].partition.classes()
            }
        };

        // Entries derived from iteration `j-1`'s record: the list L_j.
        let entries_for = |j: usize| -> Vec<ListEntry> {
            let rec = &outcome.records[j - 2];
            let prev = classes_after(j - 2);
            (1..=rec.partition.num_classes())
                .map(|k| {
                    let rep = rec.partition.rep(k) as usize;
                    ListEntry {
                        old_class: prev[rep],
                        label: rec.labels[rep].clone(),
                    }
                })
                .collect()
        };

        let mut levels: Vec<Level> = Vec::with_capacity(t + 1);
        // L_1: one block, entry (1, null).
        levels.push(Level::Blocks(vec![ListEntry {
            old_class: 1,
            label: Label::empty(),
        }]));
        for j in 2..=t {
            levels.push(Level::Blocks(entries_for(j)));
        }
        levels.push(Level::Terminate); // L_{T+1}

        let final_entries = entries_for(t + 1);
        let leader_class = outcome.leader_class();

        CanonicalLists {
            sigma: config.span(),
            levels,
            final_entries,
            leader_class,
        }
    }

    /// Number of non-terminate phases `T`.
    pub fn phases(&self) -> usize {
        self.levels.len() - 1
    }

    /// The list `L_j` (1-based).
    pub fn level(&self, j: usize) -> &Level {
        &self.levels[j - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::classify;
    use crate::triple::{Multi, Triple};
    use radio_graph::{families, generators, Configuration};

    #[test]
    fn h_m_lists_have_expected_shape() {
        // H_2 splits into 4 singleton classes after iteration 1: T = 1,
        // levels = [L_1, Terminate], final entries = 4.
        let c = families::h_m(2);
        let out = classify(&c);
        let lists = CanonicalLists::from_outcome(&c, &out);
        assert_eq!(lists.phases(), 1);
        assert_eq!(lists.level(1).num_blocks(), 1);
        assert_eq!(lists.level(2), &Level::Terminate);
        assert_eq!(lists.final_entries.len(), 4);
        assert_eq!(lists.leader_class, Some(1));
        assert_eq!(lists.sigma, 3);
        // all final entries come from phase-1 block 1
        assert!(lists.final_entries.iter().all(|e| e.old_class == 1));
        // entry for class 1 (= node a, first in node order): label (1,2,1)
        assert_eq!(
            lists.final_entries[0].label.triples(),
            &[Triple::new(1, 2, Multi::One)]
        );
    }

    #[test]
    fn s_m_lists_terminate_without_leader() {
        let c = families::s_m(2);
        let out = classify(&c);
        let lists = CanonicalLists::from_outcome(&c, &out);
        assert!(lists.leader_class.is_none());
        // S_m: iteration 1 splits {a,d} from {b,c} (2 classes), iteration 2
        // changes nothing → T = 2.
        assert_eq!(lists.phases(), 2);
        assert_eq!(lists.level(2).num_blocks(), 2);
        assert_eq!(lists.final_entries.len(), 2);
    }

    #[test]
    fn g_m_block_counts_match_class_growth() {
        let m = 3;
        let c = families::g_m(m);
        let out = classify(&c);
        let lists = CanonicalLists::from_outcome(&c, &out);
        assert_eq!(lists.phases(), out.iterations);
        // L_1 has 1 block; L_j has numClasses_{G,j} blocks = class count
        // after iteration j-1.
        for j in 2..=lists.phases() {
            assert_eq!(
                lists.level(j).num_blocks() as u32,
                out.records[j - 2].partition.num_classes(),
                "phase {j}"
            );
        }
    }

    #[test]
    fn singleton_config_lists() {
        let c = Configuration::new(generators::path(1), vec![0]).unwrap();
        let out = classify(&c);
        let lists = CanonicalLists::from_outcome(&c, &out);
        assert_eq!(lists.phases(), 1);
        assert_eq!(lists.final_entries.len(), 1);
        assert_eq!(lists.leader_class, Some(1));
        assert_eq!(lists.sigma, 0);
    }

    #[test]
    fn uniform_infeasible_lists_still_wellformed() {
        let c = Configuration::with_uniform_tags(generators::cycle(4), 0).unwrap();
        let out = classify(&c);
        let lists = CanonicalLists::from_outcome(&c, &out);
        assert_eq!(lists.phases(), 1);
        assert!(lists.leader_class.is_none());
        assert_eq!(lists.final_entries.len(), 1, "partition never split");
        assert!(lists.final_entries[0].label.is_empty());
    }
}
