//! The `Classifier` feasibility-decision algorithm of the SPAA 2020 paper
//! (Algorithms 1–4), plus everything needed to compile its by-product — the
//! per-iteration class structure — into the canonical DRIP's hard-coded
//! lists `L_1 … L_{T+1}`.
//!
//! # What `Classifier` does
//!
//! Given a configuration `G`, the algorithm simulates, *centrally*, the
//! phase structure of the canonical DRIP: it maintains a partition of the
//! nodes into classes of equal history, and in each iteration refines the
//! partition by the "label" every node would acquire during one more phase
//! (which neighbours' classes it would hear, in which round of which
//! transmission block, and whether collisions would occur). It stops with
//!
//! * **Yes** as soon as some class has exactly one member (that node has a
//!   unique history and can be elected), or
//! * **No** as soon as an iteration does not change the partition (it never
//!   will again — the refinement is a fixed point).
//!
//! Lemma 3.4 guarantees one of the two happens within `⌈n/2⌉` iterations.
//!
//! # Engines
//!
//! * [`mod@reference`] — a line-by-line transcription of the paper's
//!   pseudocode, instrumented with step counters (`O(n³Δ)` overall). This
//!   is the ground truth the experiments measure against.
//! * [`fast`] — identical semantics (including class *numbering*), but
//!   refinement by hashing `(old class, label)` keys, `O(nΔ)` expected per
//!   iteration. This is the ablation for the paper's open problem #1
//!   ("can `O(n³Δ)` be improved?").
//!
//! Both produce an [`Outcome`]; the property suite asserts they agree
//! exactly on random configurations.
//!
//! # Example
//!
//! ```
//! use radio_graph::families;
//!
//! // H_3 (path a–b–c–d, tags 3,0,0,4) splits into four singleton classes
//! // after one iteration: feasible, leader class 1 (node a).
//! let outcome = radio_classifier::classify(&families::h_m(3));
//! assert!(outcome.feasible);
//! assert_eq!(outcome.iterations, 1);
//! assert_eq!(outcome.leader_class(), Some(1));
//!
//! // S_3 (tags 3,0,0,3) is mirror-symmetric: the partition freezes at
//! // two pair-classes — infeasible.
//! let outcome = radio_classifier::classify(&families::s_m(3));
//! assert!(!outcome.feasible);
//! assert_eq!(outcome.final_partition().num_classes(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fast;
pub mod key;
pub mod lists;
pub mod outcome;
pub mod partition;
pub mod partitioner;
pub mod reference;
pub mod trace;
pub mod triple;
pub mod wl;
pub mod workspace;

pub use key::{canonical_key_in, CanonicalKey, KeySink};
pub use lists::{CanonicalLists, Level, ListEntry};
pub use outcome::{classify, classify_with, Cost, Engine, IterationRecord, Outcome};
pub use partition::Partition;
pub use triple::{Label, Multi, Triple};
pub use workspace::{
    summarize, ClassifierWorkspace, ClassifySummary, FinalOnly, FullRecords, IterationView,
    ListsSink, RecordSink,
};
