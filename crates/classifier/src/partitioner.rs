//! Label computation — `Partitioner`'s lines 1–22 (Algorithm 3).
//!
//! For every node `v`, scan its neighbours `w`: unless `w` is
//! indistinguishable from `v` this phase (`same class ∧ same tag`, in which
//! case both transmit simultaneously and `v` hears nothing from `w`),
//! record the pair `(a, b) = (class(w), σ+1+t_w−t_v)`; a repeated pair
//! becomes a collision triple `(a, b, ∗)`.
//!
//! Two implementations with identical outputs:
//!
//! * [`labels_reference`] — the paper's literal nested loop (`O(Δ²)` per
//!   node), instrumented with a step counter.
//! * [`labels_fast`] — collect, sort once, merge duplicates
//!   (`O(Δ log Δ)` per node).

use radio_graph::{Configuration, NodeId};

use crate::partition::Partition;
use crate::triple::{Label, Multi, Triple};

/// `b = σ + 1 + t_w − t_v`, computed in signed space: the definition of
/// span guarantees `|t_w − t_v| ≤ σ`, so the result is in `1 ..= 2σ+1`.
#[inline]
fn block_round(sigma: u64, tw: u64, tv: u64) -> u64 {
    let b = sigma as i128 + 1 + tw as i128 - tv as i128;
    debug_assert!(b >= 1 && b <= 2 * sigma as i128 + 1, "b={b} out of range");
    b as u64
}

/// Paper-literal label computation. Returns the labels plus the number of
/// elementary steps taken (neighbour visits + triple comparisons), the
/// quantity the `O(n∆²)` bound of Lemma 3.5 counts.
pub fn labels_reference(config: &Configuration, partition: &Partition) -> (Vec<Label>, u64) {
    labels_reference_in(config, partition.classes())
}

/// [`labels_reference`] over a raw class vector — the
/// [`ClassifierWorkspace`](crate::workspace::ClassifierWorkspace) path,
/// which never materializes a [`Partition`] per iteration.
pub(crate) fn labels_reference_in(config: &Configuration, classes: &[u32]) -> (Vec<Label>, u64) {
    let csr = config.csr();
    let sigma = config.span();
    let n = config.size();
    let mut labels = Vec::with_capacity(n);
    let mut steps = 0u64;

    for v in 0..n as NodeId {
        let tv = config.tag(v);
        let v_class = classes[v as usize];
        // The paper's N_v: triples in insertion order, scanned linearly for
        // duplicates (lines 5–15).
        let mut nv: Vec<Triple> = Vec::new();
        for &w in csr.neighbors(v) {
            steps += 1;
            let w_class = classes[w as usize];
            let tw = config.tag(w);
            if w_class != v_class || tw != tv {
                let a = w_class;
                let b = block_round(sigma, tw, tv);
                let mut new_tuple = true;
                for t in nv.iter_mut() {
                    steps += 1;
                    if t.a == a && t.b == b {
                        new_tuple = false;
                        t.c = Multi::Star;
                    }
                }
                if new_tuple {
                    nv.push(Triple::new(a, b, Multi::One));
                }
            }
        }
        steps += nv.len() as u64; // the sort + concatenation pass
        labels.push(Label::from_triples(nv));
    }
    (labels, steps)
}

/// Sort-merge label computation: identical output, `O(Δ log Δ)` per node.
pub fn labels_fast(config: &Configuration, partition: &Partition) -> Vec<Label> {
    let n = config.size();
    let sigma = config.span();
    let mut labels = Vec::with_capacity(n);
    let mut pairs: Vec<(u32, u64)> = Vec::new();
    let mut scratch: Vec<Triple> = Vec::new();

    for v in 0..n as NodeId {
        node_triples_into(
            config,
            sigma,
            partition.classes(),
            v,
            &mut pairs,
            &mut scratch,
        );
        labels.push(Label::from_triples(scratch.clone()));
    }
    labels
}

/// Computes node `v`'s label triples (sorted by `≺_hist`, duplicates
/// merged into `∗`) into the recycled `out` buffer, using `pairs` as the
/// sort scratch — the allocation-free kernel shared by [`labels_fast`]
/// and the incremental
/// [`ClassifierWorkspace`](crate::workspace::ClassifierWorkspace), which
/// calls it only for nodes whose neighbourhood changed class last pass.
///
/// `sigma` is the configuration's span, hoisted out because
/// [`Configuration::span`] rescans the tag vector — an `O(n)` call that
/// must stay out of the per-node kernel.
pub(crate) fn node_triples_into(
    config: &Configuration,
    sigma: u64,
    classes: &[u32],
    v: NodeId,
    pairs: &mut Vec<(u32, u64)>,
    out: &mut Vec<Triple>,
) {
    let csr = config.csr();
    let tv = config.tag(v);
    let v_class = classes[v as usize];
    pairs.clear();
    out.clear();
    for &w in csr.neighbors(v) {
        let w_class = classes[w as usize];
        let tw = config.tag(w);
        if w_class != v_class || tw != tv {
            pairs.push((w_class, block_round(sigma, tw, tv)));
        }
    }
    pairs.sort_unstable();
    let mut i = 0;
    while i < pairs.len() {
        let (a, b) = pairs[i];
        let mut j = i + 1;
        while j < pairs.len() && pairs[j] == (a, b) {
            j += 1;
        }
        out.push(Triple::new(
            a,
            b,
            if j - i == 1 { Multi::One } else { Multi::Star },
        ));
        i = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_graph::{families, generators, Configuration};

    fn initial_labels(config: &Configuration) -> (Vec<Label>, Vec<Label>) {
        let p = Partition::initial(config.size());
        let (reference, _) = labels_reference(config, &p);
        let fast = labels_fast(config, &p);
        (reference, fast)
    }

    #[test]
    fn engines_agree_on_h_m() {
        let c = families::h_m(3);
        let (a, b) = initial_labels(&c);
        assert_eq!(a, b);
    }

    #[test]
    fn h_m_first_iteration_labels_match_hand_computation() {
        // H_2: path a-b-c-d, tags [2,0,0,3], σ=3, all in class 1.
        // b for neighbour w of v: σ+1+tw−tv = 4+tw−tv.
        let c = families::h_m(2);
        let p = Partition::initial(4);
        let (labels, _) = labels_reference(&c, &p);
        // a (t=2): neighbour b (t=0, class 1≠? same class but t differs):
        //   (1, 4+0−2=2, 1)
        assert_eq!(
            labels[0],
            Label::from_triples(vec![Triple::new(1, 2, Multi::One)])
        );
        // b (t=0): neighbours a (t=2): (1, 4+2−0=6); c (t=0): same class,
        // same tag → excluded.
        assert_eq!(
            labels[1],
            Label::from_triples(vec![Triple::new(1, 6, Multi::One)])
        );
        // c (t=0): neighbours b (excluded), d (t=3): (1, 4+3=7)
        assert_eq!(
            labels[2],
            Label::from_triples(vec![Triple::new(1, 7, Multi::One)])
        );
        // d (t=3): neighbour c (t=0): (1, 4+0−3=1)
        assert_eq!(
            labels[3],
            Label::from_triples(vec![Triple::new(1, 1, Multi::One)])
        );
    }

    #[test]
    fn s_m_labels_are_mirror_symmetric() {
        let c = families::s_m(2); // tags [2,0,0,2], σ=2, b = 3+tw−tv
        let p = Partition::initial(4);
        let (labels, _) = labels_reference(&c, &p);
        assert_eq!(labels[0], labels[3], "a and d symmetric");
        assert_eq!(labels[1], labels[2], "b and c symmetric");
        assert_ne!(labels[0], labels[1]);
    }

    #[test]
    fn same_class_same_tag_neighbours_are_invisible() {
        // uniform tags on a complete graph: every neighbour is excluded →
        // all labels empty.
        let c = Configuration::new(generators::complete(5), vec![4; 5]).unwrap();
        let p = Partition::initial(5);
        let (labels, _) = labels_reference(&c, &p);
        assert!(labels.iter().all(Label::is_empty));
    }

    #[test]
    fn collision_triples_merge_duplicates() {
        // star centre (tag 0) with 3 leaves (tag 1), all class 1: centre
        // sees three neighbours mapping to the same (a=1, b=σ+1+1) → one ∗
        // triple.
        let c = Configuration::new(generators::star(4), vec![0, 1, 1, 1]).unwrap();
        let p = Partition::initial(4);
        let (labels, _) = labels_reference(&c, &p);
        assert_eq!(labels[0].triples(), &[Triple::new(1, 3, Multi::Star)]);
        // each leaf sees only the centre: (1, σ+1−1 = 1, 1)
        for leaf_label in &labels[1..4] {
            assert_eq!(leaf_label.triples(), &[Triple::new(1, 1, Multi::One)]);
        }
    }

    #[test]
    fn engines_agree_on_random_configs() {
        use radio_util::rng::rng_from;
        let mut rng = rng_from(77);
        for _ in 0..30 {
            let g = generators::gnp_connected(12, 0.3, &mut rng);
            let c = radio_graph::tags::random_in_span(g, 4, &mut rng);
            let (a, b) = initial_labels(&c);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn step_count_bounded_by_delta_squared() {
        let c = Configuration::new(generators::star(30), vec![0; 30]).unwrap();
        let p = Partition::initial(30);
        let (_, steps) = labels_reference(&c, &p);
        let n = 30u64;
        let delta = 29u64;
        assert!(steps <= n * delta * delta + n * delta, "steps={steps}");
    }
}
