//! Hash-based `Refine` with reference-identical semantics.
//!
//! The paper's open problem #1 asks whether `Classifier`'s `O(n³Δ)` can be
//! improved. The expensive part is `Refine`: comparing every node against
//! every representative costs `O(n²Δ)` per iteration. Hashing the key
//! `(old class, label)` makes that `O(nΔ)` expected — and by seeding the
//! table with the surviving representatives and processing nodes in the
//! fixed order, the resulting class *numbering* (not just the partition)
//! matches the reference exactly, so the canonical lists compiled from
//! either engine are identical. The property suite asserts this.
//!
//! The pass is allocation-conscious: old/new class vectors are
//! double-buffered inside [`RefState`] (one `mem::swap`, no clone), and
//! [`refine_fast_by`] is generic over the per-node key so the
//! [`ClassifierWorkspace`](crate::workspace::ClassifierWorkspace) can
//! refine on interned `u32` label ids through a *persistent* hash table —
//! a warm pass performs zero heap allocation.

use std::hash::Hash;

use radio_util::FxHashMap;

use crate::reference::RefState;
#[cfg(test)]
use crate::triple::Label;

/// One hash-based `Refine` pass, semantically identical to
/// [`crate::reference`]'s. Keys borrow the labels slice — hashing a key
/// costs a walk over at most Δ triples but never a clone or allocation.
/// Production code refines through [`refine_fast_by`] on interned ids;
/// this label-keyed form is the differential harness pinning the hash
/// refine against the paper-literal one.
#[cfg(test)]
pub(crate) fn refine_fast(state: &mut RefState, labels: &[Label]) {
    let mut table: FxHashMap<(u32, &Label), u32> = FxHashMap::default();
    refine_fast_by(state, |v| &labels[v], &mut table);
}

/// The generic core of the hash refine: one pass keyed on
/// `(old class, key_of(v))`, reusing `table`'s capacity across calls
/// (callers clear-by-contract here, so a persistent table never
/// reallocates once warmed).
///
/// Semantics pinned to [`crate::reference::refine_reference`]: the table
/// is seeded with the surviving representatives (class ids stay stable)
/// and nodes are processed in ascending order, so fresh classes are
/// numbered exactly as the paper's mid-loop representatives would number
/// them.
pub(crate) fn refine_fast_by<K: Hash + Eq>(
    state: &mut RefState,
    key_of: impl Fn(usize) -> K,
    table: &mut FxHashMap<(u32, K), u32>,
) {
    state.begin_pass();
    let n = state.prev.len();

    table.clear();
    table.reserve(state.num_classes as usize + 8);
    for k in 1..=state.num_classes {
        let rep = state.reps[(k - 1) as usize] as usize;
        let prev = table.insert((state.prev[rep], key_of(rep)), k);
        debug_assert!(prev.is_none(), "representatives must have distinct keys");
    }

    for v in 0..n {
        match table.entry((state.prev[v], key_of(v))) {
            std::collections::hash_map::Entry::Occupied(e) => {
                state.classes[v] = *e.get();
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                state.num_classes += 1;
                e.insert(state.num_classes);
                state.classes[v] = state.num_classes;
                state.reps.push(v as u32);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::refine_reference;
    use crate::triple::{Multi, Triple};

    fn lbl(a: u32, b: u64) -> Label {
        Label::from_triples(vec![Triple::new(a, b, Multi::One)])
    }

    #[test]
    fn agrees_with_reference_on_fixed_case() {
        let labels = vec![lbl(1, 1), lbl(1, 5), lbl(1, 5), lbl(2, 1), Label::empty()];
        let mut a = RefState::initial(5);
        let mut b = RefState::initial(5);
        refine_reference(&mut a, &labels);
        refine_fast(&mut b, &labels);
        assert_eq!(a.classes, b.classes);
        assert_eq!(a.num_classes, b.num_classes);
        assert_eq!(a.reps, b.reps);
    }

    #[test]
    fn agrees_with_reference_across_random_sequences() {
        use radio_util::rng::rng_from;
        use rand::Rng;
        let mut rng = rng_from(123);
        for _ in 0..50 {
            let n = rng.random_range(1..20usize);
            let mut a = RefState::initial(n);
            let mut b = RefState::initial(n);
            // several refinement rounds with random labels
            for _ in 0..4 {
                let labels: Vec<Label> = (0..n)
                    .map(|_| {
                        if rng.random_bool(0.2) {
                            Label::empty()
                        } else {
                            lbl(rng.random_range(1..4), rng.random_range(1..4))
                        }
                    })
                    .collect();
                refine_reference(&mut a, &labels);
                refine_fast(&mut b, &labels);
                assert_eq!(a.classes, b.classes);
                assert_eq!(a.num_classes, b.num_classes);
                assert_eq!(a.reps, b.reps);
            }
        }
    }

    #[test]
    fn double_buffer_preserves_previous_partition() {
        // After a pass, `prev` must hold exactly the pre-pass classes (the
        // canonical-list sinks read old classes from it).
        let mut st = RefState::initial(4);
        let l1 = vec![lbl(1, 1), lbl(1, 2), lbl(1, 1), lbl(1, 2)];
        refine_fast(&mut st, &l1);
        assert_eq!(st.prev, vec![1, 1, 1, 1]);
        assert_eq!(st.classes, vec![1, 2, 1, 2]);
        let l2 = vec![lbl(1, 1), lbl(1, 2), lbl(9, 9), lbl(1, 2)];
        refine_fast(&mut st, &l2);
        assert_eq!(st.prev, vec![1, 2, 1, 2]);
        assert_eq!(st.classes, vec![1, 2, 3, 2]);
    }

    #[test]
    fn reset_recycles_state_to_initial() {
        let mut st = RefState::initial(5);
        let labels = vec![lbl(1, 1), lbl(1, 2), lbl(1, 3), lbl(1, 4), lbl(1, 5)];
        refine_fast(&mut st, &labels);
        assert_eq!(st.num_classes, 5);
        st.reset(3);
        assert_eq!(st.classes, vec![1, 1, 1]);
        assert_eq!(st.prev, vec![1, 1, 1]);
        assert_eq!(st.num_classes, 1);
        assert_eq!(st.reps, vec![0]);
    }
}
