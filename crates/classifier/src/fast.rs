//! Hash-based `Refine` with reference-identical semantics.
//!
//! The paper's open problem #1 asks whether `Classifier`'s `O(n³Δ)` can be
//! improved. The expensive part is `Refine`: comparing every node against
//! every representative costs `O(n²Δ)` per iteration. Hashing the key
//! `(old class, label)` makes that `O(nΔ)` expected — and by seeding the
//! table with the surviving representatives and processing nodes in the
//! fixed order, the resulting class *numbering* (not just the partition)
//! matches the reference exactly, so the canonical lists compiled from
//! either engine are identical. The property suite asserts this.

use radio_util::FxHashMap;

use crate::reference::RefState;
use crate::triple::Label;

/// One hash-based `Refine` pass, semantically identical to
/// [`crate::reference`]'s.
pub(crate) fn refine_fast(state: &mut RefState, labels: &[Label]) {
    let n = state.classes.len();
    let old: Vec<u32> = state.classes.clone();

    // Keys borrow the labels slice — hashing a key costs a walk over at
    // most Δ triples but never a clone or allocation. Everything inserted
    // (representatives up front, fresh class representatives below) is a
    // reference into `labels`, which outlives the table.
    let mut table: FxHashMap<(u32, &Label), u32> = FxHashMap::default();
    table.reserve(state.num_classes as usize + 8);
    for k in 1..=state.num_classes {
        let rep = state.reps[(k - 1) as usize] as usize;
        let prev = table.insert((old[rep], &labels[rep]), k);
        debug_assert!(prev.is_none(), "representatives must have distinct keys");
    }

    for v in 0..n {
        match table.entry((old[v], &labels[v])) {
            std::collections::hash_map::Entry::Occupied(e) => {
                state.classes[v] = *e.get();
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                state.num_classes += 1;
                e.insert(state.num_classes);
                state.classes[v] = state.num_classes;
                state.reps.push(v as u32);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::refine_reference;
    use crate::triple::{Multi, Triple};

    fn lbl(a: u32, b: u64) -> Label {
        Label::from_triples(vec![Triple::new(a, b, Multi::One)])
    }

    #[test]
    fn agrees_with_reference_on_fixed_case() {
        let labels = vec![lbl(1, 1), lbl(1, 5), lbl(1, 5), lbl(2, 1), Label::empty()];
        let mut a = RefState::initial(5);
        let mut b = RefState::initial(5);
        refine_reference(&mut a, &labels);
        refine_fast(&mut b, &labels);
        assert_eq!(a.classes, b.classes);
        assert_eq!(a.num_classes, b.num_classes);
        assert_eq!(a.reps, b.reps);
    }

    #[test]
    fn agrees_with_reference_across_random_sequences() {
        use radio_util::rng::rng_from;
        use rand::Rng;
        let mut rng = rng_from(123);
        for _ in 0..50 {
            let n = rng.random_range(1..20usize);
            let mut a = RefState::initial(n);
            let mut b = RefState::initial(n);
            // several refinement rounds with random labels
            for _ in 0..4 {
                let labels: Vec<Label> = (0..n)
                    .map(|_| {
                        if rng.random_bool(0.2) {
                            Label::empty()
                        } else {
                            lbl(rng.random_range(1..4), rng.random_range(1..4))
                        }
                    })
                    .collect();
                refine_reference(&mut a, &labels);
                refine_fast(&mut b, &labels);
                assert_eq!(a.classes, b.classes);
                assert_eq!(a.num_classes, b.num_classes);
                assert_eq!(a.reps, b.reps);
            }
        }
    }
}
